//! The `marshal` command-line tool (Table I of the paper).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match marshal_core::cli::parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // `help` needs no workload setup (and must not create a workdir).
    if matches!(parsed.command, marshal_core::cli::Command::Help) {
        println!("{}", marshal_core::cli::USAGE);
        return ExitCode::SUCCESS;
    }
    let setup = match marshal_workloads::setup(std::path::Path::new(&parsed.workdir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: workload setup failed: {e}");
            return ExitCode::from(1);
        }
    };
    let (code, log) = marshal_core::cli::run_command(&parsed, setup.board, setup.search);
    for line in log {
        println!("{line}");
    }
    ExitCode::from(code as u8)
}
