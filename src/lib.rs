//! # firemarshal
//!
//! Umbrella crate for the FireMarshal reproduction (ISPASS 2021): re-exports
//! every workspace crate under one roof and hosts the `marshal` binary, the
//! integration tests, and the runnable examples.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-figure reproduction index.

#![warn(missing_docs)]

pub use marshal_config as config;
pub use marshal_core as core;
pub use marshal_depgraph as depgraph;
pub use marshal_firmware as firmware;
pub use marshal_image as image;
pub use marshal_isa as isa;
pub use marshal_linux as linux;
pub use marshal_script as script;
pub use marshal_sim_functional as sim_functional;
pub use marshal_sim_rtl as sim_rtl;
pub use marshal_trace as trace;
pub use marshal_workloads as workloads;
