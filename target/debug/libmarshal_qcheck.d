/root/repo/target/debug/libmarshal_qcheck.rlib: /root/repo/crates/qcheck/src/lib.rs
