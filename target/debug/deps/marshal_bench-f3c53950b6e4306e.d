/root/repo/target/debug/deps/marshal_bench-f3c53950b6e4306e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_bench-f3c53950b6e4306e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
