/root/repo/target/debug/deps/marshal_qcheck-4b1ba2237466c5f6.d: crates/qcheck/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_qcheck-4b1ba2237466c5f6.rmeta: crates/qcheck/src/lib.rs Cargo.toml

crates/qcheck/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
