/root/repo/target/debug/deps/marshal_depgraph-9976182bc098f5a6.d: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

/root/repo/target/debug/deps/libmarshal_depgraph-9976182bc098f5a6.rlib: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

/root/repo/target/debug/deps/libmarshal_depgraph-9976182bc098f5a6.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/error.rs:
crates/depgraph/src/exec.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/hash.rs:
crates/depgraph/src/state.rs:
crates/depgraph/src/task.rs:
