/root/repo/target/debug/deps/proptests-e9821878ae38ff58.d: crates/image/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e9821878ae38ff58: crates/image/tests/proptests.rs

crates/image/tests/proptests.rs:
