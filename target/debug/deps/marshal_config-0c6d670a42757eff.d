/root/repo/target/debug/deps/marshal_config-0c6d670a42757eff.d: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

/root/repo/target/debug/deps/marshal_config-0c6d670a42757eff: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

crates/config/src/lib.rs:
crates/config/src/error.rs:
crates/config/src/inherit.rs:
crates/config/src/jobs.rs:
crates/config/src/json.rs:
crates/config/src/schema.rs:
crates/config/src/search.rs:
crates/config/src/value.rs:
crates/config/src/yaml.rs:
