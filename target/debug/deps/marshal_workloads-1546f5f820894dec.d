/root/repo/target/debug/deps/marshal_workloads-1546f5f820894dec.d: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/debug/deps/libmarshal_workloads-1546f5f820894dec.rlib: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/debug/deps/libmarshal_workloads-1546f5f820894dec.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bases.rs:
crates/workloads/src/board.rs:
crates/workloads/src/coremark.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/intspeed.rs:
crates/workloads/src/pfa.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/runtime.rs:
