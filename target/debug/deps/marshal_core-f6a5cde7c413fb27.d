/root/repo/target/debug/deps/marshal_core-f6a5cde7c413fb27.d: crates/core/src/lib.rs crates/core/src/board.rs crates/core/src/build.rs crates/core/src/clean.rs crates/core/src/cli.rs crates/core/src/connector.rs crates/core/src/error.rs crates/core/src/faultinject.rs crates/core/src/install.rs crates/core/src/integrity.rs crates/core/src/launch.rs crates/core/src/output.rs crates/core/src/test.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_core-f6a5cde7c413fb27.rmeta: crates/core/src/lib.rs crates/core/src/board.rs crates/core/src/build.rs crates/core/src/clean.rs crates/core/src/cli.rs crates/core/src/connector.rs crates/core/src/error.rs crates/core/src/faultinject.rs crates/core/src/install.rs crates/core/src/integrity.rs crates/core/src/launch.rs crates/core/src/output.rs crates/core/src/test.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/board.rs:
crates/core/src/build.rs:
crates/core/src/clean.rs:
crates/core/src/cli.rs:
crates/core/src/connector.rs:
crates/core/src/error.rs:
crates/core/src/faultinject.rs:
crates/core/src/install.rs:
crates/core/src/integrity.rs:
crates/core/src/launch.rs:
crates/core/src/output.rs:
crates/core/src/test.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
