/root/repo/target/debug/deps/marshal_sim_functional-7fe6d3c7673b967d.d: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

/root/repo/target/debug/deps/libmarshal_sim_functional-7fe6d3c7673b967d.rlib: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

/root/repo/target/debug/deps/libmarshal_sim_functional-7fe6d3c7673b967d.rmeta: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

crates/sim-functional/src/lib.rs:
crates/sim-functional/src/boot.rs:
crates/sim-functional/src/guest.rs:
crates/sim-functional/src/machine.rs:
crates/sim-functional/src/qemu.rs:
crates/sim-functional/src/spike.rs:
crates/sim-functional/src/syscall.rs:
