/root/repo/target/debug/deps/robustness-49513c2fca8f05e2.d: tests/robustness.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-49513c2fca8f05e2.rmeta: tests/robustness.rs tests/common/mod.rs Cargo.toml

tests/robustness.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
