/root/repo/target/debug/deps/simulator_consistency-6d810f4ed098592e.d: tests/simulator_consistency.rs tests/common/mod.rs

/root/repo/target/debug/deps/simulator_consistency-6d810f4ed098592e: tests/simulator_consistency.rs tests/common/mod.rs

tests/simulator_consistency.rs:
tests/common/mod.rs:
