/root/repo/target/debug/deps/marshal_script-1305a4486f0ae391.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

/root/repo/target/debug/deps/marshal_script-1305a4486f0ae391: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/hostenv.rs:
crates/script/src/interp.rs:
crates/script/src/lex.rs:
crates/script/src/parse.rs:
