/root/repo/target/debug/deps/marshal_firmware-6b715a752643b28b.d: crates/firmware/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_firmware-6b715a752643b28b.rmeta: crates/firmware/src/lib.rs Cargo.toml

crates/firmware/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
