/root/repo/target/debug/deps/marshal_depgraph-260cbcf245a1844c.d: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

/root/repo/target/debug/deps/marshal_depgraph-260cbcf245a1844c: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/error.rs:
crates/depgraph/src/exec.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/hash.rs:
crates/depgraph/src/state.rs:
crates/depgraph/src/task.rs:
