/root/repo/target/debug/deps/marshal-9c71c69cf0408cdd.d: src/bin/marshal.rs

/root/repo/target/debug/deps/marshal-9c71c69cf0408cdd: src/bin/marshal.rs

src/bin/marshal.rs:
