/root/repo/target/debug/deps/firemarshal-818da189a1c53383.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiremarshal-818da189a1c53383.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
