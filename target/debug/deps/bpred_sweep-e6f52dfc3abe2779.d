/root/repo/target/debug/deps/bpred_sweep-e6f52dfc3abe2779.d: crates/bench/benches/bpred_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbpred_sweep-e6f52dfc3abe2779.rmeta: crates/bench/benches/bpred_sweep.rs Cargo.toml

crates/bench/benches/bpred_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
