/root/repo/target/debug/deps/marshal_config-0c7f48d604b5ee2a.d: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_config-0c7f48d604b5ee2a.rmeta: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs Cargo.toml

crates/config/src/lib.rs:
crates/config/src/error.rs:
crates/config/src/inherit.rs:
crates/config/src/jobs.rs:
crates/config/src/json.rs:
crates/config/src/schema.rs:
crates/config/src/search.rs:
crates/config/src/value.rs:
crates/config/src/yaml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
