/root/repo/target/debug/deps/marshal_isa-9f213b70300bad3e.d: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

/root/repo/target/debug/deps/marshal_isa-9f213b70300bad3e: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

crates/isa/src/lib.rs:
crates/isa/src/abi.rs:
crates/isa/src/asm.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/mem.rs:
crates/isa/src/mexe.rs:
