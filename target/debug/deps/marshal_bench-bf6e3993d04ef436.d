/root/repo/target/debug/deps/marshal_bench-bf6e3993d04ef436.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmarshal_bench-bf6e3993d04ef436.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmarshal_bench-bf6e3993d04ef436.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
