/root/repo/target/debug/deps/cli_commands-de86d453262a682e.d: tests/cli_commands.rs tests/common/mod.rs

/root/repo/target/debug/deps/cli_commands-de86d453262a682e: tests/cli_commands.rs tests/common/mod.rs

tests/cli_commands.rs:
tests/common/mod.rs:

# env-dep:CARGO_BIN_EXE_marshal=/root/repo/target/debug/marshal
