/root/repo/target/debug/deps/proptests-ed76c88a68b3264b.d: crates/image/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ed76c88a68b3264b.rmeta: crates/image/tests/proptests.rs Cargo.toml

crates/image/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
