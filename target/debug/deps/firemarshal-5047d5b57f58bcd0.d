/root/repo/target/debug/deps/firemarshal-5047d5b57f58bcd0.d: src/lib.rs

/root/repo/target/debug/deps/libfiremarshal-5047d5b57f58bcd0.rlib: src/lib.rs

/root/repo/target/debug/deps/libfiremarshal-5047d5b57f58bcd0.rmeta: src/lib.rs

src/lib.rs:
