/root/repo/target/debug/deps/marshal-70d2a5ce69b83aa8.d: src/bin/marshal.rs

/root/repo/target/debug/deps/marshal-70d2a5ce69b83aa8: src/bin/marshal.rs

src/bin/marshal.rs:
