/root/repo/target/debug/deps/marshal_qcheck-64ed8b6e3342a73c.d: crates/qcheck/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_qcheck-64ed8b6e3342a73c.rmeta: crates/qcheck/src/lib.rs Cargo.toml

crates/qcheck/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
