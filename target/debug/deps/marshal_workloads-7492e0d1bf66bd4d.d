/root/repo/target/debug/deps/marshal_workloads-7492e0d1bf66bd4d.d: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_workloads-7492e0d1bf66bd4d.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/bases.rs:
crates/workloads/src/board.rs:
crates/workloads/src/coremark.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/intspeed.rs:
crates/workloads/src/pfa.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
