/root/repo/target/debug/deps/build_outputs-e6bdde0b38cfa23e.d: crates/bench/benches/build_outputs.rs Cargo.toml

/root/repo/target/debug/deps/libbuild_outputs-e6bdde0b38cfa23e.rmeta: crates/bench/benches/build_outputs.rs Cargo.toml

crates/bench/benches/build_outputs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
