/root/repo/target/debug/deps/csv_output-fe6cd33699fe4e1d.d: tests/csv_output.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libcsv_output-fe6cd33699fe4e1d.rmeta: tests/csv_output.rs tests/common/mod.rs Cargo.toml

tests/csv_output.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
