/root/repo/target/debug/deps/proptests-8cabb4b625d9615b.d: crates/script/tests/proptests.rs

/root/repo/target/debug/deps/proptests-8cabb4b625d9615b: crates/script/tests/proptests.rs

crates/script/tests/proptests.rs:
