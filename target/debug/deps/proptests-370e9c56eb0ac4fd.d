/root/repo/target/debug/deps/proptests-370e9c56eb0ac4fd.d: crates/depgraph/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-370e9c56eb0ac4fd.rmeta: crates/depgraph/tests/proptests.rs Cargo.toml

crates/depgraph/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
