/root/repo/target/debug/deps/config_options-52b466a34f8fd351.d: tests/config_options.rs tests/common/mod.rs

/root/repo/target/debug/deps/config_options-52b466a34f8fd351: tests/config_options.rs tests/common/mod.rs

tests/config_options.rs:
tests/common/mod.rs:
