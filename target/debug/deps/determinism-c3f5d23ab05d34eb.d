/root/repo/target/debug/deps/determinism-c3f5d23ab05d34eb.d: crates/bench/benches/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c3f5d23ab05d34eb.rmeta: crates/bench/benches/determinism.rs Cargo.toml

crates/bench/benches/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
