/root/repo/target/debug/deps/marshal_image-8f89274ff8b7f2f9.d: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_image-8f89274ff8b7f2f9.rmeta: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs Cargo.toml

crates/image/src/lib.rs:
crates/image/src/cpio.rs:
crates/image/src/format.rs:
crates/image/src/fs.rs:
crates/image/src/initsys.rs:
crates/image/src/overlay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
