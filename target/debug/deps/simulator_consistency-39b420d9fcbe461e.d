/root/repo/target/debug/deps/simulator_consistency-39b420d9fcbe461e.d: tests/simulator_consistency.rs tests/common/mod.rs

/root/repo/target/debug/deps/simulator_consistency-39b420d9fcbe461e: tests/simulator_consistency.rs tests/common/mod.rs

tests/simulator_consistency.rs:
tests/common/mod.rs:
