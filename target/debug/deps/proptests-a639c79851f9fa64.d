/root/repo/target/debug/deps/proptests-a639c79851f9fa64.d: crates/config/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a639c79851f9fa64.rmeta: crates/config/tests/proptests.rs Cargo.toml

crates/config/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
