/root/repo/target/debug/deps/marshal_linux-625f65161fe555cf.d: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

/root/repo/target/debug/deps/marshal_linux-625f65161fe555cf: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

crates/linux/src/lib.rs:
crates/linux/src/initramfs.rs:
crates/linux/src/kconfig.rs:
crates/linux/src/kernel.rs:
crates/linux/src/modules.rs:
