/root/repo/target/debug/deps/marshal_depgraph-b23bb1189b10bcb7.d: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_depgraph-b23bb1189b10bcb7.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs Cargo.toml

crates/depgraph/src/lib.rs:
crates/depgraph/src/error.rs:
crates/depgraph/src/exec.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/hash.rs:
crates/depgraph/src/state.rs:
crates/depgraph/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
