/root/repo/target/debug/deps/build_outputs-7dcf06e1675812db.d: tests/build_outputs.rs tests/common/mod.rs

/root/repo/target/debug/deps/build_outputs-7dcf06e1675812db: tests/build_outputs.rs tests/common/mod.rs

tests/build_outputs.rs:
tests/common/mod.rs:
