/root/repo/target/debug/deps/build_outputs-0ea62a1a06145d9c.d: tests/build_outputs.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libbuild_outputs-0ea62a1a06145d9c.rmeta: tests/build_outputs.rs tests/common/mod.rs Cargo.toml

tests/build_outputs.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
