/root/repo/target/debug/deps/marshal_script-ed72127606aac404.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

/root/repo/target/debug/deps/libmarshal_script-ed72127606aac404.rlib: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

/root/repo/target/debug/deps/libmarshal_script-ed72127606aac404.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/hostenv.rs:
crates/script/src/interp.rs:
crates/script/src/lex.rs:
crates/script/src/parse.rs:
