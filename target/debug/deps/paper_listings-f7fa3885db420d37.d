/root/repo/target/debug/deps/paper_listings-f7fa3885db420d37.d: tests/paper_listings.rs tests/common/mod.rs

/root/repo/target/debug/deps/paper_listings-f7fa3885db420d37: tests/paper_listings.rs tests/common/mod.rs

tests/paper_listings.rs:
tests/common/mod.rs:
