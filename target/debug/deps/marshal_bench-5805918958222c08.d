/root/repo/target/debug/deps/marshal_bench-5805918958222c08.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/marshal_bench-5805918958222c08: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
