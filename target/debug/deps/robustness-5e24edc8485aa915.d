/root/repo/target/debug/deps/robustness-5e24edc8485aa915.d: tests/robustness.rs tests/common/mod.rs

/root/repo/target/debug/deps/robustness-5e24edc8485aa915: tests/robustness.rs tests/common/mod.rs

tests/robustness.rs:
tests/common/mod.rs:
