/root/repo/target/debug/deps/firemarshal-ae97497e2a197e40.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfiremarshal-ae97497e2a197e40.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
