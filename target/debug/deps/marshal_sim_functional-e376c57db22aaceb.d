/root/repo/target/debug/deps/marshal_sim_functional-e376c57db22aaceb.d: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

/root/repo/target/debug/deps/marshal_sim_functional-e376c57db22aaceb: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

crates/sim-functional/src/lib.rs:
crates/sim-functional/src/boot.rs:
crates/sim-functional/src/guest.rs:
crates/sim-functional/src/machine.rs:
crates/sim-functional/src/qemu.rs:
crates/sim-functional/src/spike.rs:
crates/sim-functional/src/syscall.rs:
