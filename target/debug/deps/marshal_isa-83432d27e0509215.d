/root/repo/target/debug/deps/marshal_isa-83432d27e0509215.d: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

/root/repo/target/debug/deps/libmarshal_isa-83432d27e0509215.rlib: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

/root/repo/target/debug/deps/libmarshal_isa-83432d27e0509215.rmeta: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

crates/isa/src/lib.rs:
crates/isa/src/abi.rs:
crates/isa/src/asm.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/mem.rs:
crates/isa/src/mexe.rs:
