/root/repo/target/debug/deps/ablation-456b78d0cd8110ea.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-456b78d0cd8110ea.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
