/root/repo/target/debug/deps/cli_commands-ea80ef6e8ff853b7.d: tests/cli_commands.rs tests/common/mod.rs

/root/repo/target/debug/deps/cli_commands-ea80ef6e8ff853b7: tests/cli_commands.rs tests/common/mod.rs

tests/cli_commands.rs:
tests/common/mod.rs:

# env-dep:CARGO_BIN_EXE_marshal=/root/repo/target/debug/marshal
