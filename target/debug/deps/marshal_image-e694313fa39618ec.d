/root/repo/target/debug/deps/marshal_image-e694313fa39618ec.d: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

/root/repo/target/debug/deps/libmarshal_image-e694313fa39618ec.rlib: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

/root/repo/target/debug/deps/libmarshal_image-e694313fa39618ec.rmeta: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

crates/image/src/lib.rs:
crates/image/src/cpio.rs:
crates/image/src/format.rs:
crates/image/src/fs.rs:
crates/image/src/initsys.rs:
crates/image/src/overlay.rs:
