/root/repo/target/debug/deps/proptests-847cd318fe39d8f5.d: crates/config/tests/proptests.rs

/root/repo/target/debug/deps/proptests-847cd318fe39d8f5: crates/config/tests/proptests.rs

crates/config/tests/proptests.rs:
