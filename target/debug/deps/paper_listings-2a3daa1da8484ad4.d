/root/repo/target/debug/deps/paper_listings-2a3daa1da8484ad4.d: tests/paper_listings.rs tests/common/mod.rs

/root/repo/target/debug/deps/paper_listings-2a3daa1da8484ad4: tests/paper_listings.rs tests/common/mod.rs

tests/paper_listings.rs:
tests/common/mod.rs:
