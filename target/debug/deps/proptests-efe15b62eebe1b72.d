/root/repo/target/debug/deps/proptests-efe15b62eebe1b72.d: crates/sim-rtl/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-efe15b62eebe1b72.rmeta: crates/sim-rtl/tests/proptests.rs Cargo.toml

crates/sim-rtl/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
