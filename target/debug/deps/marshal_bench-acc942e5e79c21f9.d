/root/repo/target/debug/deps/marshal_bench-acc942e5e79c21f9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/marshal_bench-acc942e5e79c21f9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
