/root/repo/target/debug/deps/marshal_sim_rtl-93dc91768b24e244.d: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

/root/repo/target/debug/deps/marshal_sim_rtl-93dc91768b24e244: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

crates/sim-rtl/src/lib.rs:
crates/sim-rtl/src/bpred.rs:
crates/sim-rtl/src/cache.rs:
crates/sim-rtl/src/config.rs:
crates/sim-rtl/src/firesim.rs:
crates/sim-rtl/src/nic.rs:
crates/sim-rtl/src/pfa.rs:
crates/sim-rtl/src/pipeline.rs:
