/root/repo/target/debug/deps/determinism-805169a0926903ae.d: tests/determinism.rs tests/common/mod.rs

/root/repo/target/debug/deps/determinism-805169a0926903ae: tests/determinism.rs tests/common/mod.rs

tests/determinism.rs:
tests/common/mod.rs:
