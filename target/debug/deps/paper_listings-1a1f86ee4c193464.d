/root/repo/target/debug/deps/paper_listings-1a1f86ee4c193464.d: tests/paper_listings.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_listings-1a1f86ee4c193464.rmeta: tests/paper_listings.rs tests/common/mod.rs Cargo.toml

tests/paper_listings.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
