/root/repo/target/debug/deps/simulator_consistency-4cbed83512b9b509.d: tests/simulator_consistency.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator_consistency-4cbed83512b9b509.rmeta: tests/simulator_consistency.rs tests/common/mod.rs Cargo.toml

tests/simulator_consistency.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
