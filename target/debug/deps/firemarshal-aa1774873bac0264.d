/root/repo/target/debug/deps/firemarshal-aa1774873bac0264.d: src/lib.rs

/root/repo/target/debug/deps/libfiremarshal-aa1774873bac0264.rlib: src/lib.rs

/root/repo/target/debug/deps/libfiremarshal-aa1774873bac0264.rmeta: src/lib.rs

src/lib.rs:
