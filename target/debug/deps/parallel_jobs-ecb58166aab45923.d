/root/repo/target/debug/deps/parallel_jobs-ecb58166aab45923.d: crates/bench/benches/parallel_jobs.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_jobs-ecb58166aab45923.rmeta: crates/bench/benches/parallel_jobs.rs Cargo.toml

crates/bench/benches/parallel_jobs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
