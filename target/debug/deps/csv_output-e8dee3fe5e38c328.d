/root/repo/target/debug/deps/csv_output-e8dee3fe5e38c328.d: tests/csv_output.rs tests/common/mod.rs

/root/repo/target/debug/deps/csv_output-e8dee3fe5e38c328: tests/csv_output.rs tests/common/mod.rs

tests/csv_output.rs:
tests/common/mod.rs:
