/root/repo/target/debug/deps/marshal_firmware-e2f5dcbd2e8b9743.d: crates/firmware/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_firmware-e2f5dcbd2e8b9743.rmeta: crates/firmware/src/lib.rs Cargo.toml

crates/firmware/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
