/root/repo/target/debug/deps/marshal_firmware-5e96b20f6d42ec77.d: crates/firmware/src/lib.rs

/root/repo/target/debug/deps/marshal_firmware-5e96b20f6d42ec77: crates/firmware/src/lib.rs

crates/firmware/src/lib.rs:
