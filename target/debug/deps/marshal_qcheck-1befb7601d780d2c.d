/root/repo/target/debug/deps/marshal_qcheck-1befb7601d780d2c.d: crates/qcheck/src/lib.rs

/root/repo/target/debug/deps/marshal_qcheck-1befb7601d780d2c: crates/qcheck/src/lib.rs

crates/qcheck/src/lib.rs:
