/root/repo/target/debug/deps/proptests-9a1d669f2a280501.d: crates/sim-rtl/tests/proptests.rs

/root/repo/target/debug/deps/proptests-9a1d669f2a280501: crates/sim-rtl/tests/proptests.rs

crates/sim-rtl/tests/proptests.rs:
