/root/repo/target/debug/deps/proptests-57b5ef5ce7dc1952.d: crates/depgraph/tests/proptests.rs

/root/repo/target/debug/deps/proptests-57b5ef5ce7dc1952: crates/depgraph/tests/proptests.rs

crates/depgraph/tests/proptests.rs:
