/root/repo/target/debug/deps/marshal-18e25b054d5fa326.d: src/bin/marshal.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal-18e25b054d5fa326.rmeta: src/bin/marshal.rs Cargo.toml

src/bin/marshal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
