/root/repo/target/debug/deps/marshal_sim_rtl-3293f9460f280b64.d: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_sim_rtl-3293f9460f280b64.rmeta: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs Cargo.toml

crates/sim-rtl/src/lib.rs:
crates/sim-rtl/src/bpred.rs:
crates/sim-rtl/src/cache.rs:
crates/sim-rtl/src/config.rs:
crates/sim-rtl/src/firesim.rs:
crates/sim-rtl/src/nic.rs:
crates/sim-rtl/src/pfa.rs:
crates/sim-rtl/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
