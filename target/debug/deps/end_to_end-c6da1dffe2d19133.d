/root/repo/target/debug/deps/end_to_end-c6da1dffe2d19133.d: tests/end_to_end.rs tests/common/mod.rs

/root/repo/target/debug/deps/end_to_end-c6da1dffe2d19133: tests/end_to_end.rs tests/common/mod.rs

tests/end_to_end.rs:
tests/common/mod.rs:
