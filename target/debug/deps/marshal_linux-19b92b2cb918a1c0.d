/root/repo/target/debug/deps/marshal_linux-19b92b2cb918a1c0.d: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

/root/repo/target/debug/deps/libmarshal_linux-19b92b2cb918a1c0.rlib: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

/root/repo/target/debug/deps/libmarshal_linux-19b92b2cb918a1c0.rmeta: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

crates/linux/src/lib.rs:
crates/linux/src/initramfs.rs:
crates/linux/src/kconfig.rs:
crates/linux/src/kernel.rs:
crates/linux/src/modules.rs:
