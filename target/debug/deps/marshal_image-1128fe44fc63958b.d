/root/repo/target/debug/deps/marshal_image-1128fe44fc63958b.d: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

/root/repo/target/debug/deps/marshal_image-1128fe44fc63958b: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

crates/image/src/lib.rs:
crates/image/src/cpio.rs:
crates/image/src/format.rs:
crates/image/src/fs.rs:
crates/image/src/initsys.rs:
crates/image/src/overlay.rs:
