/root/repo/target/debug/deps/config_options-18ffb6b7b66798b2.d: tests/config_options.rs tests/common/mod.rs

/root/repo/target/debug/deps/config_options-18ffb6b7b66798b2: tests/config_options.rs tests/common/mod.rs

tests/config_options.rs:
tests/common/mod.rs:
