/root/repo/target/debug/deps/marshal_workloads-61b5df6429070ea0.d: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/debug/deps/marshal_workloads-61b5df6429070ea0: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bases.rs:
crates/workloads/src/board.rs:
crates/workloads/src/coremark.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/intspeed.rs:
crates/workloads/src/pfa.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/runtime.rs:
