/root/repo/target/debug/deps/config_options-0d6c1309674276f2.d: tests/config_options.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libconfig_options-0d6c1309674276f2.rmeta: tests/config_options.rs tests/common/mod.rs Cargo.toml

tests/config_options.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
