/root/repo/target/debug/deps/proptests-9c65cb38095030cc.d: crates/isa/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9c65cb38095030cc.rmeta: crates/isa/tests/proptests.rs Cargo.toml

crates/isa/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
