/root/repo/target/debug/deps/end_to_end-ec0a3299ea153b74.d: tests/end_to_end.rs tests/common/mod.rs

/root/repo/target/debug/deps/end_to_end-ec0a3299ea153b74: tests/end_to_end.rs tests/common/mod.rs

tests/end_to_end.rs:
tests/common/mod.rs:
