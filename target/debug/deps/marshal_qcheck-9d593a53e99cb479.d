/root/repo/target/debug/deps/marshal_qcheck-9d593a53e99cb479.d: crates/qcheck/src/lib.rs

/root/repo/target/debug/deps/libmarshal_qcheck-9d593a53e99cb479.rlib: crates/qcheck/src/lib.rs

/root/repo/target/debug/deps/libmarshal_qcheck-9d593a53e99cb479.rmeta: crates/qcheck/src/lib.rs

crates/qcheck/src/lib.rs:
