/root/repo/target/debug/deps/marshal_bench-b97df5db46231948.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmarshal_bench-b97df5db46231948.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmarshal_bench-b97df5db46231948.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
