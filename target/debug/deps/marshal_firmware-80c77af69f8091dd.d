/root/repo/target/debug/deps/marshal_firmware-80c77af69f8091dd.d: crates/firmware/src/lib.rs

/root/repo/target/debug/deps/libmarshal_firmware-80c77af69f8091dd.rlib: crates/firmware/src/lib.rs

/root/repo/target/debug/deps/libmarshal_firmware-80c77af69f8091dd.rmeta: crates/firmware/src/lib.rs

crates/firmware/src/lib.rs:
