/root/repo/target/debug/deps/marshal_config-71c1bab6229a6617.d: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

/root/repo/target/debug/deps/libmarshal_config-71c1bab6229a6617.rlib: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

/root/repo/target/debug/deps/libmarshal_config-71c1bab6229a6617.rmeta: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

crates/config/src/lib.rs:
crates/config/src/error.rs:
crates/config/src/inherit.rs:
crates/config/src/jobs.rs:
crates/config/src/json.rs:
crates/config/src/schema.rs:
crates/config/src/search.rs:
crates/config/src/value.rs:
crates/config/src/yaml.rs:
