/root/repo/target/debug/deps/pfa_latency-7e793394df8d0261.d: crates/bench/benches/pfa_latency.rs Cargo.toml

/root/repo/target/debug/deps/libpfa_latency-7e793394df8d0261.rmeta: crates/bench/benches/pfa_latency.rs Cargo.toml

crates/bench/benches/pfa_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
