/root/repo/target/debug/deps/proptests-acaac2f9d4158f99.d: crates/script/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-acaac2f9d4158f99.rmeta: crates/script/tests/proptests.rs Cargo.toml

crates/script/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
