/root/repo/target/debug/deps/marshal_isa-1115d694b4b612d3.d: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_isa-1115d694b4b612d3.rmeta: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/abi.rs:
crates/isa/src/asm.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/mem.rs:
crates/isa/src/mexe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
