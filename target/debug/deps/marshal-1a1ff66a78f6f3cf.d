/root/repo/target/debug/deps/marshal-1a1ff66a78f6f3cf.d: src/bin/marshal.rs

/root/repo/target/debug/deps/marshal-1a1ff66a78f6f3cf: src/bin/marshal.rs

src/bin/marshal.rs:
