/root/repo/target/debug/deps/marshal_depgraph-0c4c824a8be42cea.d: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_depgraph-0c4c824a8be42cea.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs Cargo.toml

crates/depgraph/src/lib.rs:
crates/depgraph/src/error.rs:
crates/depgraph/src/exec.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/hash.rs:
crates/depgraph/src/state.rs:
crates/depgraph/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
