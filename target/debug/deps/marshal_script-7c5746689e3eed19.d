/root/repo/target/debug/deps/marshal_script-7c5746689e3eed19.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_script-7c5746689e3eed19.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs Cargo.toml

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/hostenv.rs:
crates/script/src/interp.rs:
crates/script/src/lex.rs:
crates/script/src/parse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
