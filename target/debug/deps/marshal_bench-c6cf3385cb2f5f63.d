/root/repo/target/debug/deps/marshal_bench-c6cf3385cb2f5f63.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_bench-c6cf3385cb2f5f63.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
