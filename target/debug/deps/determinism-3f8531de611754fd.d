/root/repo/target/debug/deps/determinism-3f8531de611754fd.d: tests/determinism.rs tests/common/mod.rs

/root/repo/target/debug/deps/determinism-3f8531de611754fd: tests/determinism.rs tests/common/mod.rs

tests/determinism.rs:
tests/common/mod.rs:
