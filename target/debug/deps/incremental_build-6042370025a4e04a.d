/root/repo/target/debug/deps/incremental_build-6042370025a4e04a.d: crates/bench/benches/incremental_build.rs Cargo.toml

/root/repo/target/debug/deps/libincremental_build-6042370025a4e04a.rmeta: crates/bench/benches/incremental_build.rs Cargo.toml

crates/bench/benches/incremental_build.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
