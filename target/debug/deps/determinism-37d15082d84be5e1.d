/root/repo/target/debug/deps/determinism-37d15082d84be5e1.d: tests/determinism.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-37d15082d84be5e1.rmeta: tests/determinism.rs tests/common/mod.rs Cargo.toml

tests/determinism.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
