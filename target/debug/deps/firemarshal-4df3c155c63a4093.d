/root/repo/target/debug/deps/firemarshal-4df3c155c63a4093.d: src/lib.rs

/root/repo/target/debug/deps/firemarshal-4df3c155c63a4093: src/lib.rs

src/lib.rs:
