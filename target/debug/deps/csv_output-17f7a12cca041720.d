/root/repo/target/debug/deps/csv_output-17f7a12cca041720.d: tests/csv_output.rs tests/common/mod.rs

/root/repo/target/debug/deps/csv_output-17f7a12cca041720: tests/csv_output.rs tests/common/mod.rs

tests/csv_output.rs:
tests/common/mod.rs:
