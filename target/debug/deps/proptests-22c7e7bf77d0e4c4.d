/root/repo/target/debug/deps/proptests-22c7e7bf77d0e4c4.d: crates/isa/tests/proptests.rs

/root/repo/target/debug/deps/proptests-22c7e7bf77d0e4c4: crates/isa/tests/proptests.rs

crates/isa/tests/proptests.rs:
