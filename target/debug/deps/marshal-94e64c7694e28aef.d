/root/repo/target/debug/deps/marshal-94e64c7694e28aef.d: src/bin/marshal.rs

/root/repo/target/debug/deps/marshal-94e64c7694e28aef: src/bin/marshal.rs

src/bin/marshal.rs:
