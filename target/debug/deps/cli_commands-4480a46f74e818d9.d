/root/repo/target/debug/deps/cli_commands-4480a46f74e818d9.d: tests/cli_commands.rs tests/common/mod.rs Cargo.toml

/root/repo/target/debug/deps/libcli_commands-4480a46f74e818d9.rmeta: tests/cli_commands.rs tests/common/mod.rs Cargo.toml

tests/cli_commands.rs:
tests/common/mod.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_marshal=placeholder:marshal
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
