/root/repo/target/debug/deps/firemarshal-4fb5156f248ec57a.d: src/lib.rs

/root/repo/target/debug/deps/firemarshal-4fb5156f248ec57a: src/lib.rs

src/lib.rs:
