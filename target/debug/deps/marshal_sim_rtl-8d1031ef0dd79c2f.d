/root/repo/target/debug/deps/marshal_sim_rtl-8d1031ef0dd79c2f.d: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

/root/repo/target/debug/deps/libmarshal_sim_rtl-8d1031ef0dd79c2f.rlib: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

/root/repo/target/debug/deps/libmarshal_sim_rtl-8d1031ef0dd79c2f.rmeta: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

crates/sim-rtl/src/lib.rs:
crates/sim-rtl/src/bpred.rs:
crates/sim-rtl/src/cache.rs:
crates/sim-rtl/src/config.rs:
crates/sim-rtl/src/firesim.rs:
crates/sim-rtl/src/nic.rs:
crates/sim-rtl/src/pfa.rs:
crates/sim-rtl/src/pipeline.rs:
