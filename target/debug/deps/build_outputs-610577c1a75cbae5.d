/root/repo/target/debug/deps/build_outputs-610577c1a75cbae5.d: tests/build_outputs.rs tests/common/mod.rs

/root/repo/target/debug/deps/build_outputs-610577c1a75cbae5: tests/build_outputs.rs tests/common/mod.rs

tests/build_outputs.rs:
tests/common/mod.rs:
