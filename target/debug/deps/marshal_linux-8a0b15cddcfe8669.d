/root/repo/target/debug/deps/marshal_linux-8a0b15cddcfe8669.d: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_linux-8a0b15cddcfe8669.rmeta: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs Cargo.toml

crates/linux/src/lib.rs:
crates/linux/src/initramfs.rs:
crates/linux/src/kconfig.rs:
crates/linux/src/kernel.rs:
crates/linux/src/modules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
