/root/repo/target/debug/deps/marshal_sim_functional-375f3eca4503f4ae.d: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal_sim_functional-375f3eca4503f4ae.rmeta: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs Cargo.toml

crates/sim-functional/src/lib.rs:
crates/sim-functional/src/boot.rs:
crates/sim-functional/src/guest.rs:
crates/sim-functional/src/machine.rs:
crates/sim-functional/src/qemu.rs:
crates/sim-functional/src/spike.rs:
crates/sim-functional/src/syscall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
