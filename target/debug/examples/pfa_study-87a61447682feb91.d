/root/repo/target/debug/examples/pfa_study-87a61447682feb91.d: examples/pfa_study.rs

/root/repo/target/debug/examples/pfa_study-87a61447682feb91: examples/pfa_study.rs

examples/pfa_study.rs:
