/root/repo/target/debug/examples/bringup-14eb4e5561040d83.d: examples/bringup.rs Cargo.toml

/root/repo/target/debug/examples/libbringup-14eb4e5561040d83.rmeta: examples/bringup.rs Cargo.toml

examples/bringup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
