/root/repo/target/debug/examples/spec2017-106125690784a6f4.d: examples/spec2017.rs

/root/repo/target/debug/examples/spec2017-106125690784a6f4: examples/spec2017.rs

examples/spec2017.rs:
