/root/repo/target/debug/examples/quickstart-32d7dfaf4ed32e70.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-32d7dfaf4ed32e70: examples/quickstart.rs

examples/quickstart.rs:
