/root/repo/target/debug/examples/education-54ada22835238f0a.d: examples/education.rs

/root/repo/target/debug/examples/education-54ada22835238f0a: examples/education.rs

examples/education.rs:
