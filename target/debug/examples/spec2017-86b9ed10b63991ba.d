/root/repo/target/debug/examples/spec2017-86b9ed10b63991ba.d: examples/spec2017.rs

/root/repo/target/debug/examples/spec2017-86b9ed10b63991ba: examples/spec2017.rs

examples/spec2017.rs:
