/root/repo/target/debug/examples/education-333351df70468215.d: examples/education.rs Cargo.toml

/root/repo/target/debug/examples/libeducation-333351df70468215.rmeta: examples/education.rs Cargo.toml

examples/education.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
