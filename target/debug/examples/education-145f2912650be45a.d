/root/repo/target/debug/examples/education-145f2912650be45a.d: examples/education.rs

/root/repo/target/debug/examples/education-145f2912650be45a: examples/education.rs

examples/education.rs:
