/root/repo/target/debug/examples/pfa_study-c0461910e777e092.d: examples/pfa_study.rs

/root/repo/target/debug/examples/pfa_study-c0461910e777e092: examples/pfa_study.rs

examples/pfa_study.rs:
