/root/repo/target/debug/examples/pfa_study-c2d2b6bc47576ef2.d: examples/pfa_study.rs Cargo.toml

/root/repo/target/debug/examples/libpfa_study-c2d2b6bc47576ef2.rmeta: examples/pfa_study.rs Cargo.toml

examples/pfa_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
