/root/repo/target/debug/examples/spec2017-23416e83a262762e.d: examples/spec2017.rs Cargo.toml

/root/repo/target/debug/examples/libspec2017-23416e83a262762e.rmeta: examples/spec2017.rs Cargo.toml

examples/spec2017.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
