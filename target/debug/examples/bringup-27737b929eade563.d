/root/repo/target/debug/examples/bringup-27737b929eade563.d: examples/bringup.rs

/root/repo/target/debug/examples/bringup-27737b929eade563: examples/bringup.rs

examples/bringup.rs:
