/root/repo/target/debug/examples/bringup-ecc619384979ab8f.d: examples/bringup.rs

/root/repo/target/debug/examples/bringup-ecc619384979ab8f: examples/bringup.rs

examples/bringup.rs:
