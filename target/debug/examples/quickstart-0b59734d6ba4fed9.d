/root/repo/target/debug/examples/quickstart-0b59734d6ba4fed9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0b59734d6ba4fed9: examples/quickstart.rs

examples/quickstart.rs:
