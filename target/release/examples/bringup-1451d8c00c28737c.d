/root/repo/target/release/examples/bringup-1451d8c00c28737c.d: examples/bringup.rs

/root/repo/target/release/examples/bringup-1451d8c00c28737c: examples/bringup.rs

examples/bringup.rs:
