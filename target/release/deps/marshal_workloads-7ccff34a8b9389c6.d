/root/repo/target/release/deps/marshal_workloads-7ccff34a8b9389c6.d: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/release/deps/libmarshal_workloads-7ccff34a8b9389c6.rlib: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/release/deps/libmarshal_workloads-7ccff34a8b9389c6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bases.rs:
crates/workloads/src/board.rs:
crates/workloads/src/coremark.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/intspeed.rs:
crates/workloads/src/pfa.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/runtime.rs:
