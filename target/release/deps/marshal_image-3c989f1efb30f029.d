/root/repo/target/release/deps/marshal_image-3c989f1efb30f029.d: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

/root/repo/target/release/deps/libmarshal_image-3c989f1efb30f029.rlib: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

/root/repo/target/release/deps/libmarshal_image-3c989f1efb30f029.rmeta: crates/image/src/lib.rs crates/image/src/cpio.rs crates/image/src/format.rs crates/image/src/fs.rs crates/image/src/initsys.rs crates/image/src/overlay.rs

crates/image/src/lib.rs:
crates/image/src/cpio.rs:
crates/image/src/format.rs:
crates/image/src/fs.rs:
crates/image/src/initsys.rs:
crates/image/src/overlay.rs:
