/root/repo/target/release/deps/marshal_isa-ba4951eb80f0a48a.d: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

/root/repo/target/release/deps/libmarshal_isa-ba4951eb80f0a48a.rlib: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

/root/repo/target/release/deps/libmarshal_isa-ba4951eb80f0a48a.rmeta: crates/isa/src/lib.rs crates/isa/src/abi.rs crates/isa/src/asm.rs crates/isa/src/decode.rs crates/isa/src/disasm.rs crates/isa/src/encode.rs crates/isa/src/inst.rs crates/isa/src/interp.rs crates/isa/src/mem.rs crates/isa/src/mexe.rs

crates/isa/src/lib.rs:
crates/isa/src/abi.rs:
crates/isa/src/asm.rs:
crates/isa/src/decode.rs:
crates/isa/src/disasm.rs:
crates/isa/src/encode.rs:
crates/isa/src/inst.rs:
crates/isa/src/interp.rs:
crates/isa/src/mem.rs:
crates/isa/src/mexe.rs:
