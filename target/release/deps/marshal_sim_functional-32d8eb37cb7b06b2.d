/root/repo/target/release/deps/marshal_sim_functional-32d8eb37cb7b06b2.d: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

/root/repo/target/release/deps/libmarshal_sim_functional-32d8eb37cb7b06b2.rlib: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

/root/repo/target/release/deps/libmarshal_sim_functional-32d8eb37cb7b06b2.rmeta: crates/sim-functional/src/lib.rs crates/sim-functional/src/boot.rs crates/sim-functional/src/guest.rs crates/sim-functional/src/machine.rs crates/sim-functional/src/qemu.rs crates/sim-functional/src/spike.rs crates/sim-functional/src/syscall.rs

crates/sim-functional/src/lib.rs:
crates/sim-functional/src/boot.rs:
crates/sim-functional/src/guest.rs:
crates/sim-functional/src/machine.rs:
crates/sim-functional/src/qemu.rs:
crates/sim-functional/src/spike.rs:
crates/sim-functional/src/syscall.rs:
