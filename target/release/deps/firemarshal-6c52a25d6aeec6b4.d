/root/repo/target/release/deps/firemarshal-6c52a25d6aeec6b4.d: src/lib.rs

/root/repo/target/release/deps/libfiremarshal-6c52a25d6aeec6b4.rlib: src/lib.rs

/root/repo/target/release/deps/libfiremarshal-6c52a25d6aeec6b4.rmeta: src/lib.rs

src/lib.rs:
