/root/repo/target/release/deps/marshal-0f829e80ae57bd2f.d: src/bin/marshal.rs

/root/repo/target/release/deps/marshal-0f829e80ae57bd2f: src/bin/marshal.rs

src/bin/marshal.rs:
