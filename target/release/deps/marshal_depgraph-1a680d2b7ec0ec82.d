/root/repo/target/release/deps/marshal_depgraph-1a680d2b7ec0ec82.d: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

/root/repo/target/release/deps/libmarshal_depgraph-1a680d2b7ec0ec82.rlib: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

/root/repo/target/release/deps/libmarshal_depgraph-1a680d2b7ec0ec82.rmeta: crates/depgraph/src/lib.rs crates/depgraph/src/error.rs crates/depgraph/src/exec.rs crates/depgraph/src/graph.rs crates/depgraph/src/hash.rs crates/depgraph/src/state.rs crates/depgraph/src/task.rs

crates/depgraph/src/lib.rs:
crates/depgraph/src/error.rs:
crates/depgraph/src/exec.rs:
crates/depgraph/src/graph.rs:
crates/depgraph/src/hash.rs:
crates/depgraph/src/state.rs:
crates/depgraph/src/task.rs:
