/root/repo/target/release/deps/marshal_script-c858bbeb3d4ab812.d: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

/root/repo/target/release/deps/libmarshal_script-c858bbeb3d4ab812.rlib: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

/root/repo/target/release/deps/libmarshal_script-c858bbeb3d4ab812.rmeta: crates/script/src/lib.rs crates/script/src/ast.rs crates/script/src/hostenv.rs crates/script/src/interp.rs crates/script/src/lex.rs crates/script/src/parse.rs

crates/script/src/lib.rs:
crates/script/src/ast.rs:
crates/script/src/hostenv.rs:
crates/script/src/interp.rs:
crates/script/src/lex.rs:
crates/script/src/parse.rs:
