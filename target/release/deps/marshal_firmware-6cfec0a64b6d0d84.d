/root/repo/target/release/deps/marshal_firmware-6cfec0a64b6d0d84.d: crates/firmware/src/lib.rs

/root/repo/target/release/deps/libmarshal_firmware-6cfec0a64b6d0d84.rlib: crates/firmware/src/lib.rs

/root/repo/target/release/deps/libmarshal_firmware-6cfec0a64b6d0d84.rmeta: crates/firmware/src/lib.rs

crates/firmware/src/lib.rs:
