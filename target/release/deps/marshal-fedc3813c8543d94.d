/root/repo/target/release/deps/marshal-fedc3813c8543d94.d: src/bin/marshal.rs

/root/repo/target/release/deps/marshal-fedc3813c8543d94: src/bin/marshal.rs

src/bin/marshal.rs:
