/root/repo/target/release/deps/marshal_qcheck-10688c4f5abba7bd.d: crates/qcheck/src/lib.rs

/root/repo/target/release/deps/libmarshal_qcheck-10688c4f5abba7bd.rlib: crates/qcheck/src/lib.rs

/root/repo/target/release/deps/libmarshal_qcheck-10688c4f5abba7bd.rmeta: crates/qcheck/src/lib.rs

crates/qcheck/src/lib.rs:
