/root/repo/target/release/deps/marshal_sim_rtl-a5f284609fbe6ef7.d: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

/root/repo/target/release/deps/libmarshal_sim_rtl-a5f284609fbe6ef7.rlib: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

/root/repo/target/release/deps/libmarshal_sim_rtl-a5f284609fbe6ef7.rmeta: crates/sim-rtl/src/lib.rs crates/sim-rtl/src/bpred.rs crates/sim-rtl/src/cache.rs crates/sim-rtl/src/config.rs crates/sim-rtl/src/firesim.rs crates/sim-rtl/src/nic.rs crates/sim-rtl/src/pfa.rs crates/sim-rtl/src/pipeline.rs

crates/sim-rtl/src/lib.rs:
crates/sim-rtl/src/bpred.rs:
crates/sim-rtl/src/cache.rs:
crates/sim-rtl/src/config.rs:
crates/sim-rtl/src/firesim.rs:
crates/sim-rtl/src/nic.rs:
crates/sim-rtl/src/pfa.rs:
crates/sim-rtl/src/pipeline.rs:
