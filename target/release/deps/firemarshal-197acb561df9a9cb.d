/root/repo/target/release/deps/firemarshal-197acb561df9a9cb.d: src/lib.rs

/root/repo/target/release/deps/libfiremarshal-197acb561df9a9cb.rlib: src/lib.rs

/root/repo/target/release/deps/libfiremarshal-197acb561df9a9cb.rmeta: src/lib.rs

src/lib.rs:
