/root/repo/target/release/deps/marshal_workloads-5ea6288fe161e644.d: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/release/deps/libmarshal_workloads-5ea6288fe161e644.rlib: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

/root/repo/target/release/deps/libmarshal_workloads-5ea6288fe161e644.rmeta: crates/workloads/src/lib.rs crates/workloads/src/bases.rs crates/workloads/src/board.rs crates/workloads/src/coremark.rs crates/workloads/src/dnn.rs crates/workloads/src/intspeed.rs crates/workloads/src/pfa.rs crates/workloads/src/registry.rs crates/workloads/src/runtime.rs

crates/workloads/src/lib.rs:
crates/workloads/src/bases.rs:
crates/workloads/src/board.rs:
crates/workloads/src/coremark.rs:
crates/workloads/src/dnn.rs:
crates/workloads/src/intspeed.rs:
crates/workloads/src/pfa.rs:
crates/workloads/src/registry.rs:
crates/workloads/src/runtime.rs:
