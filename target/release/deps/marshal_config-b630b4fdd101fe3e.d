/root/repo/target/release/deps/marshal_config-b630b4fdd101fe3e.d: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

/root/repo/target/release/deps/libmarshal_config-b630b4fdd101fe3e.rlib: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

/root/repo/target/release/deps/libmarshal_config-b630b4fdd101fe3e.rmeta: crates/config/src/lib.rs crates/config/src/error.rs crates/config/src/inherit.rs crates/config/src/jobs.rs crates/config/src/json.rs crates/config/src/schema.rs crates/config/src/search.rs crates/config/src/value.rs crates/config/src/yaml.rs

crates/config/src/lib.rs:
crates/config/src/error.rs:
crates/config/src/inherit.rs:
crates/config/src/jobs.rs:
crates/config/src/json.rs:
crates/config/src/schema.rs:
crates/config/src/search.rs:
crates/config/src/value.rs:
crates/config/src/yaml.rs:
