/root/repo/target/release/deps/marshal_core-0785b91bb6cb1978.d: crates/core/src/lib.rs crates/core/src/board.rs crates/core/src/build.rs crates/core/src/clean.rs crates/core/src/cli.rs crates/core/src/connector.rs crates/core/src/error.rs crates/core/src/faultinject.rs crates/core/src/install.rs crates/core/src/integrity.rs crates/core/src/launch.rs crates/core/src/output.rs crates/core/src/test.rs

/root/repo/target/release/deps/libmarshal_core-0785b91bb6cb1978.rlib: crates/core/src/lib.rs crates/core/src/board.rs crates/core/src/build.rs crates/core/src/clean.rs crates/core/src/cli.rs crates/core/src/connector.rs crates/core/src/error.rs crates/core/src/faultinject.rs crates/core/src/install.rs crates/core/src/integrity.rs crates/core/src/launch.rs crates/core/src/output.rs crates/core/src/test.rs

/root/repo/target/release/deps/libmarshal_core-0785b91bb6cb1978.rmeta: crates/core/src/lib.rs crates/core/src/board.rs crates/core/src/build.rs crates/core/src/clean.rs crates/core/src/cli.rs crates/core/src/connector.rs crates/core/src/error.rs crates/core/src/faultinject.rs crates/core/src/install.rs crates/core/src/integrity.rs crates/core/src/launch.rs crates/core/src/output.rs crates/core/src/test.rs

crates/core/src/lib.rs:
crates/core/src/board.rs:
crates/core/src/build.rs:
crates/core/src/clean.rs:
crates/core/src/cli.rs:
crates/core/src/connector.rs:
crates/core/src/error.rs:
crates/core/src/faultinject.rs:
crates/core/src/install.rs:
crates/core/src/integrity.rs:
crates/core/src/launch.rs:
crates/core/src/output.rs:
crates/core/src/test.rs:
