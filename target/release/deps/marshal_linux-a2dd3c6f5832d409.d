/root/repo/target/release/deps/marshal_linux-a2dd3c6f5832d409.d: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

/root/repo/target/release/deps/libmarshal_linux-a2dd3c6f5832d409.rlib: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

/root/repo/target/release/deps/libmarshal_linux-a2dd3c6f5832d409.rmeta: crates/linux/src/lib.rs crates/linux/src/initramfs.rs crates/linux/src/kconfig.rs crates/linux/src/kernel.rs crates/linux/src/modules.rs

crates/linux/src/lib.rs:
crates/linux/src/initramfs.rs:
crates/linux/src/kconfig.rs:
crates/linux/src/kernel.rs:
crates/linux/src/modules.rs:
