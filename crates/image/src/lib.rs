//! # marshal-image
//!
//! Deterministic filesystem images — the "disk image" half of a FireMarshal
//! workload (Fig. 3 of the paper).
//!
//! - [`fs`]: an in-memory filesystem tree (files, directories, symlinks,
//!   permission bits) with path operations; copy-on-write with memoized
//!   Merkle fingerprints, so cloning an image is O(1) and re-hashing after
//!   a mutation costs only the changed subtree.
//! - [`format`]: a byte-stable binary image format (`MIMG`).
//! - [`store`]: a content-addressed blob store plus `MMAN` manifests, so
//!   persisted levels share payload bytes instead of repeating them.
//! - [`cpio`]: a newc-inspired archive used for initramfs payloads.
//! - [`overlay`]: overlaying trees and host directories onto an image.
//! - [`initsys`]: init-system integration — Buildroot-style `init` scripts
//!   and Fedora-style `systemd` units that run a workload's `command`/`run`
//!   payload at boot, and one-shot `guest-init` hooks.
//!
//! ## Example
//!
//! ```rust
//! use marshal_image::FsImage;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut img = FsImage::new();
//! img.write_file("/etc/hostname", b"buildroot")?;
//! img.write_exec("/bin/bench", b"MEXE...")?;
//! assert_eq!(img.read_file("/etc/hostname")?, b"buildroot");
//! let bytes = img.to_bytes();
//! let back = FsImage::from_bytes(&bytes)?;
//! assert_eq!(back.read_file("/etc/hostname")?, b"buildroot");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cpio;
pub mod format;
pub mod fs;
pub mod initsys;
pub mod overlay;
pub mod store;

pub use fs::{Blob, Dir, FsError, FsImage, Node};
pub use initsys::{BootPayload, InitSystem};
pub use store::{manifest_refs, sniff_manifest, BlobStore, StoreError, StoreStats};
