//! Overlay application: merging trees and host directories into images.
//!
//! Implements §III-B step 5a: "FireMarshal makes a copy of the parent's
//! disk image and then copies over any files from the `file` or `overlay`
//! options."

use std::path::Path;

use crate::fs::{FsError, FsImage, Node};

impl FsImage {
    /// Overlays another image on top of this one.
    ///
    /// Files and symlinks in `upper` replace same-named nodes here;
    /// directories merge recursively. This is the core of parent-image
    /// reuse: children start from a clone of the parent image and apply
    /// their overlay.
    pub fn apply_overlay(&mut self, upper: &FsImage) {
        for (path, node) in upper.walk() {
            // Overlay semantics: the upper layer wins even when a lower
            // *file* blocks an upper *directory* (or a path through one) —
            // remove the conflicting ancestor and retry.
            let apply = |img: &mut FsImage| match node {
                Node::Dir(_) => img.mkdir_p(&path),
                other => img.write_node(&path, other.clone()),
            };
            if let Err(FsError::NotADirectory(_)) = apply(self) {
                self.remove_conflicting_ancestor(&path);
                // Bad paths cannot come out of walk(), so this succeeds.
                let _ = apply(self);
            }
        }
    }

    /// Removes the first ancestor of `path` that exists but is not a
    /// directory (clearing the way for an overlay write).
    fn remove_conflicting_ancestor(&mut self, path: &str) {
        let mut prefix = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            prefix.push('/');
            prefix.push_str(comp);
            if prefix == path {
                break;
            }
            if matches!(
                self.node(&prefix),
                Some(Node::File { .. } | Node::Symlink(_))
            ) {
                self.remove(&prefix);
                return;
            }
        }
    }

    /// Overlays a host directory tree rooted at `host_dir` onto `guest_root`.
    ///
    /// Host regular files become image files (executable bit preserved on
    /// Unix), directories recurse, symlinks are copied verbatim. Entries are
    /// visited in sorted order so the result is deterministic.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] when `host_dir` does not exist, or an I/O
    /// failure mapped to [`FsError::BadPath`].
    pub fn overlay_host_dir(&mut self, host_dir: &Path, guest_root: &str) -> Result<(), FsError> {
        if !host_dir.is_dir() {
            return Err(FsError::NotFound(host_dir.display().to_string()));
        }
        let mut entries: Vec<_> = std::fs::read_dir(host_dir)
            .map_err(|e| FsError::BadPath(format!("{}: {e}", host_dir.display())))?
            .filter_map(Result::ok)
            .collect();
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let name = entry.file_name().to_string_lossy().into_owned();
            let guest_path = if guest_root == "/" {
                format!("/{name}")
            } else {
                format!("{guest_root}/{name}")
            };
            let path = entry.path();
            let meta = std::fs::symlink_metadata(&path)
                .map_err(|e| FsError::BadPath(format!("{}: {e}", path.display())))?;
            if meta.file_type().is_symlink() {
                let target = std::fs::read_link(&path)
                    .map_err(|e| FsError::BadPath(format!("{}: {e}", path.display())))?;
                self.symlink(&guest_path, &target.to_string_lossy())?;
            } else if meta.is_dir() {
                self.mkdir_p(&guest_path)?;
                self.overlay_host_dir(&path, &guest_path)?;
            } else {
                let data = std::fs::read(&path)
                    .map_err(|e| FsError::BadPath(format!("{}: {e}", path.display())))?;
                let exec = is_executable(&meta);
                if exec {
                    self.write_exec(&guest_path, &data)?;
                } else {
                    self.write_file(&guest_path, &data)?;
                }
            }
        }
        Ok(())
    }

    /// Copies a path (file or directory subtree) out of the image into a
    /// host directory — used by output collection after a run.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] when `guest_path` is missing, or I/O failures
    /// as [`FsError::BadPath`].
    pub fn copy_out(&self, guest_path: &str, host_dest: &Path) -> Result<(), FsError> {
        let node = self
            .resolve(guest_path)
            .ok_or_else(|| FsError::NotFound(guest_path.to_owned()))?;
        copy_node_out(node, host_dest)
    }
}

fn copy_node_out(node: &Node, dest: &Path) -> Result<(), FsError> {
    match node {
        Node::File { data, .. } => {
            if let Some(parent) = dest.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| FsError::BadPath(format!("{}: {e}", parent.display())))?;
            }
            std::fs::write(dest, data)
                .map_err(|e| FsError::BadPath(format!("{}: {e}", dest.display())))
        }
        Node::Dir(dir) => {
            std::fs::create_dir_all(dest)
                .map_err(|e| FsError::BadPath(format!("{}: {e}", dest.display())))?;
            for (name, child) in dir.children() {
                copy_node_out(child, &dest.join(name))?;
            }
            Ok(())
        }
        Node::Symlink(target) => {
            // Materialise symlink contents as a file for output collection.
            std::fs::write(dest, target.as_bytes())
                .map_err(|e| FsError::BadPath(format!("{}: {e}", dest.display())))
        }
    }
}

#[cfg(unix)]
fn is_executable(meta: &std::fs::Metadata) -> bool {
    use std::os::unix::fs::PermissionsExt;
    meta.permissions().mode() & 0o111 != 0
}

#[cfg(not(unix))]
fn is_executable(_meta: &std::fs::Metadata) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-overlay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn image_overlay_replaces_and_merges() {
        let mut base = FsImage::new();
        base.write_file("/etc/keep", b"keep").unwrap();
        base.write_file("/etc/replace", b"old").unwrap();

        let mut upper = FsImage::new();
        upper.write_file("/etc/replace", b"new").unwrap();
        upper.write_file("/bench/run", b"go").unwrap();

        base.apply_overlay(&upper);
        assert_eq!(base.read_file("/etc/keep").unwrap(), b"keep");
        assert_eq!(base.read_file("/etc/replace").unwrap(), b"new");
        assert_eq!(base.read_file("/bench/run").unwrap(), b"go");
    }

    #[test]
    fn overlay_preserves_parent_unrelated_dirs() {
        let mut base = FsImage::new();
        base.write_file("/lib/modules/a.ko", b"A").unwrap();
        let mut upper = FsImage::new();
        upper.mkdir_p("/lib/modules").unwrap();
        base.apply_overlay(&upper);
        assert_eq!(base.read_file("/lib/modules/a.ko").unwrap(), b"A");
    }

    #[test]
    fn host_dir_overlay() {
        let dir = tmpdir("hostdir");
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("top.txt"), b"top").unwrap();
        std::fs::write(dir.join("sub/inner.txt"), b"inner").unwrap();

        let mut img = FsImage::new();
        img.overlay_host_dir(&dir, "/").unwrap();
        assert_eq!(img.read_file("/top.txt").unwrap(), b"top");
        assert_eq!(img.read_file("/sub/inner.txt").unwrap(), b"inner");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn host_dir_missing_errors() {
        let mut img = FsImage::new();
        assert!(matches!(
            img.overlay_host_dir(Path::new("/definitely/not/here"), "/"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn copy_out_roundtrip() {
        let dir = tmpdir("copyout");
        let mut img = FsImage::new();
        img.write_file("/output/results.csv", b"a,b\n1,2\n")
            .unwrap();
        img.write_file("/output/nested/log.txt", b"log").unwrap();
        img.copy_out("/output", &dir.join("out")).unwrap();
        assert_eq!(
            std::fs::read(dir.join("out/results.csv")).unwrap(),
            b"a,b\n1,2\n"
        );
        assert_eq!(
            std::fs::read(dir.join("out/nested/log.txt")).unwrap(),
            b"log"
        );
        assert!(img.copy_out("/missing", &dir.join("x")).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn host_exec_bit_preserved() {
        use std::os::unix::fs::PermissionsExt;
        let dir = tmpdir("execbit");
        let script = dir.join("run.sh");
        std::fs::write(&script, b"#!/bin/sh\n").unwrap();
        std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
        let mut img = FsImage::new();
        img.overlay_host_dir(&dir, "/").unwrap();
        assert!(img.is_executable("/run.sh"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
