//! Content-addressed blob store and `MMAN` image manifests.
//!
//! Instead of persisting every build level as a full flat [`MIMG`]
//! serialisation, levels are split into a *manifest* (the tree shape plus a
//! content fingerprint per file) and a pool of *blobs* (file payloads keyed
//! by fingerprint, written once). Identical payloads — across levels of an
//! inheritance chain, across jobs, across sibling workloads — share a single
//! blob on disk, so persisting a child level costs O(what changed), not
//! O(image size). This is the same shape as Nix/ccache-style derivation
//! caching applied to FireMarshal's level store.
//!
//! Blob writes are idempotent: the path is derived from the content hash, a
//! unique temp file is renamed into place, and a pre-existing blob is left
//! untouched — so concurrent `-j N` builders writing the same payload do not
//! conflict (and declare the store root as a shared tree claim for the write
//! audit).
//!
//! [`MIMG`]: crate::format

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use marshal_depgraph::Fingerprint;

use crate::format::ImageFormatError;
use crate::fs::{Blob, FsImage, Node};

/// Manifest magic bytes.
pub const MANIFEST_MAGIC: &[u8; 4] = b"MMAN";
/// Current manifest version.
pub const MANIFEST_VERSION: u32 = 1;

/// Errors from the blob store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure reading or writing the store.
    Io(String),
    /// Malformed manifest bytes.
    Manifest(ImageFormatError),
    /// A manifest references a blob that is not in the store.
    MissingBlob {
        /// Path the blob should live at.
        path: PathBuf,
        /// The referenced fingerprint.
        fp: Fingerprint,
    },
    /// A blob's bytes do not hash to its name (disk corruption or a torn
    /// write that survived).
    CorruptBlob {
        /// Path of the corrupt blob.
        path: PathBuf,
        /// Fingerprint the name promises.
        expected: Fingerprint,
        /// Fingerprint the bytes actually have.
        found: Fingerprint,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "blob store I/O error: {m}"),
            StoreError::Manifest(e) => write!(f, "bad manifest: {e}"),
            StoreError::MissingBlob { path, fp } => {
                write!(f, "missing blob {fp} (expected at {})", path.display())
            }
            StoreError::CorruptBlob {
                path,
                expected,
                found,
            } => write!(
                f,
                "corrupt blob {}: named {expected} but contents hash to {found}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ImageFormatError> for StoreError {
    fn from(e: ImageFormatError) -> StoreError {
        StoreError::Manifest(e)
    }
}

/// Byte accounting for a store operation — what a persist actually cost,
/// used by `marshal`'s build reporting and the `image_chain` bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Blobs newly written to disk.
    pub blobs_written: u64,
    /// Blobs that already existed and were shared instead of rewritten.
    pub blobs_shared: u64,
    /// Payload bytes newly written (excludes shared blobs).
    pub bytes_written: u64,
    /// Payload bytes deduplicated against existing blobs.
    pub bytes_shared: u64,
    /// Size of the manifest itself.
    pub manifest_bytes: u64,
}

impl StoreStats {
    /// Accumulates another operation's stats into this one.
    pub fn absorb(&mut self, other: &StoreStats) {
        self.blobs_written += other.blobs_written;
        self.blobs_shared += other.blobs_shared;
        self.bytes_written += other.bytes_written;
        self.bytes_shared += other.bytes_shared;
        self.manifest_bytes += other.manifest_bytes;
    }
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A content-addressed blob store rooted at a directory
/// (`workdir/objects/` in a marshal workdir).
///
/// Blobs live at `<root>/<first two hex digits>/<fingerprint>.blob` and are
/// write-once: a blob that exists is never rewritten, and writes land via a
/// unique temp file plus atomic rename, so concurrent writers of the same
/// content are benign.
#[derive(Debug, Clone)]
pub struct BlobStore {
    root: PathBuf,
}

impl BlobStore {
    /// A store rooted at `root`. The directory is created lazily on first
    /// write.
    pub fn new(root: impl Into<PathBuf>) -> BlobStore {
        BlobStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where a blob with this fingerprint lives (whether or not it exists).
    pub fn blob_path(&self, fp: Fingerprint) -> PathBuf {
        let name = fp.to_string();
        self.root.join(&name[..2]).join(format!("{name}.blob"))
    }

    /// Ensures `blob` is present in the store; returns `true` when it was
    /// newly written, `false` when an existing blob was shared.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn put(&self, blob: &Blob) -> Result<bool, StoreError> {
        let fp = blob.fingerprint();
        let path = self.blob_path(fp);
        if path.exists() {
            return Ok(false);
        }
        marshal_depgraph::assert_claimed(&path);
        let parent = path.parent().expect("blob path has a parent");
        std::fs::create_dir_all(parent)
            .map_err(|e| StoreError::Io(format!("{}: {e}", parent.display())))?;
        let tmp = parent.join(format!(
            ".{fp}.{}.{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, blob.as_ref())
            .map_err(|e| StoreError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            StoreError::Io(format!("{}: {e}", path.display()))
        })?;
        Ok(true)
    }

    /// Whether a blob with this fingerprint is present on disk (presence
    /// only — contents are verified by [`BlobStore::get`]).
    pub fn has(&self, fp: Fingerprint) -> bool {
        self.blob_path(fp).is_file()
    }

    /// Where quarantined blobs live (`<root>/.quarantine/`). The leading
    /// dot keeps the directory out of the shard walks done by pruning and
    /// scrubbing.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join(".quarantine")
    }

    /// Moves the on-disk blob for `fp` out of the pool into quarantine,
    /// returning where it went and how many bytes it held. Quarantining
    /// (rather than deleting) preserves the evidence for post-mortems while
    /// guaranteeing the pool never serves the bytes again.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingBlob`] when there is nothing to quarantine,
    /// [`StoreError::Io`] on filesystem failure.
    pub fn quarantine(&self, fp: Fingerprint) -> Result<(PathBuf, u64), StoreError> {
        let src = self.blob_path(fp);
        let size = match std::fs::metadata(&src) {
            Ok(m) => m.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingBlob { path: src, fp });
            }
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", src.display()))),
        };
        let dst = self.quarantine_dir().join(format!("{fp}.blob"));
        marshal_depgraph::assert_claimed(&dst);
        std::fs::create_dir_all(self.quarantine_dir())
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.quarantine_dir().display())))?;
        std::fs::rename(&src, &dst)
            .map_err(|e| StoreError::Io(format!("{}: {e}", dst.display())))?;
        Ok((dst, size))
    }

    /// Preserves bytes that arrived from a remote but failed hash
    /// verification. They are written to quarantine directly and never
    /// enter the pool.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn quarantine_received(
        &self,
        fp: Fingerprint,
        bytes: &[u8],
    ) -> Result<PathBuf, StoreError> {
        let dst = self.quarantine_dir().join(format!("{fp}.recv.blob"));
        marshal_depgraph::assert_claimed(&dst);
        std::fs::create_dir_all(self.quarantine_dir())
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.quarantine_dir().display())))?;
        std::fs::write(&dst, bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", dst.display())))?;
        Ok(dst)
    }

    /// Loads and verifies the blob with this fingerprint.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingBlob`] when absent, [`StoreError::CorruptBlob`]
    /// when the contents do not hash back to `fp`, [`StoreError::Io`] for
    /// other filesystem failures.
    pub fn get(&self, fp: Fingerprint) -> Result<Blob, StoreError> {
        let path = self.blob_path(fp);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::MissingBlob { path, fp });
            }
            Err(e) => return Err(StoreError::Io(format!("{}: {e}", path.display()))),
        };
        let found = Fingerprint::of(&bytes);
        if found != fp {
            return Err(StoreError::CorruptBlob {
                path,
                expected: fp,
                found,
            });
        }
        Ok(Blob::with_fingerprint(bytes, fp))
    }

    /// Persists an image: every file payload goes into the store (deduped
    /// against existing blobs), and the returned bytes are an `MMAN`
    /// manifest describing the tree.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write_manifest(&self, image: &FsImage) -> Result<(Vec<u8>, StoreStats), StoreError> {
        let entries = image.walk();
        let mut stats = StoreStats::default();
        let mut out = Vec::with_capacity(64 + entries.len() * 48);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&image.size_limit().unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (path, node) in entries {
            let tag: u8 = match node {
                Node::File { exec: false, .. } => 0,
                Node::File { exec: true, .. } => 1,
                Node::Dir(_) => 2,
                Node::Symlink(_) => 3,
            };
            out.push(tag);
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            match node {
                Node::File { data, .. } => {
                    if self.put(data)? {
                        stats.blobs_written += 1;
                        stats.bytes_written += data.len() as u64;
                    } else {
                        stats.blobs_shared += 1;
                        stats.bytes_shared += data.len() as u64;
                    }
                    out.extend_from_slice(&data.fingerprint().0.to_le_bytes());
                    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
                }
                Node::Dir(_) => {}
                Node::Symlink(target) => {
                    out.extend_from_slice(&(target.len() as u32).to_le_bytes());
                    out.extend_from_slice(target.as_bytes());
                }
            }
        }
        stats.manifest_bytes = out.len() as u64;
        Ok((out, stats))
    }

    /// Rebuilds an image from `MMAN` manifest bytes, fetching payloads from
    /// the store. Payloads referenced more than once within the manifest
    /// share a single allocation in the result.
    ///
    /// # Errors
    ///
    /// [`StoreError::Manifest`] for malformed bytes, plus the
    /// [`BlobStore::get`] errors for each referenced payload.
    pub fn read_manifest(&self, bytes: &[u8]) -> Result<FsImage, StoreError> {
        let entries = parse_manifest(bytes)?;
        let mut img = FsImage::new();
        img.set_size_limit(entries.limit);
        let mut loaded: BTreeMap<Fingerprint, Blob> = BTreeMap::new();
        for entry in entries.entries {
            match entry.kind {
                EntryKind::File { fp, exec } => {
                    let blob = match loaded.get(&fp) {
                        Some(b) => b.clone(),
                        None => {
                            let b = self.get(fp)?;
                            loaded.insert(fp, b.clone());
                            b
                        }
                    };
                    img.write_node(&entry.path, Node::File { data: blob, exec })
                        .map_err(|e| StoreError::Manifest(e.into()))?;
                }
                EntryKind::Dir => img
                    .mkdir_p(&entry.path)
                    .map_err(|e| StoreError::Manifest(e.into()))?,
                EntryKind::Symlink(target) => img
                    .symlink(&entry.path, &target)
                    .map_err(|e| StoreError::Manifest(e.into()))?,
            }
        }
        Ok(img)
    }

    /// Loads an image from a level file on disk, accepting both `MMAN`
    /// manifests and legacy flat `MIMG` serialisations (pre-existing
    /// workdirs).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file is unreadable, otherwise the
    /// [`BlobStore::read_manifest`] / [`FsImage::from_bytes`] errors.
    pub fn load_image(&self, path: &Path) -> Result<FsImage, StoreError> {
        let bytes =
            std::fs::read(path).map_err(|e| StoreError::Io(format!("{}: {e}", path.display())))?;
        if sniff_manifest(&bytes) {
            self.read_manifest(&bytes)
        } else {
            Ok(FsImage::from_bytes(&bytes)?)
        }
    }
}

/// Whether `bytes` start with the `MMAN` manifest magic.
pub fn sniff_manifest(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == MANIFEST_MAGIC
}

/// The blob fingerprints a manifest references (with duplicates removed) —
/// what `marshal clean` uses to decide which blobs are still live.
///
/// # Errors
///
/// [`StoreError::Manifest`] for malformed bytes.
pub fn manifest_refs(bytes: &[u8]) -> Result<Vec<Fingerprint>, StoreError> {
    let parsed = parse_manifest(bytes)?;
    let mut fps: Vec<Fingerprint> = parsed
        .entries
        .into_iter()
        .filter_map(|e| match e.kind {
            EntryKind::File { fp, .. } => Some(fp),
            _ => None,
        })
        .collect();
    fps.sort_unstable();
    fps.dedup();
    Ok(fps)
}

enum EntryKind {
    File { fp: Fingerprint, exec: bool },
    Dir,
    Symlink(String),
}

struct ManifestEntry {
    path: String,
    kind: EntryKind,
}

struct ParsedManifest {
    limit: Option<u64>,
    entries: Vec<ManifestEntry>,
}

fn parse_manifest(bytes: &[u8]) -> Result<ParsedManifest, StoreError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ImageFormatError> {
        if *pos + n > bytes.len() {
            return Err(ImageFormatError::Truncated);
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MANIFEST_MAGIC {
        return Err(ImageFormatError::BadMagic.into());
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    if version != MANIFEST_VERSION {
        return Err(ImageFormatError::BadVersion(version).into());
    }
    let limit = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
    let nentries = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
    let mut entries = Vec::with_capacity(nentries as usize);
    for _ in 0..nentries {
        let tag = take(&mut pos, 1)?[0];
        let path_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let path = std::str::from_utf8(take(&mut pos, path_len)?)
            .map_err(|_| ImageFormatError::BadPath)?
            .to_owned();
        if !path.starts_with('/') {
            return Err(ImageFormatError::BadPath.into());
        }
        let kind = match tag {
            0 | 1 => {
                let fp = Fingerprint(u128::from_le_bytes(take(&mut pos, 16)?.try_into().unwrap()));
                let _size = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
                EntryKind::File { fp, exec: tag == 1 }
            }
            2 => EntryKind::Dir,
            3 => {
                let target_len =
                    u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
                let target = std::str::from_utf8(take(&mut pos, target_len)?)
                    .map_err(|_| ImageFormatError::BadPath)?
                    .to_owned();
                EntryKind::Symlink(target)
            }
            t => return Err(ImageFormatError::BadTag(t).into()),
        };
        entries.push(ManifestEntry { path, kind });
    }
    if pos != bytes.len() {
        return Err(ImageFormatError::Structure("trailing bytes".to_owned()).into());
    }
    Ok(ParsedManifest {
        limit: if limit == 0 { None } else { Some(limit) },
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample() -> FsImage {
        let mut img = FsImage::new();
        img.set_size_limit(Some(1 << 20));
        img.write_file("/etc/hostname", b"node0").unwrap();
        img.write_exec("/bin/bench", b"\x13\x05\x10\x00").unwrap();
        img.symlink("/bin/sh", "bench").unwrap();
        img.mkdir_p("/output").unwrap();
        img.write_file("/etc/copy", b"node0").unwrap();
        img
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = scratch("roundtrip");
        let store = BlobStore::new(dir.join("objects"));
        let img = sample();
        let (manifest, stats) = store.write_manifest(&img).unwrap();
        assert!(sniff_manifest(&manifest));
        assert!(stats.blobs_written >= 2);
        let back = store.read_manifest(&manifest).unwrap();
        assert_eq!(img, back);
        assert_eq!(img.fingerprint(), back.fingerprint());
        assert_eq!(back.size_limit(), Some(1 << 20));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn second_write_shares_all_blobs() {
        let dir = scratch("dedupe");
        let store = BlobStore::new(dir.join("objects"));
        let img = sample();
        let (_, first) = store.write_manifest(&img).unwrap();
        let (_, second) = store.write_manifest(&img).unwrap();
        assert_eq!(second.blobs_written, 0);
        assert_eq!(second.bytes_written, 0);
        assert_eq!(
            second.blobs_shared,
            first.blobs_written + first.blobs_shared
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn identical_payloads_share_one_blob() {
        let dir = scratch("identical");
        let store = BlobStore::new(dir.join("objects"));
        let mut img = FsImage::new();
        img.write_file("/a", b"same-bytes").unwrap();
        img.write_file("/b", b"same-bytes").unwrap();
        let (manifest, stats) = store.write_manifest(&img).unwrap();
        assert_eq!(stats.blobs_written, 1);
        assert_eq!(stats.blobs_shared, 1);
        let refs = manifest_refs(&manifest).unwrap();
        assert_eq!(refs.len(), 1);
        // Intra-manifest sharing: both files come back on one allocation.
        let back = store.read_manifest(&manifest).unwrap();
        let (Some(Node::File { data: a, .. }), Some(Node::File { data: b, .. })) =
            (back.node("/a"), back.node("/b"))
        else {
            panic!("files missing");
        };
        assert!(a.ptr_eq(b));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_blob_reported() {
        let dir = scratch("missing");
        let store = BlobStore::new(dir.join("objects"));
        let mut img = FsImage::new();
        img.write_file("/f", b"payload").unwrap();
        let (manifest, _) = store.write_manifest(&img).unwrap();
        let fp = manifest_refs(&manifest).unwrap()[0];
        std::fs::remove_file(store.blob_path(fp)).unwrap();
        assert!(matches!(
            store.read_manifest(&manifest),
            Err(StoreError::MissingBlob { .. })
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_blob_reported() {
        let dir = scratch("corrupt");
        let store = BlobStore::new(dir.join("objects"));
        let mut img = FsImage::new();
        img.write_file("/f", b"payload").unwrap();
        let (manifest, _) = store.write_manifest(&img).unwrap();
        let fp = manifest_refs(&manifest).unwrap()[0];
        std::fs::write(store.blob_path(fp), b"flipped bits").unwrap();
        assert!(matches!(
            store.read_manifest(&manifest),
            Err(StoreError::CorruptBlob { .. })
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn load_image_sniffs_legacy_flat_format() {
        let dir = scratch("legacy");
        let store = BlobStore::new(dir.join("objects"));
        let img = sample();
        let flat_path = dir.join("level.img");
        std::fs::write(&flat_path, img.to_bytes()).unwrap();
        assert_eq!(store.load_image(&flat_path).unwrap(), img);

        let (manifest, _) = store.write_manifest(&img).unwrap();
        let man_path = dir.join("level2.img");
        std::fs::write(&man_path, &manifest).unwrap();
        assert_eq!(store.load_image(&man_path).unwrap(), img);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn garbage_manifest_rejected() {
        assert!(matches!(
            parse_manifest(b"nope").err(),
            Some(StoreError::Manifest(_))
        ));
        let mut truncated = Vec::new();
        truncated.extend_from_slice(MANIFEST_MAGIC);
        assert!(parse_manifest(&truncated).is_err());
    }
}
