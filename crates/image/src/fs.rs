//! The in-memory filesystem tree.

use std::collections::BTreeMap;
use std::fmt;

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path exists but is a directory where a file was expected (or the
    /// reverse).
    WrongKind(String),
    /// A component of the path is a file, so the path cannot be created.
    NotADirectory(String),
    /// Path is syntactically invalid (empty, not absolute, `..`).
    BadPath(String),
    /// The image exceeds its configured size limit.
    TooLarge {
        /// Bytes the image currently needs.
        need: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::WrongKind(p) => write!(f, "wrong node kind at {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
            FsError::TooLarge { need, limit } => {
                write!(f, "image needs {need} bytes, exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for FsError {}

/// A node in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Regular file: contents plus an executable flag.
    File {
        /// File contents.
        data: Vec<u8>,
        /// Whether the execute bit is set.
        exec: bool,
    },
    /// Directory with named children.
    Dir(BTreeMap<String, Node>),
    /// Symbolic link to another path.
    Symlink(String),
}

impl Node {
    /// Byte size of this node's payload (recursive for directories).
    pub fn size(&self) -> u64 {
        match self {
            Node::File { data, .. } => data.len() as u64,
            Node::Dir(children) => children.values().map(Node::size).sum(),
            Node::Symlink(target) => target.len() as u64,
        }
    }
}

/// Splits an absolute guest path into validated components.
///
/// # Errors
///
/// Rejects relative paths, empty components other than the root, and `..`.
pub fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
    if !path.starts_with('/') {
        return Err(FsError::BadPath(path.to_owned()));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => return Err(FsError::BadPath(path.to_owned())),
            c => out.push(c),
        }
    }
    Ok(out)
}

/// A deterministic in-memory filesystem image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsImage {
    root: BTreeMap<String, Node>,
    size_limit: Option<u64>,
}

impl Default for FsImage {
    fn default() -> FsImage {
        FsImage::new()
    }
}

impl FsImage {
    /// Creates an empty image with no size limit.
    pub fn new() -> FsImage {
        FsImage {
            root: BTreeMap::new(),
            size_limit: None,
        }
    }

    /// Sets the `rootfs-size` limit in bytes (checked by [`FsImage::check_size`]
    /// and on serialisation).
    pub fn set_size_limit(&mut self, limit: Option<u64>) {
        self.size_limit = limit;
    }

    /// The configured size limit, if any.
    pub fn size_limit(&self) -> Option<u64> {
        self.size_limit
    }

    /// Total payload bytes stored in the image.
    pub fn total_size(&self) -> u64 {
        self.root.values().map(Node::size).sum()
    }

    /// Verifies the image fits its size limit.
    ///
    /// # Errors
    ///
    /// [`FsError::TooLarge`] when over the limit.
    pub fn check_size(&self) -> Result<(), FsError> {
        if let Some(limit) = self.size_limit {
            let need = self.total_size();
            if need > limit {
                return Err(FsError::TooLarge { need, limit });
            }
        }
        Ok(())
    }

    fn lookup_dir_mut(
        &mut self,
        components: &[&str],
        create: bool,
        path: &str,
    ) -> Result<&mut BTreeMap<String, Node>, FsError> {
        let mut cur = &mut self.root;
        for comp in components {
            let entry = cur.entry((*comp).to_owned());
            let node = match entry {
                std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::btree_map::Entry::Vacant(v) => {
                    if create {
                        v.insert(Node::Dir(BTreeMap::new()))
                    } else {
                        return Err(FsError::NotFound(path.to_owned()));
                    }
                }
            };
            match node {
                Node::Dir(children) => cur = children,
                _ => return Err(FsError::NotADirectory(path.to_owned())),
            }
        }
        Ok(cur)
    }

    /// Looks up a node, following no symlinks.
    pub fn node(&self, path: &str) -> Option<&Node> {
        let components = split_path(path).ok()?;
        let mut cur = &self.root;
        let (last, dirs) = components.split_last()?;
        for comp in dirs {
            match cur.get(*comp) {
                Some(Node::Dir(children)) => cur = children,
                _ => return None,
            }
        }
        cur.get(*last)
    }

    /// Resolves a path, following symlinks (bounded depth).
    pub fn resolve(&self, path: &str) -> Option<&Node> {
        let mut current = path.to_owned();
        for _ in 0..16 {
            match self.node(&current)? {
                Node::Symlink(target) => {
                    current = if target.starts_with('/') {
                        target.clone()
                    } else {
                        let parent = current.rsplit_once('/').map(|(p, _)| p).unwrap_or("");
                        format!("{parent}/{target}")
                    };
                }
                node => return Some(node),
            }
        }
        None
    }

    /// Whether the path exists (without following a final symlink).
    pub fn exists(&self, path: &str) -> bool {
        path == "/" || self.node(path).is_some()
    }

    /// Creates a directory and all missing parents.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] / [`FsError::NotADirectory`].
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        let components = split_path(path)?;
        self.lookup_dir_mut(&components, true, path)?;
        Ok(())
    }

    /// Writes a regular (non-executable) file, creating parents.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] / [`FsError::NotADirectory`].
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.write_node(
            path,
            Node::File {
                data: data.to_vec(),
                exec: false,
            },
        )
    }

    /// Writes an executable file, creating parents.
    ///
    /// # Errors
    ///
    /// Same as [`FsImage::write_file`].
    pub fn write_exec(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.write_node(
            path,
            Node::File {
                data: data.to_vec(),
                exec: true,
            },
        )
    }

    /// Creates a symlink at `path` pointing to `target`.
    ///
    /// # Errors
    ///
    /// Same as [`FsImage::write_file`].
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), FsError> {
        self.write_node(path, Node::Symlink(target.to_owned()))
    }

    /// Inserts an arbitrary node at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] for the root or invalid paths,
    /// [`FsError::NotADirectory`] when a parent is a file.
    pub fn write_node(&mut self, path: &str, node: Node) -> Result<(), FsError> {
        let components = split_path(path)?;
        let Some((last, dirs)) = components.split_last() else {
            return Err(FsError::BadPath(path.to_owned()));
        };
        let dir = self.lookup_dir_mut(dirs, true, path)?;
        dir.insert((*last).to_owned(), node);
        Ok(())
    }

    /// Reads a file's contents (following symlinks).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::WrongKind`].
    pub fn read_file(&self, path: &str) -> Result<&[u8], FsError> {
        match self.resolve(path) {
            Some(Node::File { data, .. }) => Ok(data),
            Some(_) => Err(FsError::WrongKind(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Whether `path` is an executable file (following symlinks).
    pub fn is_executable(&self, path: &str) -> bool {
        matches!(self.resolve(path), Some(Node::File { exec: true, .. }))
    }

    /// Removes a file, symlink, or directory subtree; returns whether it
    /// existed.
    pub fn remove(&mut self, path: &str) -> bool {
        let Ok(components) = split_path(path) else {
            return false;
        };
        let Some((last, dirs)) = components.split_last() else {
            return false;
        };
        let Ok(dir) = self.lookup_dir_mut(dirs, false, path) else {
            return false;
        };
        dir.remove(*last).is_some()
    }

    /// Lists the names in a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::WrongKind`].
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, FsError> {
        if path == "/" {
            return Ok(self.root.keys().cloned().collect());
        }
        match self.resolve(path) {
            Some(Node::Dir(children)) => Ok(children.keys().cloned().collect()),
            Some(_) => Err(FsError::WrongKind(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Depth-first walk over every path in the image, sorted.
    ///
    /// Yields `(absolute_path, node)` pairs; directories appear before their
    /// contents.
    pub fn walk(&self) -> Vec<(String, &Node)> {
        fn rec<'a>(
            prefix: &str,
            dir: &'a BTreeMap<String, Node>,
            out: &mut Vec<(String, &'a Node)>,
        ) {
            for (name, node) in dir {
                let path = format!("{prefix}/{name}");
                out.push((path.clone(), node));
                if let Node::Dir(children) = node {
                    rec(&path, children, out);
                }
            }
        }
        let mut out = Vec::new();
        rec("", &self.root, &mut out);
        out
    }

    /// Number of file/symlink/directory nodes.
    pub fn node_count(&self) -> usize {
        self.walk().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut img = FsImage::new();
        img.write_file("/etc/os-release", b"NAME=Buildroot")
            .unwrap();
        assert_eq!(img.read_file("/etc/os-release").unwrap(), b"NAME=Buildroot");
        assert!(img.exists("/etc"));
        assert!(img.exists("/etc/os-release"));
        assert!(!img.exists("/etc/passwd"));
    }

    #[test]
    fn parents_created() {
        let mut img = FsImage::new();
        img.write_file("/a/b/c/d.txt", b"deep").unwrap();
        assert_eq!(img.list_dir("/a/b/c").unwrap(), vec!["d.txt"]);
    }

    #[test]
    fn file_blocks_subpaths() {
        let mut img = FsImage::new();
        img.write_file("/a", b"file").unwrap();
        assert_eq!(
            img.write_file("/a/b", b"x"),
            Err(FsError::NotADirectory("/a/b".to_owned()))
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let mut img = FsImage::new();
        assert!(matches!(
            img.write_file("relative", b""),
            Err(FsError::BadPath(_))
        ));
        assert!(matches!(
            img.write_file("/a/../b", b""),
            Err(FsError::BadPath(_))
        ));
        assert!(matches!(img.write_file("/", b""), Err(FsError::BadPath(_))));
    }

    #[test]
    fn symlinks_resolve() {
        let mut img = FsImage::new();
        img.write_exec("/bin/busybox", b"BB").unwrap();
        img.symlink("/bin/sh", "busybox").unwrap();
        img.symlink("/usr/bin/sh", "/bin/busybox").unwrap();
        assert_eq!(img.read_file("/bin/sh").unwrap(), b"BB");
        assert_eq!(img.read_file("/usr/bin/sh").unwrap(), b"BB");
        assert!(img.is_executable("/bin/sh"));
    }

    #[test]
    fn symlink_loop_bounded() {
        let mut img = FsImage::new();
        img.symlink("/a", "/b").unwrap();
        img.symlink("/b", "/a").unwrap();
        assert!(img.resolve("/a").is_none());
    }

    #[test]
    fn remove_subtree() {
        let mut img = FsImage::new();
        img.write_file("/d/one", b"1").unwrap();
        img.write_file("/d/two", b"2").unwrap();
        assert!(img.remove("/d"));
        assert!(!img.exists("/d"));
        assert!(!img.remove("/d"));
    }

    #[test]
    fn walk_sorted_dirs_first() {
        let mut img = FsImage::new();
        img.write_file("/z.txt", b"").unwrap();
        img.write_file("/a/inner.txt", b"").unwrap();
        let paths: Vec<String> = img.walk().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["/a", "/a/inner.txt", "/z.txt"]);
    }

    #[test]
    fn size_limit_enforced() {
        let mut img = FsImage::new();
        img.set_size_limit(Some(10));
        img.write_file("/big", &[0u8; 32]).unwrap();
        assert_eq!(
            img.check_size(),
            Err(FsError::TooLarge {
                need: 32,
                limit: 10
            })
        );
        img.set_size_limit(Some(1 << 20));
        assert!(img.check_size().is_ok());
    }

    #[test]
    fn total_size_counts_payloads() {
        let mut img = FsImage::new();
        img.write_file("/a", &[1; 10]).unwrap();
        img.write_file("/d/b", &[2; 5]).unwrap();
        img.symlink("/l", "/a").unwrap();
        assert_eq!(img.total_size(), 10 + 5 + 2);
    }

    #[test]
    fn list_root() {
        let mut img = FsImage::new();
        img.mkdir_p("/etc").unwrap();
        img.mkdir_p("/bin").unwrap();
        assert_eq!(img.list_dir("/").unwrap(), vec!["bin", "etc"]);
    }
}
