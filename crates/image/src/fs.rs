//! The in-memory filesystem tree.
//!
//! Images are copy-on-write: file payloads ([`Blob`]) and directories
//! ([`Dir`]) live behind shared pointers, so cloning an image — the heart of
//! parent-image inheritance (§III-B step 5a) — is O(1) and mutating a child
//! copies only the directories along the mutated path. Every subtree carries
//! a memoized Merkle fingerprint ([`FsImage::fingerprint`]), invalidated
//! only along mutated paths, so re-hashing a child image that changed one
//! file costs O(changed subtree) instead of O(image size).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use marshal_depgraph::{Fingerprint, Hasher128};

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path exists but is a directory where a file was expected (or the
    /// reverse).
    WrongKind(String),
    /// A component of the path is a file, so the path cannot be created.
    NotADirectory(String),
    /// Path is syntactically invalid (empty, not absolute, `..`).
    BadPath(String),
    /// The image exceeds its configured size limit.
    TooLarge {
        /// Bytes the image currently needs.
        need: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::WrongKind(p) => write!(f, "wrong node kind at {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::BadPath(p) => write!(f, "bad path: {p}"),
            FsError::TooLarge { need, limit } => {
                write!(f, "image needs {need} bytes, exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for FsError {}

/// A reference-counted immutable file payload.
///
/// Cloning a `Blob` — and therefore any image containing it — shares the
/// underlying allocation instead of copying bytes; this is what makes image
/// inheritance copy-on-write. The payload's content fingerprint is computed
/// lazily and memoized per allocation, so hashing a deep inheritance chain
/// re-hashes only payloads that actually changed.
#[derive(Clone)]
pub struct Blob {
    inner: Arc<BlobInner>,
}

struct BlobInner {
    bytes: Box<[u8]>,
    fp: OnceLock<Fingerprint>,
}

impl Blob {
    /// Wraps bytes in a shared payload.
    pub fn new(bytes: impl Into<Box<[u8]>>) -> Blob {
        Blob {
            inner: Arc::new(BlobInner {
                bytes: bytes.into(),
                fp: OnceLock::new(),
            }),
        }
    }

    /// Wraps bytes whose fingerprint is already known (e.g. verified on
    /// load from a content-addressed store), seeding the memo.
    pub fn with_fingerprint(bytes: impl Into<Box<[u8]>>, fp: Fingerprint) -> Blob {
        let blob = Blob::new(bytes);
        let _ = blob.inner.fp.set(fp);
        blob
    }

    /// The payload's content fingerprint, computed once per allocation.
    pub fn fingerprint(&self) -> Fingerprint {
        *self
            .inner
            .fp
            .get_or_init(|| Fingerprint::of(&self.inner.bytes))
    }

    /// Whether two blobs share the same allocation (structural sharing is
    /// observable, not just an optimisation).
    pub fn ptr_eq(&self, other: &Blob) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Payload length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.inner.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.bytes.is_empty()
    }
}

impl std::ops::Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner.bytes
    }
}

impl AsRef<[u8]> for Blob {
    fn as_ref(&self) -> &[u8] {
        &self.inner.bytes
    }
}

impl From<&[u8]> for Blob {
    fn from(bytes: &[u8]) -> Blob {
        Blob::new(bytes)
    }
}

impl From<Vec<u8>> for Blob {
    fn from(bytes: Vec<u8>) -> Blob {
        Blob::new(bytes)
    }
}

impl PartialEq for Blob {
    fn eq(&self, other: &Blob) -> bool {
        self.ptr_eq(other) || self.inner.bytes == other.inner.bytes
    }
}

impl Eq for Blob {}

impl fmt::Debug for Blob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Blob({} bytes)", self.len())
    }
}

/// A directory node: named children behind a copy-on-write shared pointer,
/// with a memoized Merkle fingerprint over the subtree.
#[derive(Clone, Default)]
pub struct Dir {
    inner: Arc<DirInner>,
}

#[derive(Default)]
struct DirInner {
    children: BTreeMap<String, Node>,
    fp: OnceLock<Fingerprint>,
}

impl Clone for DirInner {
    fn clone(&self) -> DirInner {
        DirInner {
            children: self.children.clone(),
            // The copy has identical content, so the memo stays valid; the
            // mutation that triggered the copy clears it right after.
            fp: self.fp.clone(),
        }
    }
}

impl Dir {
    /// An empty directory.
    pub fn new() -> Dir {
        Dir::default()
    }

    /// The directory's children, read-only.
    pub fn children(&self) -> &BTreeMap<String, Node> {
        &self.inner.children
    }

    /// Mutable access to the children. Copies the map if the allocation is
    /// shared with another image (copy-on-write) and invalidates the
    /// memoized subtree fingerprint — every mutation path in [`FsImage`]
    /// descends through this, which is what keeps memoized fingerprints
    /// correct along mutated paths.
    pub(crate) fn children_mut(&mut self) -> &mut BTreeMap<String, Node> {
        let inner = Arc::make_mut(&mut self.inner);
        inner.fp = OnceLock::new();
        &mut inner.children
    }

    /// Whether two directories share the same allocation.
    pub fn ptr_eq(&self, other: &Dir) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The Merkle fingerprint of this subtree, memoized per allocation.
    ///
    /// A pure function of logical content: images with equal trees agree on
    /// fingerprints regardless of how their allocations are shared.
    pub fn fingerprint(&self) -> Fingerprint {
        *self.inner.fp.get_or_init(|| {
            let mut h = Hasher128::new();
            h.update_field(b"dir");
            for (name, node) in &self.inner.children {
                h.update_field(name.as_bytes());
                let fp = node.fingerprint();
                h.update_u64(fp.0 as u64);
                h.update_u64((fp.0 >> 64) as u64);
            }
            h.finish()
        })
    }
}

impl PartialEq for Dir {
    fn eq(&self, other: &Dir) -> bool {
        self.ptr_eq(other) || self.inner.children == other.inner.children
    }
}

impl Eq for Dir {}

impl fmt::Debug for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.inner.children.iter()).finish()
    }
}

/// A node in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Regular file: contents plus an executable flag.
    File {
        /// File contents (shared, immutable).
        data: Blob,
        /// Whether the execute bit is set.
        exec: bool,
    },
    /// Directory with named children.
    Dir(Dir),
    /// Symbolic link to another path.
    Symlink(String),
}

impl Node {
    /// Builds a file node from any payload source.
    pub fn file(data: impl Into<Blob>, exec: bool) -> Node {
        Node::File {
            data: data.into(),
            exec,
        }
    }

    /// Byte size of this node's payload (recursive for directories).
    pub fn size(&self) -> u64 {
        match self {
            Node::File { data, .. } => data.len() as u64,
            Node::Dir(dir) => dir.children().values().map(Node::size).sum(),
            Node::Symlink(target) => target.len() as u64,
        }
    }

    /// The node's Merkle fingerprint (memoized for directories and file
    /// payloads).
    pub fn fingerprint(&self) -> Fingerprint {
        match self {
            Node::File { data, exec } => {
                let mut h = Hasher128::new();
                h.update_field(if *exec { b"xfile".as_slice() } else { b"file" });
                let fp = data.fingerprint();
                h.update_u64(fp.0 as u64);
                h.update_u64((fp.0 >> 64) as u64);
                h.finish()
            }
            Node::Dir(dir) => dir.fingerprint(),
            Node::Symlink(target) => {
                let mut h = Hasher128::new();
                h.update_field(b"symlink");
                h.update_field(target.as_bytes());
                h.finish()
            }
        }
    }
}

/// Splits an absolute guest path into validated components.
///
/// # Errors
///
/// Rejects relative paths, empty components other than the root, and `..`.
pub fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
    if !path.starts_with('/') {
        return Err(FsError::BadPath(path.to_owned()));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => return Err(FsError::BadPath(path.to_owned())),
            c => out.push(c),
        }
    }
    Ok(out)
}

/// A deterministic in-memory filesystem image.
///
/// Cloning is O(1): the root directory is shared until either copy mutates,
/// and mutation copies only the directories on the path to the change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsImage {
    root: Dir,
    size_limit: Option<u64>,
}

impl Default for FsImage {
    fn default() -> FsImage {
        FsImage::new()
    }
}

impl FsImage {
    /// Creates an empty image with no size limit.
    pub fn new() -> FsImage {
        FsImage {
            root: Dir::new(),
            size_limit: None,
        }
    }

    /// The image's root directory.
    pub fn root(&self) -> &Dir {
        &self.root
    }

    /// The Merkle fingerprint of the whole image, including its size limit.
    ///
    /// Memoized per subtree: after mutating one file in a large image, only
    /// the directories along that path (plus the new payload) are re-hashed.
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update_field(b"image");
        h.update_u64(self.size_limit.unwrap_or(0));
        h.update_u64(self.size_limit.is_some() as u64);
        let fp = self.root.fingerprint();
        h.update_u64(fp.0 as u64);
        h.update_u64((fp.0 >> 64) as u64);
        h.finish()
    }

    /// Sets the `rootfs-size` limit in bytes (checked by [`FsImage::check_size`]
    /// and on serialisation).
    pub fn set_size_limit(&mut self, limit: Option<u64>) {
        self.size_limit = limit;
    }

    /// The configured size limit, if any.
    pub fn size_limit(&self) -> Option<u64> {
        self.size_limit
    }

    /// Total payload bytes stored in the image.
    pub fn total_size(&self) -> u64 {
        self.root.children().values().map(Node::size).sum()
    }

    /// Verifies the image fits its size limit.
    ///
    /// # Errors
    ///
    /// [`FsError::TooLarge`] when over the limit.
    pub fn check_size(&self) -> Result<(), FsError> {
        if let Some(limit) = self.size_limit {
            let need = self.total_size();
            if need > limit {
                return Err(FsError::TooLarge { need, limit });
            }
        }
        Ok(())
    }

    fn lookup_dir_mut(
        &mut self,
        components: &[&str],
        create: bool,
        path: &str,
    ) -> Result<&mut BTreeMap<String, Node>, FsError> {
        // Descending through `children_mut` copies each shared directory on
        // the path and clears its fingerprint memo — exactly the mutated path.
        let mut cur = &mut self.root;
        for comp in components {
            let entry = cur.children_mut().entry((*comp).to_owned());
            let node = match entry {
                std::collections::btree_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::btree_map::Entry::Vacant(v) => {
                    if create {
                        v.insert(Node::Dir(Dir::new()))
                    } else {
                        return Err(FsError::NotFound(path.to_owned()));
                    }
                }
            };
            match node {
                Node::Dir(dir) => cur = dir,
                _ => return Err(FsError::NotADirectory(path.to_owned())),
            }
        }
        Ok(cur.children_mut())
    }

    /// Looks up a node, following no symlinks.
    pub fn node(&self, path: &str) -> Option<&Node> {
        let components = split_path(path).ok()?;
        let mut cur = self.root.children();
        let (last, dirs) = components.split_last()?;
        for comp in dirs {
            match cur.get(*comp) {
                Some(Node::Dir(dir)) => cur = dir.children(),
                _ => return None,
            }
        }
        cur.get(*last)
    }

    /// Resolves a path, following symlinks (bounded depth).
    pub fn resolve(&self, path: &str) -> Option<&Node> {
        let mut current = path.to_owned();
        for _ in 0..16 {
            match self.node(&current)? {
                Node::Symlink(target) => {
                    current = if target.starts_with('/') {
                        target.clone()
                    } else {
                        let parent = current.rsplit_once('/').map(|(p, _)| p).unwrap_or("");
                        format!("{parent}/{target}")
                    };
                }
                node => return Some(node),
            }
        }
        None
    }

    /// Whether the path exists (without following a final symlink).
    pub fn exists(&self, path: &str) -> bool {
        path == "/" || self.node(path).is_some()
    }

    /// Creates a directory and all missing parents.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] / [`FsError::NotADirectory`].
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), FsError> {
        let components = split_path(path)?;
        self.lookup_dir_mut(&components, true, path)?;
        Ok(())
    }

    /// Writes a regular (non-executable) file, creating parents.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] / [`FsError::NotADirectory`].
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.write_node(path, Node::file(data, false))
    }

    /// Writes an executable file, creating parents.
    ///
    /// # Errors
    ///
    /// Same as [`FsImage::write_file`].
    pub fn write_exec(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        self.write_node(path, Node::file(data, true))
    }

    /// Creates a symlink at `path` pointing to `target`.
    ///
    /// # Errors
    ///
    /// Same as [`FsImage::write_file`].
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), FsError> {
        self.write_node(path, Node::Symlink(target.to_owned()))
    }

    /// Inserts an arbitrary node at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// [`FsError::BadPath`] for the root or invalid paths,
    /// [`FsError::NotADirectory`] when a parent is a file.
    pub fn write_node(&mut self, path: &str, node: Node) -> Result<(), FsError> {
        let components = split_path(path)?;
        let Some((last, dirs)) = components.split_last() else {
            return Err(FsError::BadPath(path.to_owned()));
        };
        let dir = self.lookup_dir_mut(dirs, true, path)?;
        dir.insert((*last).to_owned(), node);
        Ok(())
    }

    /// Reads a file's contents (following symlinks).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::WrongKind`].
    pub fn read_file(&self, path: &str) -> Result<&[u8], FsError> {
        match self.resolve(path) {
            Some(Node::File { data, .. }) => Ok(data.as_ref()),
            Some(_) => Err(FsError::WrongKind(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Whether `path` is an executable file (following symlinks).
    pub fn is_executable(&self, path: &str) -> bool {
        matches!(self.resolve(path), Some(Node::File { exec: true, .. }))
    }

    /// Removes a file, symlink, or directory subtree; returns whether it
    /// existed.
    pub fn remove(&mut self, path: &str) -> bool {
        let Ok(components) = split_path(path) else {
            return false;
        };
        let Some((last, dirs)) = components.split_last() else {
            return false;
        };
        let Ok(dir) = self.lookup_dir_mut(dirs, false, path) else {
            return false;
        };
        dir.remove(*last).is_some()
    }

    /// Lists the names in a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::WrongKind`].
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, FsError> {
        if path == "/" {
            return Ok(self.root.children().keys().cloned().collect());
        }
        match self.resolve(path) {
            Some(Node::Dir(dir)) => Ok(dir.children().keys().cloned().collect()),
            Some(_) => Err(FsError::WrongKind(path.to_owned())),
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Depth-first walk over every path in the image, sorted.
    ///
    /// Yields `(absolute_path, node)` pairs; directories appear before their
    /// contents.
    pub fn walk(&self) -> Vec<(String, &Node)> {
        fn rec<'a>(
            prefix: &str,
            dir: &'a BTreeMap<String, Node>,
            out: &mut Vec<(String, &'a Node)>,
        ) {
            for (name, node) in dir {
                let path = format!("{prefix}/{name}");
                out.push((path.clone(), node));
                if let Node::Dir(sub) = node {
                    rec(&path, sub.children(), out);
                }
            }
        }
        let mut out = Vec::new();
        rec("", self.root.children(), &mut out);
        out
    }

    /// Number of file/symlink/directory nodes.
    pub fn node_count(&self) -> usize {
        self.walk().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut img = FsImage::new();
        img.write_file("/etc/os-release", b"NAME=Buildroot")
            .unwrap();
        assert_eq!(img.read_file("/etc/os-release").unwrap(), b"NAME=Buildroot");
        assert!(img.exists("/etc"));
        assert!(img.exists("/etc/os-release"));
        assert!(!img.exists("/etc/passwd"));
    }

    #[test]
    fn parents_created() {
        let mut img = FsImage::new();
        img.write_file("/a/b/c/d.txt", b"deep").unwrap();
        assert_eq!(img.list_dir("/a/b/c").unwrap(), vec!["d.txt"]);
    }

    #[test]
    fn file_blocks_subpaths() {
        let mut img = FsImage::new();
        img.write_file("/a", b"file").unwrap();
        assert_eq!(
            img.write_file("/a/b", b"x"),
            Err(FsError::NotADirectory("/a/b".to_owned()))
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let mut img = FsImage::new();
        assert!(matches!(
            img.write_file("relative", b""),
            Err(FsError::BadPath(_))
        ));
        assert!(matches!(
            img.write_file("/a/../b", b""),
            Err(FsError::BadPath(_))
        ));
        assert!(matches!(img.write_file("/", b""), Err(FsError::BadPath(_))));
    }

    #[test]
    fn symlinks_resolve() {
        let mut img = FsImage::new();
        img.write_exec("/bin/busybox", b"BB").unwrap();
        img.symlink("/bin/sh", "busybox").unwrap();
        img.symlink("/usr/bin/sh", "/bin/busybox").unwrap();
        assert_eq!(img.read_file("/bin/sh").unwrap(), b"BB");
        assert_eq!(img.read_file("/usr/bin/sh").unwrap(), b"BB");
        assert!(img.is_executable("/bin/sh"));
    }

    #[test]
    fn symlink_loop_bounded() {
        let mut img = FsImage::new();
        img.symlink("/a", "/b").unwrap();
        img.symlink("/b", "/a").unwrap();
        assert!(img.resolve("/a").is_none());
    }

    #[test]
    fn remove_subtree() {
        let mut img = FsImage::new();
        img.write_file("/d/one", b"1").unwrap();
        img.write_file("/d/two", b"2").unwrap();
        assert!(img.remove("/d"));
        assert!(!img.exists("/d"));
        assert!(!img.remove("/d"));
    }

    #[test]
    fn walk_sorted_dirs_first() {
        let mut img = FsImage::new();
        img.write_file("/z.txt", b"").unwrap();
        img.write_file("/a/inner.txt", b"").unwrap();
        let paths: Vec<String> = img.walk().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["/a", "/a/inner.txt", "/z.txt"]);
    }

    #[test]
    fn size_limit_enforced() {
        let mut img = FsImage::new();
        img.set_size_limit(Some(10));
        img.write_file("/big", &[0u8; 32]).unwrap();
        assert_eq!(
            img.check_size(),
            Err(FsError::TooLarge {
                need: 32,
                limit: 10
            })
        );
        img.set_size_limit(Some(1 << 20));
        assert!(img.check_size().is_ok());
    }

    #[test]
    fn total_size_counts_payloads() {
        let mut img = FsImage::new();
        img.write_file("/a", &[1; 10]).unwrap();
        img.write_file("/d/b", &[2; 5]).unwrap();
        img.symlink("/l", "/a").unwrap();
        assert_eq!(img.total_size(), 10 + 5 + 2);
    }

    #[test]
    fn list_root() {
        let mut img = FsImage::new();
        img.mkdir_p("/etc").unwrap();
        img.mkdir_p("/bin").unwrap();
        assert_eq!(img.list_dir("/").unwrap(), vec!["bin", "etc"]);
    }

    fn blob_of<'a>(img: &'a FsImage, path: &str) -> &'a Blob {
        match img.node(path) {
            Some(Node::File { data, .. }) => data,
            other => panic!("expected file at {path}, got {other:?}"),
        }
    }

    #[test]
    fn clone_shares_payloads() {
        let mut parent = FsImage::new();
        parent.write_file("/usr/lib/base.so", &[7u8; 4096]).unwrap();
        let child = parent.clone();
        assert!(parent.root().ptr_eq(child.root()));
        assert!(blob_of(&parent, "/usr/lib/base.so").ptr_eq(blob_of(&child, "/usr/lib/base.so")));
    }

    #[test]
    fn child_mutation_leaves_parent_intact() {
        let mut parent = FsImage::new();
        parent.write_file("/etc/conf", b"base").unwrap();
        parent.write_file("/usr/lib/big.so", &[9u8; 1024]).unwrap();
        let mut child = parent.clone();
        child.write_file("/etc/conf", b"override").unwrap();
        child.remove("/usr/lib");
        assert_eq!(parent.read_file("/etc/conf").unwrap(), b"base");
        assert!(parent.exists("/usr/lib/big.so"));
        assert_eq!(child.read_file("/etc/conf").unwrap(), b"override");
        assert!(!child.exists("/usr/lib"));
    }

    #[test]
    fn mutation_copies_only_touched_path() {
        let mut parent = FsImage::new();
        parent.write_file("/usr/lib/big.so", &[1u8; 2048]).unwrap();
        parent.write_file("/etc/conf", b"base").unwrap();
        let mut child = parent.clone();
        child.write_file("/etc/extra", b"x").unwrap();
        // /etc was copied for the write, /usr is still shared verbatim.
        let (Some(Node::Dir(p_usr)), Some(Node::Dir(c_usr))) =
            (parent.node("/usr"), child.node("/usr"))
        else {
            panic!("missing /usr");
        };
        assert!(p_usr.ptr_eq(c_usr));
        let (Some(Node::Dir(p_etc)), Some(Node::Dir(c_etc))) =
            (parent.node("/etc"), child.node("/etc"))
        else {
            panic!("missing /etc");
        };
        assert!(!p_etc.ptr_eq(c_etc));
        // Untouched payloads inside the copied directory still share bytes.
        assert!(blob_of(&parent, "/etc/conf").ptr_eq(blob_of(&child, "/etc/conf")));
    }

    #[test]
    fn fingerprint_tracks_content_not_sharing() {
        let mut a = FsImage::new();
        a.write_file("/etc/conf", b"one").unwrap();
        a.write_exec("/bin/tool", b"elf").unwrap();
        let b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Same tree built independently (no shared allocations) agrees.
        let mut c = FsImage::new();
        c.write_exec("/bin/tool", b"elf").unwrap();
        c.write_file("/etc/conf", b"one").unwrap();
        assert_eq!(a.fingerprint(), c.fingerprint());

        let mut d = a.clone();
        d.write_file("/etc/conf", b"two").unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
        d.write_file("/etc/conf", b"one").unwrap();
        assert_eq!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fingerprint_sees_mutation_after_memoization() {
        let mut img = FsImage::new();
        img.write_file("/a/b/leaf", b"v1").unwrap();
        img.write_file("/other/file", b"same").unwrap();
        let before = img.fingerprint();
        img.write_file("/a/b/leaf", b"v2").unwrap();
        let after = img.fingerprint();
        assert_ne!(before, after);
        // A from-scratch tree with identical content is the ground truth.
        let mut fresh = FsImage::new();
        fresh.write_file("/a/b/leaf", b"v2").unwrap();
        fresh.write_file("/other/file", b"same").unwrap();
        assert_eq!(after, fresh.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_exec_and_kind() {
        let mut file = FsImage::new();
        file.write_file("/x", b"payload").unwrap();
        let mut exec = FsImage::new();
        exec.write_exec("/x", b"payload").unwrap();
        assert_ne!(file.fingerprint(), exec.fingerprint());

        let mut link = FsImage::new();
        link.symlink("/x", "payload").unwrap();
        assert_ne!(file.fingerprint(), link.fingerprint());

        let mut limited = FsImage::new();
        limited.write_file("/x", b"payload").unwrap();
        limited.set_size_limit(Some(1 << 20));
        assert_ne!(file.fingerprint(), limited.fingerprint());
    }
}
