//! The `MIMG` binary image format.
//!
//! Byte-stable serialisation of an [`FsImage`]: identical trees always
//! produce identical bytes, so image fingerprints are meaningful and builds
//! are reproducible.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    4   b"MIMG"
//! version  u32
//! limit    u64  (0 = none)
//! nentries u32
//! entries, sorted by path:
//!   tag      u8   (0 file, 1 exec file, 2 dir, 3 symlink)
//!   path_len u32, path bytes
//!   data_len u64, data bytes (file contents / symlink target / empty)
//! ```

use crate::fs::{FsError, FsImage, Node};

/// Format magic bytes.
pub const MAGIC: &[u8; 4] = b"MIMG";
/// Current version.
pub const VERSION: u32 = 1;

/// Error parsing an `MIMG` byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageFormatError {
    /// Bad magic bytes.
    BadMagic,
    /// Unsupported version.
    BadVersion(u32),
    /// Stream shorter than headers claim.
    Truncated,
    /// Entry path is not valid UTF-8 or not absolute.
    BadPath,
    /// Unknown entry tag.
    BadTag(u8),
    /// Structural error rebuilding the tree.
    Structure(String),
}

impl std::fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageFormatError::BadMagic => write!(f, "bad image magic"),
            ImageFormatError::BadVersion(v) => write!(f, "unsupported image version {v}"),
            ImageFormatError::Truncated => write!(f, "truncated image"),
            ImageFormatError::BadPath => write!(f, "bad path in image"),
            ImageFormatError::BadTag(t) => write!(f, "unknown entry tag {t}"),
            ImageFormatError::Structure(m) => write!(f, "structural error: {m}"),
        }
    }
}

impl std::error::Error for ImageFormatError {}

impl From<FsError> for ImageFormatError {
    fn from(e: FsError) -> ImageFormatError {
        ImageFormatError::Structure(e.to_string())
    }
}

impl FsImage {
    /// Serialises the image to its canonical byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.walk();
        let mut out = Vec::with_capacity(64 + self.total_size() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.size_limit().unwrap_or(0).to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (path, node) in entries {
            let (tag, data): (u8, &[u8]) = match node {
                Node::File { data, exec: false } => (0, data.as_ref()),
                Node::File { data, exec: true } => (1, data.as_ref()),
                Node::Dir(_) => (2, &[]),
                Node::Symlink(target) => (3, target.as_bytes()),
            };
            out.push(tag);
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            out.extend_from_slice(path.as_bytes());
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses the canonical byte representation.
    ///
    /// # Errors
    ///
    /// Returns [`ImageFormatError`] for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<FsImage, ImageFormatError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ImageFormatError> {
            if *pos + n > bytes.len() {
                return Err(ImageFormatError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(ImageFormatError::BadMagic);
        }
        let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        if version != VERSION {
            return Err(ImageFormatError::BadVersion(version));
        }
        let limit = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let nentries = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut img = FsImage::new();
        img.set_size_limit(if limit == 0 { None } else { Some(limit) });
        for _ in 0..nentries {
            let tag = take(&mut pos, 1)?[0];
            let path_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let path = std::str::from_utf8(take(&mut pos, path_len)?)
                .map_err(|_| ImageFormatError::BadPath)?
                .to_owned();
            if !path.starts_with('/') {
                return Err(ImageFormatError::BadPath);
            }
            let data_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()) as usize;
            let data = take(&mut pos, data_len)?;
            match tag {
                0 => img.write_file(&path, data)?,
                1 => img.write_exec(&path, data)?,
                2 => img.mkdir_p(&path)?,
                3 => {
                    let target =
                        std::str::from_utf8(data).map_err(|_| ImageFormatError::BadPath)?;
                    img.symlink(&path, target)?;
                }
                t => return Err(ImageFormatError::BadTag(t)),
            }
        }
        if pos != bytes.len() {
            return Err(ImageFormatError::Structure("trailing bytes".to_owned()));
        }
        Ok(img)
    }

    /// Whether `bytes` start with the `MIMG` magic.
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && &bytes[..4] == MAGIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FsImage {
        let mut img = FsImage::new();
        img.set_size_limit(Some(1 << 20));
        img.write_file("/etc/hostname", b"node0").unwrap();
        img.write_exec("/bin/bench", b"\x13\x05\x10\x00").unwrap();
        img.symlink("/bin/sh", "bench").unwrap();
        img.mkdir_p("/output").unwrap();
        img
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = FsImage::from_bytes(&bytes).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn deterministic() {
        // Insertion order must not matter.
        let mut a = FsImage::new();
        a.write_file("/b", b"2").unwrap();
        a.write_file("/a", b"1").unwrap();
        let mut b = FsImage::new();
        b.write_file("/a", b"1").unwrap();
        b.write_file("/b", b"2").unwrap();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn empty_dirs_preserved() {
        let img = sample();
        let back = FsImage::from_bytes(&img.to_bytes()).unwrap();
        assert!(back.list_dir("/output").unwrap().is_empty());
    }

    #[test]
    fn exec_bit_preserved() {
        let back = FsImage::from_bytes(&sample().to_bytes()).unwrap();
        assert!(back.is_executable("/bin/bench"));
        assert!(!back.is_executable("/etc/hostname"));
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(
            FsImage::from_bytes(b"nope"),
            Err(ImageFormatError::BadMagic)
        );
        assert_eq!(FsImage::from_bytes(b"MI"), Err(ImageFormatError::Truncated));
        assert_eq!(
            FsImage::from_bytes(b"XIMG\x01\x00\x00\x00"),
            Err(ImageFormatError::BadMagic)
        );
        let mut bytes = sample().to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert_eq!(
            FsImage::from_bytes(&bytes),
            Err(ImageFormatError::Truncated)
        );
        let mut extra = sample().to_bytes();
        extra.push(0);
        assert!(matches!(
            FsImage::from_bytes(&extra),
            Err(ImageFormatError::Structure(_))
        ));
    }

    #[test]
    fn size_limit_roundtrips() {
        let back = FsImage::from_bytes(&sample().to_bytes()).unwrap();
        assert_eq!(back.size_limit(), Some(1 << 20));
        let mut unlimited = FsImage::new();
        unlimited.write_file("/x", b"").unwrap();
        let back = FsImage::from_bytes(&unlimited.to_bytes()).unwrap();
        assert_eq!(back.size_limit(), None);
    }

    #[test]
    fn sniff_works() {
        assert!(FsImage::sniff(&sample().to_bytes()));
        assert!(!FsImage::sniff(b"MEXE"));
    }
}
