//! A newc-inspired archive format used for initramfs payloads.
//!
//! FireMarshal generates an initramfs as the kernel's first-stage init
//! (§III-B step 4c); with `--no-disk`, the whole rootfs is embedded as the
//! initramfs payload (step 6). This module packs an [`FsImage`] into a
//! single deterministic archive blob and back.
//!
//! The format is a simplified `newc`: a textual per-entry header
//! (`MCPIO` + tag + path + size), raw data, and a `TRAILER!!!` terminator —
//! close enough to real cpio to be recognisable, simple enough to be fully
//! deterministic.

use crate::format::ImageFormatError;
use crate::fs::{FsImage, Node};

const ENTRY_MAGIC: &str = "MCPIO1";
const TRAILER: &str = "TRAILER!!!";

/// Packs an image into an archive blob.
///
/// Entries are emitted in sorted path order; identical images produce
/// identical archives.
pub fn pack(image: &FsImage) -> Vec<u8> {
    let entries = image.walk();
    // Every header is fixed-width, so the archive size is known exactly
    // up front; reserve once instead of growing per entry.
    let header_len = ENTRY_MAGIC.len() + 1 + 1 + 1 + 8 + 1 + 8 + 1;
    let total: usize = entries
        .iter()
        .map(|(path, node)| {
            let data_len = match node {
                Node::File { data, .. } => data.len(),
                Node::Dir(_) => 0,
                Node::Symlink(target) => target.len(),
            };
            header_len + path.len() + data_len
        })
        .sum::<usize>()
        + header_len
        + TRAILER.len();
    let mut out = Vec::with_capacity(total);
    for (path, node) in entries {
        let (tag, data): (char, &[u8]) = match node {
            Node::File { data, exec: false } => ('f', data.as_ref()),
            Node::File { data, exec: true } => ('x', data.as_ref()),
            Node::Dir(_) => ('d', &[]),
            Node::Symlink(target) => ('l', target.as_bytes()),
        };
        out.extend_from_slice(
            format!("{ENTRY_MAGIC} {tag} {:08x} {:08x} ", path.len(), data.len()).as_bytes(),
        );
        out.extend_from_slice(path.as_bytes());
        out.extend_from_slice(data);
    }
    out.extend_from_slice(format!("{ENTRY_MAGIC} t {:08x} {:08x} ", TRAILER.len(), 0).as_bytes());
    out.extend_from_slice(TRAILER.as_bytes());
    debug_assert_eq!(out.len(), total);
    out
}

/// Unpacks an archive blob back into an image.
///
/// # Errors
///
/// Returns [`ImageFormatError`] for malformed archives (bad magic, bad
/// lengths, missing trailer).
pub fn unpack(bytes: &[u8]) -> Result<FsImage, ImageFormatError> {
    let mut img = FsImage::new();
    let mut pos = 0usize;
    let header_len = ENTRY_MAGIC.len() + 1 + 1 + 1 + 8 + 1 + 8 + 1;
    loop {
        if pos + header_len > bytes.len() {
            return Err(ImageFormatError::Truncated);
        }
        let header = std::str::from_utf8(&bytes[pos..pos + header_len])
            .map_err(|_| ImageFormatError::BadPath)?;
        pos += header_len;
        let mut parts = header.split(' ');
        let magic = parts.next().unwrap_or("");
        if magic != ENTRY_MAGIC {
            return Err(ImageFormatError::BadMagic);
        }
        let tag = parts.next().unwrap_or("");
        let path_len = usize::from_str_radix(parts.next().unwrap_or(""), 16)
            .map_err(|_| ImageFormatError::Truncated)?;
        let data_len = usize::from_str_radix(parts.next().unwrap_or(""), 16)
            .map_err(|_| ImageFormatError::Truncated)?;
        if pos + path_len + data_len > bytes.len() {
            return Err(ImageFormatError::Truncated);
        }
        let path = std::str::from_utf8(&bytes[pos..pos + path_len])
            .map_err(|_| ImageFormatError::BadPath)?
            .to_owned();
        pos += path_len;
        let data = &bytes[pos..pos + data_len];
        pos += data_len;
        match tag {
            "t" => {
                if path != TRAILER {
                    return Err(ImageFormatError::Structure("bad trailer".to_owned()));
                }
                if pos != bytes.len() {
                    return Err(ImageFormatError::Structure("trailing bytes".to_owned()));
                }
                return Ok(img);
            }
            "f" => img.write_file(&path, data)?,
            "x" => img.write_exec(&path, data)?,
            "d" => img.mkdir_p(&path)?,
            "l" => {
                let target = std::str::from_utf8(data).map_err(|_| ImageFormatError::BadPath)?;
                img.symlink(&path, target)?;
            }
            other => return Err(ImageFormatError::BadTag(other.bytes().next().unwrap_or(0))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FsImage {
        let mut img = FsImage::new();
        img.write_exec("/init", b"#!mscript\nprint(\"init\")\n")
            .unwrap();
        img.write_file("/lib/modules/iceblk.ko", b"MODULE").unwrap();
        img.symlink("/sbin/init", "/init").unwrap();
        img.mkdir_p("/dev").unwrap();
        img
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let packed = pack(&img);
        let back = unpack(&packed).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn deterministic() {
        assert_eq!(pack(&sample()), pack(&sample()));
    }

    #[test]
    fn trailer_required() {
        let mut bytes = pack(&sample());
        bytes.truncate(bytes.len() - 4);
        assert!(unpack(&bytes).is_err());
    }

    #[test]
    fn empty_image() {
        let img = FsImage::new();
        let back = unpack(&pack(&img)).unwrap();
        assert_eq!(back.node_count(), 0);
    }

    #[test]
    fn garbage_rejected() {
        assert!(unpack(b"not an archive at all............").is_err());
        assert!(unpack(b"").is_err());
    }
}
