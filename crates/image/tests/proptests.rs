//! Property-based tests on the filesystem-image substrate: format
//! roundtrips and overlay algebra.

use proptest::prelude::*;

use marshal_image::{cpio, FsImage};

/// A random file tree as (path, contents, exec) triples.
fn arb_tree() -> impl Strategy<Value = Vec<(String, Vec<u8>, bool)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec("[a-z0-9]{1,6}", 1..4)
                .prop_map(|parts| format!("/{}", parts.join("/"))),
            proptest::collection::vec(any::<u8>(), 0..64),
            any::<bool>(),
        ),
        0..12,
    )
}

fn build_image(tree: &[(String, Vec<u8>, bool)]) -> FsImage {
    let mut img = FsImage::new();
    for (path, data, exec) in tree {
        // Later entries may conflict with earlier directories; skip those —
        // the generator does not guarantee tree-consistency.
        let result = if *exec {
            img.write_exec(path, data)
        } else {
            img.write_file(path, data)
        };
        let _ = result;
    }
    img
}

proptest! {
    #[test]
    fn mimg_roundtrip(tree in arb_tree()) {
        let img = build_image(&tree);
        let back = FsImage::from_bytes(&img.to_bytes()).unwrap();
        prop_assert_eq!(img, back);
    }

    #[test]
    fn cpio_roundtrip(tree in arb_tree()) {
        let img = build_image(&tree);
        let back = cpio::unpack(&cpio::pack(&img)).unwrap();
        prop_assert_eq!(img, back);
    }

    #[test]
    fn serialisation_is_deterministic(tree in arb_tree()) {
        let a = build_image(&tree).to_bytes();
        let b = build_image(&tree).to_bytes();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = FsImage::from_bytes(&bytes);
        let _ = cpio::unpack(&bytes);
    }

    /// Overlay is idempotent: applying the same upper twice changes nothing.
    #[test]
    fn overlay_idempotent(base in arb_tree(), upper in arb_tree()) {
        let mut once = build_image(&base);
        let upper_img = build_image(&upper);
        once.apply_overlay(&upper_img);
        let mut twice = once.clone();
        twice.apply_overlay(&upper_img);
        prop_assert_eq!(once, twice);
    }

    /// Overlay wins: every file of the upper layer is present afterwards
    /// with the upper's contents.
    #[test]
    fn overlay_upper_wins(base in arb_tree(), upper in arb_tree()) {
        let mut merged = build_image(&base);
        let upper_img = build_image(&upper);
        merged.apply_overlay(&upper_img);
        for (path, node) in upper_img.walk() {
            if let marshal_image::Node::File { data, .. } = node {
                prop_assert_eq!(merged.read_file(&path).unwrap(), &data[..], "{}", path);
            }
        }
    }

    /// Sizes are additive-consistent: total_size equals the sum over walk().
    #[test]
    fn total_size_matches_walk(tree in arb_tree()) {
        let img = build_image(&tree);
        let sum: u64 = img
            .walk()
            .iter()
            .map(|(_, n)| match n {
                marshal_image::Node::File { data, .. } => data.len() as u64,
                marshal_image::Node::Symlink(t) => t.len() as u64,
                marshal_image::Node::Dir(_) => 0,
            })
            .sum();
        prop_assert_eq!(img.total_size(), sum);
    }
}
