//! Property-based tests on the filesystem-image substrate: format
//! roundtrips and overlay algebra.
//!
//! Uses the in-repo `marshal-qcheck` harness (offline build environment);
//! every case derives from a fixed seed and replays deterministically.

use marshal_image::{cpio, FsImage};
use marshal_qcheck::{cases, Rng};

/// A random file tree as (path, contents, exec) triples.
fn arb_tree(rng: &mut Rng) -> Vec<(String, Vec<u8>, bool)> {
    (0..rng.range_usize(0, 12))
        .map(|_| {
            let parts: Vec<String> = (0..rng.range_usize(1, 4))
                .map(|_| rng.string_of("abcdefghijklmnopqrstuvwxyz0123456789", 1, 7))
                .collect();
            let path = format!("/{}", parts.join("/"));
            (path, rng.bytes_in(0, 64), rng.bool())
        })
        .collect()
}

fn build_image(tree: &[(String, Vec<u8>, bool)]) -> FsImage {
    let mut img = FsImage::new();
    for (path, data, exec) in tree {
        // Later entries may conflict with earlier directories; skip those —
        // the generator does not guarantee tree-consistency.
        let result = if *exec {
            img.write_exec(path, data)
        } else {
            img.write_file(path, data)
        };
        let _ = result;
    }
    img
}

#[test]
fn mimg_roundtrip() {
    cases(128, |rng| {
        let img = build_image(&arb_tree(rng));
        let back = FsImage::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(img, back);
    });
}

#[test]
fn cpio_roundtrip() {
    cases(128, |rng| {
        let img = build_image(&arb_tree(rng));
        let back = cpio::unpack(&cpio::pack(&img)).unwrap();
        assert_eq!(img, back);
    });
}

#[test]
fn serialisation_is_deterministic() {
    cases(128, |rng| {
        let tree = arb_tree(rng);
        let a = build_image(&tree).to_bytes();
        let b = build_image(&tree).to_bytes();
        assert_eq!(a, b);
    });
}

#[test]
fn parser_never_panics() {
    cases(256, |rng| {
        let bytes = rng.bytes_in(0, 256);
        let _ = FsImage::from_bytes(&bytes);
        let _ = cpio::unpack(&bytes);
    });
}

/// Overlay is idempotent: applying the same upper twice changes nothing.
#[test]
fn overlay_idempotent() {
    cases(128, |rng| {
        let mut once = build_image(&arb_tree(rng));
        let upper_img = build_image(&arb_tree(rng));
        once.apply_overlay(&upper_img);
        let mut twice = once.clone();
        twice.apply_overlay(&upper_img);
        assert_eq!(once, twice);
    });
}

/// Overlay wins: every file of the upper layer is present afterwards
/// with the upper's contents.
#[test]
fn overlay_upper_wins() {
    cases(128, |rng| {
        let mut merged = build_image(&arb_tree(rng));
        let upper_img = build_image(&arb_tree(rng));
        merged.apply_overlay(&upper_img);
        for (path, node) in upper_img.walk() {
            if let marshal_image::Node::File { data, .. } = node {
                assert_eq!(merged.read_file(&path).unwrap(), &data[..], "{}", path);
            }
        }
    });
}

/// Sizes are additive-consistent: total_size equals the sum over walk().
#[test]
fn total_size_matches_walk() {
    cases(128, |rng| {
        let img = build_image(&arb_tree(rng));
        let sum: u64 = img
            .walk()
            .iter()
            .map(|(_, n)| match n {
                marshal_image::Node::File { data, .. } => data.len() as u64,
                marshal_image::Node::Symlink(t) => t.len() as u64,
                marshal_image::Node::Dir(_) => 0,
            })
            .sum();
        assert_eq!(img.total_size(), sum);
    });
}
