//! Initramfs generation (§III-B step 4c).
//!
//! "In order to load drivers as early as possible, and to provide a mostly
//! workload-independent boot phase, FireMarshal generates an initramfs as
//! the first-stage init. This initramfs loads both system and user-provided
//! kernel modules."

use marshal_image::{cpio, FsImage};

use crate::kconfig::KernelConfig;
use crate::kernel::KernelSource;
use crate::modules::{build_module, ModuleArtifact};
use crate::LinuxError;

/// Path of the first-stage init script inside the initramfs.
pub const INIT_PATH: &str = "/init";

/// Specification of an initramfs build: which modules to include and an
/// optional embedded rootfs (for `--no-disk` workloads, §III-B step 6).
#[derive(Debug, Clone, Default)]
pub struct InitramfsSpec {
    modules: Vec<(String, String)>,
    embedded_rootfs: Option<FsImage>,
}

impl InitramfsSpec {
    /// An initramfs with no modules and no embedded rootfs.
    pub fn new() -> InitramfsSpec {
        InitramfsSpec::default()
    }

    /// Adds a kernel module (name, source id) to build and embed.
    pub fn module(
        mut self,
        name: impl Into<String>,
        source_id: impl Into<String>,
    ) -> InitramfsSpec {
        self.modules.push((name.into(), source_id.into()));
        self
    }

    /// Embeds a whole rootfs (diskless builds: the disk image becomes the
    /// initramfs payload).
    pub fn embed_rootfs(mut self, rootfs: FsImage) -> InitramfsSpec {
        self.embedded_rootfs = Some(rootfs);
        self
    }

    /// Whether a rootfs is embedded (diskless workload).
    pub fn has_embedded_rootfs(&self) -> bool {
        self.embedded_rootfs.is_some()
    }

    /// Builds the initramfs archive.
    ///
    /// The result contains `/init` (a script that loads each module in
    /// order and then hands off to the real root), the built modules under
    /// `/lib/modules/<version>/`, and — for diskless builds — the embedded
    /// rootfs contents.
    ///
    /// # Errors
    ///
    /// Module build failures ([`LinuxError::Build`]) or image errors.
    pub fn build(
        &self,
        config: &KernelConfig,
        source: &KernelSource,
    ) -> Result<InitramfsArtifact, LinuxError> {
        let mut img = FsImage::new();
        let mut built: Vec<ModuleArtifact> = Vec::new();
        for (name, src) in &self.modules {
            built.push(build_module(name, src, config)?);
        }

        let mut init = String::from("#!mscript\n# FireMarshal first-stage init\n");
        for m in &built {
            let path = m.install_path(source.version());
            img.write_file(&path, m.bytes())?;
            init.push_str(&format!("load_module(\"{path}\")\n"));
        }
        if self.embedded_rootfs.is_some() {
            init.push_str("switch_root(\"initramfs\")\n");
        } else {
            init.push_str("switch_root(\"/dev/vda\")\n");
        }
        img.write_exec(INIT_PATH, init.as_bytes())?;

        if let Some(rootfs) = &self.embedded_rootfs {
            img.apply_overlay(rootfs);
        }

        Ok(InitramfsArtifact {
            archive: cpio::pack(&img),
            module_names: built.iter().map(|m| m.name().to_owned()).collect(),
            diskless: self.embedded_rootfs.is_some(),
        })
    }
}

/// A built initramfs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitramfsArtifact {
    archive: Vec<u8>,
    module_names: Vec<String>,
    diskless: bool,
}

impl InitramfsArtifact {
    /// Reassembles an artifact from raw parts (used when parsing a
    /// serialised kernel blob back into structured form).
    pub(crate) fn from_raw(
        archive: Vec<u8>,
        module_names: Vec<String>,
        diskless: bool,
    ) -> InitramfsArtifact {
        InitramfsArtifact {
            archive,
            module_names,
            diskless,
        }
    }

    /// The packed archive bytes (cpio-like).
    pub fn archive(&self) -> &[u8] {
        &self.archive
    }

    /// Names of the modules embedded, in load order.
    pub fn module_names(&self) -> &[String] {
        &self.module_names
    }

    /// Whether a full rootfs is embedded (diskless/`--no-disk` build).
    pub fn is_diskless(&self) -> bool {
        self.diskless
    }

    /// Unpacks the archive back into a filesystem tree (used by the
    /// simulators at boot).
    ///
    /// # Errors
    ///
    /// [`LinuxError::Image`] if the archive is malformed.
    pub fn unpack(&self) -> Result<FsImage, LinuxError> {
        cpio::unpack(&self.archive).map_err(|e| LinuxError::Image(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_loads_modules_in_order() {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let art = InitramfsSpec::new()
            .module("iceblk", "iceblk-v1")
            .module("icenet", "icenet-v1")
            .build(&config, &src)
            .unwrap();
        let img = art.unpack().unwrap();
        let init = std::str::from_utf8(img.read_file(INIT_PATH).unwrap())
            .unwrap()
            .to_owned();
        let blk = init.find("iceblk.ko").unwrap();
        let net = init.find("icenet.ko").unwrap();
        assert!(blk < net, "modules must load in declaration order");
        assert!(init.contains("switch_root(\"/dev/vda\")"));
        assert_eq!(art.module_names(), ["iceblk", "icenet"]);
    }

    #[test]
    fn diskless_embeds_rootfs() {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let mut rootfs = FsImage::new();
        rootfs.write_file("/etc/hostname", b"diskless").unwrap();
        let art = InitramfsSpec::new()
            .embed_rootfs(rootfs)
            .build(&config, &src)
            .unwrap();
        assert!(art.is_diskless());
        let img = art.unpack().unwrap();
        assert_eq!(img.read_file("/etc/hostname").unwrap(), b"diskless");
        let init = std::str::from_utf8(img.read_file(INIT_PATH).unwrap()).unwrap();
        assert!(init.contains("switch_root(\"initramfs\")"));
    }

    #[test]
    fn deterministic_archives() {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let build = || {
            InitramfsSpec::new()
                .module("icenet", "v1")
                .build(&config, &src)
                .unwrap()
        };
        assert_eq!(build().archive(), build().archive());
    }

    #[test]
    fn module_build_failure_propagates() {
        let mut config = KernelConfig::riscv_defconfig();
        config
            .merge_fragment("# CONFIG_MODULES is not set")
            .unwrap();
        let src = KernelSource::default_source();
        assert!(InitramfsSpec::new()
            .module("icenet", "v1")
            .build(&config, &src)
            .is_err());
    }
}
