//! The Kconfig-style option system.
//!
//! "To form the final Linux configuration, FireMarshal begins with the
//! RISC-V default configuration. If needed, users can provide Linux kernel
//! configuration 'fragments'... merged in order, with more recently defined
//! options overwriting earlier duplicates" (§III-B step 4a).

use std::collections::BTreeMap;
use std::fmt;

use crate::LinuxError;

/// The value of one configuration option.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigValue {
    /// `CONFIG_X=y` — built in.
    Yes,
    /// `CONFIG_X=m` — built as a module.
    Module,
    /// `# CONFIG_X is not set`.
    No,
    /// `CONFIG_X="string"`.
    Str(String),
    /// `CONFIG_X=123`.
    Int(i64),
}

impl fmt::Display for ConfigValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigValue::Yes => write!(f, "y"),
            ConfigValue::Module => write!(f, "m"),
            ConfigValue::No => write!(f, "n"),
            ConfigValue::Str(s) => write!(f, "\"{s}\""),
            ConfigValue::Int(v) => write!(f, "{v}"),
        }
    }
}

/// A complete kernel configuration: option name (without the `CONFIG_`
/// prefix) → value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelConfig {
    options: BTreeMap<String, ConfigValue>,
}

impl KernelConfig {
    /// An empty configuration.
    pub fn new() -> KernelConfig {
        KernelConfig::default()
    }

    /// The modelled RISC-V `defconfig` FireMarshal starts every build from.
    pub fn riscv_defconfig() -> KernelConfig {
        let mut c = KernelConfig::new();
        for (k, v) in [
            ("RISCV", ConfigValue::Yes),
            ("64BIT", ConfigValue::Yes),
            ("MMU", ConfigValue::Yes),
            ("SMP", ConfigValue::Yes),
            ("TTY", ConfigValue::Yes),
            ("SERIAL_8250", ConfigValue::Yes),
            ("SERIAL_OF_PLATFORM", ConfigValue::Yes),
            ("BLK_DEV", ConfigValue::Yes),
            ("BLK_DEV_INITRD", ConfigValue::Yes),
            ("EXT4_FS", ConfigValue::Yes),
            ("NET", ConfigValue::Yes),
            ("INET", ConfigValue::Yes),
            ("PCI", ConfigValue::Yes),
            ("MODULES", ConfigValue::Yes),
            ("SWAP", ConfigValue::Yes),
            ("PROC_FS", ConfigValue::Yes),
            ("SYSFS", ConfigValue::Yes),
            ("DEVTMPFS", ConfigValue::Yes),
            ("FRONTSWAP", ConfigValue::No),
            ("PFA", ConfigValue::No),
            ("DEBUG_INFO", ConfigValue::No),
            ("PREEMPT", ConfigValue::No),
            ("HZ", ConfigValue::Int(100)),
            ("NR_CPUS", ConfigValue::Int(8)),
            ("DEFAULT_HOSTNAME", ConfigValue::Str("(none)".to_owned())),
        ] {
            c.options.insert(k.to_owned(), v);
        }
        c
    }

    /// Looks up an option (name without the `CONFIG_` prefix).
    pub fn get(&self, name: &str) -> Option<&ConfigValue> {
        self.options.get(name)
    }

    /// Whether the option is enabled (`y` or `m`).
    pub fn is_enabled(&self, name: &str) -> bool {
        matches!(
            self.options.get(name),
            Some(ConfigValue::Yes | ConfigValue::Module)
        )
    }

    /// Sets an option directly.
    pub fn set(&mut self, name: impl Into<String>, value: ConfigValue) {
        self.options.insert(name.into(), value);
    }

    /// Number of options.
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// Whether there are no options.
    pub fn is_empty(&self) -> bool {
        self.options.is_empty()
    }

    /// Count of enabled (`y`/`m`) options — feeds the kernel size model.
    pub fn enabled_count(&self) -> usize {
        self.options
            .values()
            .filter(|v| matches!(v, ConfigValue::Yes | ConfigValue::Module))
            .count()
    }

    /// Iterates options in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfigValue)> {
        self.options.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges one fragment into this configuration; later lines (and later
    /// fragments) overwrite earlier settings of the same option.
    ///
    /// # Errors
    ///
    /// [`LinuxError::BadFragment`] with the offending line number.
    pub fn merge_fragment(&mut self, fragment: &str) -> Result<(), LinuxError> {
        for (idx, raw) in fragment.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                // `# CONFIG_X is not set` or a plain comment.
                let rest = rest.trim();
                if let Some(name) = rest
                    .strip_suffix("is not set")
                    .map(str::trim)
                    .and_then(|n| n.strip_prefix("CONFIG_"))
                {
                    if name.is_empty() {
                        return Err(LinuxError::BadFragment {
                            line: line_no,
                            message: "empty option name".to_owned(),
                        });
                    }
                    self.options.insert(name.to_owned(), ConfigValue::No);
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(LinuxError::BadFragment {
                    line: line_no,
                    message: format!("expected `CONFIG_X=value`, found `{line}`"),
                });
            };
            let Some(name) = key.trim().strip_prefix("CONFIG_") else {
                return Err(LinuxError::BadFragment {
                    line: line_no,
                    message: format!("option `{key}` missing CONFIG_ prefix"),
                });
            };
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(LinuxError::BadFragment {
                    line: line_no,
                    message: format!("bad option name `{name}`"),
                });
            }
            let value = value.trim();
            let parsed = match value {
                "y" | "Y" => ConfigValue::Yes,
                "m" | "M" => ConfigValue::Module,
                "n" | "N" => ConfigValue::No,
                v if v.starts_with('"') && v.ends_with('"') && v.len() >= 2 => {
                    ConfigValue::Str(v[1..v.len() - 1].to_owned())
                }
                v => match v.parse::<i64>() {
                    Ok(n) => ConfigValue::Int(n),
                    Err(_) => {
                        return Err(LinuxError::BadFragment {
                            line: line_no,
                            message: format!("bad value `{v}` for CONFIG_{name}"),
                        })
                    }
                },
            };
            self.options.insert(name.to_owned(), parsed);
        }
        Ok(())
    }

    /// Merges fragments in order; the paper's "merged in order, with more
    /// recently defined options overwriting earlier duplicates".
    ///
    /// # Errors
    ///
    /// First [`LinuxError::BadFragment`] encountered.
    pub fn merge_fragments<'a, I: IntoIterator<Item = &'a str>>(
        &mut self,
        fragments: I,
    ) -> Result<(), LinuxError> {
        for f in fragments {
            self.merge_fragment(f)?;
        }
        Ok(())
    }

    /// Serialises to canonical `.config` text (sorted, deterministic).
    pub fn to_config_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.options {
            match value {
                ConfigValue::No => {
                    out.push_str(&format!("# CONFIG_{name} is not set\n"));
                }
                other => out.push_str(&format!("CONFIG_{name}={other}\n")),
            }
        }
        out
    }

    /// A stable fingerprint of the full configuration.
    pub fn fingerprint(&self) -> marshal_depgraph::Fingerprint {
        marshal_depgraph::Fingerprint::of(self.to_config_text().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defconfig_sane() {
        let c = KernelConfig::riscv_defconfig();
        assert!(c.is_enabled("RISCV"));
        assert!(c.is_enabled("64BIT"));
        assert!(!c.is_enabled("PFA"));
        assert_eq!(c.get("HZ"), Some(&ConfigValue::Int(100)));
    }

    #[test]
    fn fragment_merge_order() {
        let mut c = KernelConfig::riscv_defconfig();
        c.merge_fragments(["CONFIG_PFA=y\n", "# CONFIG_PFA is not set\n"])
            .unwrap();
        assert!(!c.is_enabled("PFA"));
        c.merge_fragment("CONFIG_PFA=y").unwrap();
        assert!(c.is_enabled("PFA"));
    }

    #[test]
    fn fragment_syntax() {
        let mut c = KernelConfig::new();
        c.merge_fragment(
            "# a plain comment\nCONFIG_A=y\nCONFIG_B=m\nCONFIG_C=\"hello world\"\nCONFIG_D=42\n# CONFIG_E is not set\n\n",
        )
        .unwrap();
        assert_eq!(c.get("A"), Some(&ConfigValue::Yes));
        assert_eq!(c.get("B"), Some(&ConfigValue::Module));
        assert_eq!(c.get("C"), Some(&ConfigValue::Str("hello world".into())));
        assert_eq!(c.get("D"), Some(&ConfigValue::Int(42)));
        assert_eq!(c.get("E"), Some(&ConfigValue::No));
    }

    #[test]
    fn bad_fragments_rejected() {
        let mut c = KernelConfig::new();
        assert!(matches!(
            c.merge_fragment("not a config line"),
            Err(LinuxError::BadFragment { line: 1, .. })
        ));
        assert!(matches!(
            c.merge_fragment("FOO=y"),
            Err(LinuxError::BadFragment { .. })
        ));
        assert!(matches!(
            c.merge_fragment("CONFIG_A=y\nCONFIG_B=maybe\n"),
            Err(LinuxError::BadFragment { line: 2, .. })
        ));
        assert!(matches!(
            c.merge_fragment("CONFIG_BAD NAME=y"),
            Err(LinuxError::BadFragment { .. })
        ));
    }

    #[test]
    fn canonical_text_roundtrip() {
        let mut c = KernelConfig::riscv_defconfig();
        c.merge_fragment("CONFIG_PFA=y\nCONFIG_NAME=\"x\"\n")
            .unwrap();
        let text = c.to_config_text();
        let mut c2 = KernelConfig::new();
        c2.merge_fragment(&text).unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = KernelConfig::riscv_defconfig();
        let mut b = KernelConfig::riscv_defconfig();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.merge_fragment("CONFIG_PFA=y").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn enabled_count() {
        let mut c = KernelConfig::new();
        c.merge_fragment("CONFIG_A=y\nCONFIG_B=m\n# CONFIG_C is not set\nCONFIG_D=5\n")
            .unwrap();
        assert_eq!(c.enabled_count(), 2);
    }
}
