//! The modelled kernel compilation (§III-B step 4d).
//!
//! "The full Linux kernel can now be compiled with a reference to the
//! initramfs to embed." A [`KernelArtifact`] is the deterministic product:
//! its identity (and the boot banner the simulators print) is a pure
//! function of the source tree, the final configuration, and the embedded
//! initramfs.

use marshal_depgraph::{Fingerprint, Hasher128};

use crate::initramfs::InitramfsArtifact;
use crate::kconfig::KernelConfig;
use crate::LinuxError;

/// Magic bytes at the start of a built kernel blob.
pub const KERNEL_MAGIC: &[u8; 4] = b"MKRN";

/// A modelled kernel source tree.
///
/// Real FireMarshal boards name "a version of Linux known to work with the
/// board or... the default version included with FireMarshal". Custom trees
/// (like the PFA case study's `pfa-linux`) are identified by name and carry
/// their own version string and feature set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSource {
    id: String,
    version: String,
    /// Feature tags the tree carries beyond mainline (e.g. `pfa`).
    features: Vec<String>,
}

impl KernelSource {
    /// The default kernel tree bundled with the tool.
    pub fn default_source() -> KernelSource {
        KernelSource {
            id: "linux-default".to_owned(),
            version: "5.7.0-firemarshal".to_owned(),
            features: Vec::new(),
        }
    }

    /// A custom source tree with explicit version and features.
    pub fn custom(
        id: impl Into<String>,
        version: impl Into<String>,
        features: Vec<String>,
    ) -> KernelSource {
        KernelSource {
            id: id.into(),
            version: version.into(),
            features,
        }
    }

    /// The source identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The version string (`uname -r` style).
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Feature tags carried by this tree.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// Whether the tree carries a feature (e.g. `pfa`).
    pub fn has_feature(&self, name: &str) -> bool {
        self.features.iter().any(|f| f == name)
    }
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelArtifact {
    version: String,
    source_id: String,
    features: Vec<String>,
    config: KernelConfig,
    config_fingerprint: Fingerprint,
    initramfs: InitramfsArtifact,
    fingerprint: Fingerprint,
    text_size: u64,
}

/// Compiles a kernel from a source tree, final configuration, and
/// initramfs.
///
/// # Errors
///
/// [`LinuxError::Build`] when the configuration violates a build invariant
/// (missing `RISCV`/`64BIT`, or `BLK_DEV_INITRD` disabled while an
/// initramfs is supplied).
pub fn build_kernel(
    source: &KernelSource,
    config: &KernelConfig,
    initramfs: &InitramfsArtifact,
) -> Result<KernelArtifact, LinuxError> {
    for required in ["RISCV", "64BIT"] {
        if !config.is_enabled(required) {
            return Err(LinuxError::Build(format!(
                "CONFIG_{required} must be enabled for a RISC-V kernel"
            )));
        }
    }
    if !config.is_enabled("BLK_DEV_INITRD") {
        return Err(LinuxError::Build(
            "CONFIG_BLK_DEV_INITRD must be enabled to embed an initramfs".to_owned(),
        ));
    }
    let config_fingerprint = config.fingerprint();
    let mut h = Hasher128::new();
    h.update_field(source.id.as_bytes());
    h.update_field(source.version.as_bytes());
    for f in &source.features {
        h.update_field(f.as_bytes());
    }
    h.update_field(config_fingerprint.to_string().as_bytes());
    h.update_field(initramfs.archive());
    let fingerprint = h.finish();

    // Size model: a base text size plus a per-enabled-option cost. Feeds
    // the simulators' boot-time model the way real kernel size affects
    // load/decompress time.
    let text_size = (4u64 << 20) + (config.enabled_count() as u64) * (16 << 10);

    Ok(KernelArtifact {
        version: source.version.clone(),
        source_id: source.id.clone(),
        features: source.features.clone(),
        config: config.clone(),
        config_fingerprint,
        initramfs: initramfs.clone(),
        fingerprint,
        text_size,
    })
}

impl KernelArtifact {
    /// The kernel version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The source tree this kernel was built from.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// Feature tags of the source tree.
    pub fn features(&self) -> &[String] {
        &self.features
    }

    /// Whether this kernel carries a feature (e.g. `pfa`).
    pub fn has_feature(&self, name: &str) -> bool {
        self.features.iter().any(|f| f == name)
    }

    /// The final (post-fragment-merge) configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Fingerprint of the final configuration.
    pub fn config_fingerprint(&self) -> Fingerprint {
        self.config_fingerprint
    }

    /// The embedded initramfs.
    pub fn initramfs(&self) -> &InitramfsArtifact {
        &self.initramfs
    }

    /// The artifact's content fingerprint (identity of the build).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Modelled text size in bytes (drives boot timing).
    pub fn text_size(&self) -> u64 {
        self.text_size
    }

    /// The boot banner the simulators print, like a real kernel's first
    /// dmesg line.
    pub fn banner(&self) -> String {
        format!(
            "Linux version {} (firemarshal@build) (config {}) #1 SMP",
            self.version,
            self.config_fingerprint.short()
        )
    }

    /// Serialises the kernel to a deterministic binary blob (`MKRN`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(KERNEL_MAGIC);
        write_field(&mut out, self.version.as_bytes());
        write_field(&mut out, self.source_id.as_bytes());
        out.extend_from_slice(&(self.features.len() as u32).to_le_bytes());
        for f in &self.features {
            write_field(&mut out, f.as_bytes());
        }
        write_field(&mut out, self.config.to_config_text().as_bytes());
        write_field(&mut out, self.initramfs.archive());
        out.extend_from_slice(&if self.initramfs.is_diskless() {
            [1u8]
        } else {
            [0u8]
        });
        out
    }

    /// Parses a serialised kernel blob.
    ///
    /// # Errors
    ///
    /// [`LinuxError::Build`] for malformed blobs.
    pub fn from_bytes(bytes: &[u8]) -> Result<KernelArtifact, LinuxError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], LinuxError> {
            if *pos + n > bytes.len() {
                return Err(LinuxError::Build("truncated kernel blob".to_owned()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != KERNEL_MAGIC {
            return Err(LinuxError::Build("bad kernel magic".to_owned()));
        }
        let read_field = |pos: &mut usize| -> Result<Vec<u8>, LinuxError> {
            let len = u64::from_le_bytes(take(pos, 8)?.try_into().unwrap()) as usize;
            Ok(take(pos, len)?.to_vec())
        };
        let version = String::from_utf8(read_field(&mut pos)?)
            .map_err(|_| LinuxError::Build("bad version".to_owned()))?;
        let source_id = String::from_utf8(read_field(&mut pos)?)
            .map_err(|_| LinuxError::Build("bad source id".to_owned()))?;
        let nfeat = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap());
        let mut features = Vec::new();
        for _ in 0..nfeat {
            features.push(
                String::from_utf8(read_field(&mut pos)?)
                    .map_err(|_| LinuxError::Build("bad feature".to_owned()))?,
            );
        }
        let config_text = String::from_utf8(read_field(&mut pos)?)
            .map_err(|_| LinuxError::Build("bad config".to_owned()))?;
        let mut config = KernelConfig::new();
        config.merge_fragment(&config_text)?;
        let archive = read_field(&mut pos)?;
        let diskless = take(&mut pos, 1)?[0] == 1;
        // Rebuild via the same path so every derived field is consistent.
        let initramfs = ReassembledInitramfs { archive, diskless }.into_artifact()?;
        let source = KernelSource::custom(source_id, version, features);
        build_kernel(&source, &config, &initramfs)
    }
}

/// Helper for reconstructing an [`InitramfsArtifact`] from raw parts.
struct ReassembledInitramfs {
    archive: Vec<u8>,
    diskless: bool,
}

impl ReassembledInitramfs {
    fn into_artifact(self) -> Result<InitramfsArtifact, LinuxError> {
        // Validate by unpacking, then rebuild through the public path.
        let img = marshal_image::cpio::unpack(&self.archive)
            .map_err(|e| LinuxError::Image(e.to_string()))?;
        let mut names = Vec::new();
        if let Ok(entries) = img.list_dir("/lib/modules") {
            for version_dir in entries {
                if let Ok(mods) = img.list_dir(&format!("/lib/modules/{version_dir}")) {
                    for m in mods {
                        names.push(m.trim_end_matches(".ko").to_owned());
                    }
                }
            }
        }
        Ok(InitramfsArtifact::from_raw(
            self.archive,
            names,
            self.diskless,
        ))
    }
}

fn write_field(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
    out.extend_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initramfs::InitramfsSpec;

    fn kernel() -> KernelArtifact {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let initramfs = InitramfsSpec::new()
            .module("iceblk", "v1")
            .build(&config, &src)
            .unwrap();
        build_kernel(&src, &config, &initramfs).unwrap()
    }

    #[test]
    fn deterministic() {
        assert_eq!(kernel().fingerprint(), kernel().fingerprint());
        assert_eq!(kernel().to_bytes(), kernel().to_bytes());
    }

    #[test]
    fn config_changes_identity() {
        let src = KernelSource::default_source();
        let base_cfg = KernelConfig::riscv_defconfig();
        let initramfs = InitramfsSpec::new().build(&base_cfg, &src).unwrap();
        let a = build_kernel(&src, &base_cfg, &initramfs).unwrap();
        let mut cfg2 = KernelConfig::riscv_defconfig();
        cfg2.merge_fragment("CONFIG_PFA=y").unwrap();
        let b = build_kernel(&src, &cfg2, &initramfs).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.banner(), b.banner());
    }

    #[test]
    fn invariants_enforced() {
        let src = KernelSource::default_source();
        let cfg = KernelConfig::riscv_defconfig();
        let initramfs = InitramfsSpec::new().build(&cfg, &src).unwrap();
        let mut no_riscv = cfg.clone();
        no_riscv
            .merge_fragment("# CONFIG_RISCV is not set")
            .unwrap();
        assert!(build_kernel(&src, &no_riscv, &initramfs).is_err());
        let mut no_initrd = cfg.clone();
        no_initrd
            .merge_fragment("# CONFIG_BLK_DEV_INITRD is not set")
            .unwrap();
        assert!(build_kernel(&src, &no_initrd, &initramfs).is_err());
    }

    #[test]
    fn blob_roundtrip() {
        let k = kernel();
        let bytes = k.to_bytes();
        let back = KernelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.version(), k.version());
        assert_eq!(back.config_fingerprint(), k.config_fingerprint());
        assert_eq!(back.fingerprint(), k.fingerprint());
        assert_eq!(
            back.initramfs().module_names(),
            k.initramfs().module_names()
        );
    }

    #[test]
    fn custom_source_features() {
        let src = KernelSource::custom("pfa-linux", "5.7.0-pfa", vec!["pfa".into()]);
        let mut cfg = KernelConfig::riscv_defconfig();
        cfg.merge_fragment("CONFIG_PFA=y").unwrap();
        let initramfs = InitramfsSpec::new().build(&cfg, &src).unwrap();
        let k = build_kernel(&src, &cfg, &initramfs).unwrap();
        assert!(k.has_feature("pfa"));
        assert!(k.banner().contains("5.7.0-pfa"));
    }

    #[test]
    fn size_model_grows_with_config() {
        let src = KernelSource::default_source();
        let small = KernelConfig::riscv_defconfig();
        let mut big = small.clone();
        big.merge_fragment("CONFIG_EXTRA1=y\nCONFIG_EXTRA2=y\nCONFIG_EXTRA3=y\n")
            .unwrap();
        let ir_small = InitramfsSpec::new().build(&small, &src).unwrap();
        let ir_big = InitramfsSpec::new().build(&big, &src).unwrap();
        let ks = build_kernel(&src, &small, &ir_small).unwrap();
        let kb = build_kernel(&src, &big, &ir_big).unwrap();
        assert!(kb.text_size() > ks.text_size());
    }
}
