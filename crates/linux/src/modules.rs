//! Kernel module builds (§III-B step 4b).
//!
//! "With a valid kernel configuration, any needed kernel modules defined in
//! the workload can now be built. This includes system-provided device
//! drivers, as well as user-provided kernel modules."

use marshal_depgraph::{Fingerprint, Hasher128};

use crate::kconfig::KernelConfig;
use crate::LinuxError;

/// Magic bytes at the start of every built module blob.
pub const MODULE_MAGIC: &[u8; 4] = b"MKO\x01";

/// A built kernel module (a modelled `.ko`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleArtifact {
    name: String,
    source_id: String,
    fingerprint: Fingerprint,
    bytes: Vec<u8>,
}

impl ModuleArtifact {
    /// The module name (e.g. `icenet`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source identifier the module was built from.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// The module's content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The built module bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The in-image path where this module is installed.
    pub fn install_path(&self, kernel_version: &str) -> String {
        format!("/lib/modules/{kernel_version}/{}.ko", self.name)
    }
}

/// Builds a module against a kernel configuration.
///
/// Like a real module build, the result depends on both the module source
/// and the kernel configuration it is compiled against — rebuilding with a
/// different config produces a different artifact.
///
/// # Errors
///
/// [`LinuxError::Build`] when the kernel configuration does not enable
/// `MODULES`.
pub fn build_module(
    name: &str,
    source_id: &str,
    config: &KernelConfig,
) -> Result<ModuleArtifact, LinuxError> {
    if !config.is_enabled("MODULES") {
        return Err(LinuxError::Build(format!(
            "cannot build module `{name}`: CONFIG_MODULES is not enabled"
        )));
    }
    let mut h = Hasher128::new();
    h.update_field(name.as_bytes());
    h.update_field(source_id.as_bytes());
    h.update_field(config.fingerprint().to_string().as_bytes());
    let fingerprint = h.finish();

    let mut bytes = Vec::new();
    bytes.extend_from_slice(MODULE_MAGIC);
    bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
    bytes.extend_from_slice(name.as_bytes());
    bytes.extend_from_slice(&fingerprint.0.to_le_bytes());
    // Modelled code payload: deterministic pseudo-text derived from the
    // fingerprint, sized like a small driver.
    let body = format!(
        "module {name} source {source_id} built-against {}\n",
        fingerprint.short()
    );
    for _ in 0..16 {
        bytes.extend_from_slice(body.as_bytes());
    }
    Ok(ModuleArtifact {
        name: name.to_owned(),
        source_id: source_id.to_owned(),
        fingerprint,
        bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_build() {
        let config = KernelConfig::riscv_defconfig();
        let a = build_module("icenet", "icenet-v1", &config).unwrap();
        let b = build_module("icenet", "icenet-v1", &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn source_and_config_affect_artifact() {
        let config = KernelConfig::riscv_defconfig();
        let a = build_module("icenet", "icenet-v1", &config).unwrap();
        let b = build_module("icenet", "icenet-v2", &config).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut config2 = KernelConfig::riscv_defconfig();
        config2.merge_fragment("CONFIG_PFA=y").unwrap();
        let c = build_module("icenet", "icenet-v1", &config2).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn requires_modules_enabled() {
        let mut config = KernelConfig::riscv_defconfig();
        config
            .merge_fragment("# CONFIG_MODULES is not set")
            .unwrap();
        assert!(matches!(
            build_module("icenet", "v", &config),
            Err(LinuxError::Build(_))
        ));
    }

    #[test]
    fn install_path_versioned() {
        let config = KernelConfig::riscv_defconfig();
        let m = build_module("iceblk", "v1", &config).unwrap();
        assert_eq!(m.install_path("5.7.0"), "/lib/modules/5.7.0/iceblk.ko");
        assert!(m.bytes().starts_with(MODULE_MAGIC));
    }
}
