//! # marshal-linux
//!
//! The modelled Linux kernel — the substrate FireMarshal's build phase
//! manipulates (§III-B steps 4a–4d of the paper).
//!
//! What FireMarshal actually touches in a real kernel is its *build
//! artifact structure*: a defconfig refined by ordered configuration
//! fragments, out-of-tree modules, a generated initramfs for early boot,
//! and a final compiled image whose identity is a function of all of the
//! above. This crate reproduces exactly that structure with a real
//! Kconfig-style option system and a deterministic "compilation" that
//! produces content-addressed kernel artifacts.
//!
//! ## Example
//!
//! ```rust
//! use marshal_linux::kconfig::{KernelConfig, ConfigValue};
//! use marshal_linux::kernel::{KernelSource, build_kernel};
//! use marshal_linux::initramfs::InitramfsSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut config = KernelConfig::riscv_defconfig();
//! config.merge_fragment("CONFIG_PFA=y\n# CONFIG_DEBUG_INFO is not set\n")?;
//! assert_eq!(config.get("PFA"), Some(&ConfigValue::Yes));
//!
//! let src = KernelSource::default_source();
//! let initramfs = InitramfsSpec::new().build(&config, &src)?;
//! let kernel = build_kernel(&src, &config, &initramfs)?;
//! assert!(kernel.version().starts_with("5."));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod initramfs;
pub mod kconfig;
pub mod kernel;
pub mod modules;

pub use initramfs::InitramfsSpec;
pub use kconfig::{ConfigValue, KernelConfig};
pub use kernel::{build_kernel, KernelArtifact, KernelSource};
pub use modules::{build_module, ModuleArtifact};

/// Errors from the modelled kernel build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinuxError {
    /// A configuration fragment line could not be parsed.
    BadFragment {
        /// 1-based line number within the fragment.
        line: usize,
        /// Description.
        message: String,
    },
    /// An image operation failed while generating the initramfs.
    Image(String),
    /// Kernel build failure (e.g. config invariant violated).
    Build(String),
}

impl std::fmt::Display for LinuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinuxError::BadFragment { line, message } => {
                write!(f, "bad config fragment at line {line}: {message}")
            }
            LinuxError::Image(m) => write!(f, "initramfs image error: {m}"),
            LinuxError::Build(m) => write!(f, "kernel build error: {m}"),
        }
    }
}

impl std::error::Error for LinuxError {}

impl From<marshal_image::FsError> for LinuxError {
    fn from(e: marshal_image::FsError) -> LinuxError {
        LinuxError::Image(e.to_string())
    }
}
