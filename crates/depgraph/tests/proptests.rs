//! Property-based tests on the build engine: topological-order validity,
//! run-once semantics, and serial/parallel equivalence over random DAGs.
//!
//! Uses the in-repo `marshal-qcheck` harness (the build environment is
//! offline, so proptest is unavailable); every case derives from a fixed
//! seed and replays deterministically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use marshal_depgraph::{ExecOptions, Graph, StateDb, Task};
use marshal_qcheck::{cases, Rng};

/// A random DAG as edges (child, parent) with parent < child — acyclic by
/// construction.
fn arb_dag(rng: &mut Rng) -> (usize, Vec<(usize, usize)>) {
    let n = rng.range_usize(2, 12);
    let n_edges = rng.range_usize(0, n * 2);
    let edges = (0..n_edges)
        .map(|_| {
            let child = rng.range_usize(1, n);
            let parent = rng.range_usize(0, child);
            (child, parent)
        })
        .collect();
    (n, edges)
}

fn dag_deps(i: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut deps: Vec<usize> = edges
        .iter()
        .filter(|(c, _)| *c == i)
        .map(|(_, p)| *p)
        .collect();
    deps.sort_unstable();
    deps.dedup();
    deps
}

fn build_graph(n: usize, edges: &[(usize, usize)], log: &Arc<Mutex<Vec<usize>>>) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        let log = log.clone();
        let mut t = Task::new(format!("t{i:02}"), move || {
            log.lock().unwrap().push(i);
            Ok(())
        });
        for d in dag_deps(i, edges) {
            t = t.dep(format!("t{d:02}"));
        }
        g.add(t).unwrap();
    }
    g
}

#[test]
fn topo_order_respects_edges() {
    cases(128, |rng| {
        let (n, edges) = arb_dag(rng);
        let log = Arc::new(Mutex::new(Vec::new()));
        let g = build_graph(n, &edges, &log);
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), n);
        let pos = |id: &str| order.iter().position(|o| o == id).unwrap();
        for (child, parent) in &edges {
            assert!(
                pos(&format!("t{parent:02}")) < pos(&format!("t{child:02}")),
                "t{parent:02} must precede t{child:02}"
            );
        }
    });
}

#[test]
fn execute_runs_each_task_exactly_once() {
    cases(128, |rng| {
        let (n, edges) = arb_dag(rng);
        let log = Arc::new(Mutex::new(Vec::new()));
        let g = build_graph(n, &edges, &log);
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed.len(), n);
        let mut ran = log.lock().unwrap().clone();
        ran.sort_unstable();
        assert_eq!(ran, (0..n).collect::<Vec<_>>());

        // Execution order respected dependencies.
        let ran = log.lock().unwrap().clone();
        let pos = |i: usize| ran.iter().position(|r| *r == i).unwrap();
        for (child, parent) in &edges {
            assert!(pos(*parent) < pos(*child));
        }

        // Second run: all skipped.
        let report = g.execute(&mut db).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.skipped.len(), n);
    });
}

#[test]
fn parallel_equals_serial() {
    cases(64, |rng| {
        let (n, edges) = arb_dag(rng);
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        for i in 0..n {
            let count = count.clone();
            let mut t = Task::new(format!("t{i:02}"), move || {
                count.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
            for d in dag_deps(i, &edges) {
                t = t.dep(format!("t{d:02}"));
            }
            g.add(t).unwrap();
        }
        let mut db = StateDb::in_memory();
        let opts = ExecOptions {
            threads: 4,
            ..ExecOptions::default()
        };
        let report = g.execute_with(&mut db, &opts).unwrap();
        assert_eq!(report.executed.len(), n);
        assert_eq!(count.load(Ordering::SeqCst), n);
        // Parallel run records the same state a serial run would: a serial
        // re-execute skips everything.
        let report = g.execute(&mut db).unwrap();
        assert!(report.executed.is_empty());
    });
}

/// StateDb round-trips through flush/open, and survives arbitrary
/// truncation of the on-disk file: open() either loads the data intact or
/// recovers with a cold cache — it never panics and never errors.
#[test]
fn statedb_survives_truncation() {
    let dir = std::env::temp_dir().join(format!(
        "marshal-depgraph-prop-trunc-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    cases(128, |rng| {
        let file = dir.join("state.db");
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(dir.join("state.db.corrupt"));
        let mut db = StateDb::open(&file).unwrap();
        let n = rng.range_usize(0, 12);
        for i in 0..n {
            db.record(
                format!("task{i:02}"),
                marshal_depgraph::Fingerprint::of(&rng.bytes_in(0, 16)),
            );
        }
        db.flush().unwrap();
        let full = std::fs::read(&file).unwrap();

        // Untouched file round-trips exactly.
        let back = StateDb::open(&file).unwrap();
        assert!(back.recovery().is_none());
        assert_eq!(back.len(), n);

        // Truncated file: clean load only if nothing was actually lost.
        let cut = rng.range_usize(0, full.len() + 1);
        std::fs::write(&file, &full[..cut]).unwrap();
        let back = StateDb::open(&file).unwrap();
        if back.recovery().is_none() {
            assert_eq!(back.len(), n, "silent data loss after cut at {cut}");
        } else {
            assert!(back.is_empty(), "recovery must mean cold cache");
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bit-flips anywhere in the state file are either harmless to the parsed
/// contents or detected and recovered from — never a panic, never silently
/// wrong data.
#[test]
fn statedb_survives_bitflips() {
    let dir =
        std::env::temp_dir().join(format!("marshal-depgraph-prop-flip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    cases(128, |rng| {
        let file = dir.join("state.db");
        let _ = std::fs::remove_file(&file);
        let _ = std::fs::remove_file(dir.join("state.db.corrupt"));
        let mut db = StateDb::open(&file).unwrap();
        let n = rng.range_usize(1, 8);
        let mut expect = Vec::new();
        for i in 0..n {
            let fp = marshal_depgraph::Fingerprint::of(&rng.bytes_in(0, 16));
            db.record(format!("task{i:02}"), fp);
            expect.push((format!("task{i:02}"), fp));
        }
        db.flush().unwrap();

        let mut bytes = std::fs::read(&file).unwrap();
        let idx = rng.range_usize(0, bytes.len());
        let bit = 1u8 << rng.range_u64(0, 8);
        bytes[idx] ^= bit;
        std::fs::write(&file, &bytes).unwrap();

        let back = StateDb::open(&file).unwrap();
        if back.recovery().is_none() {
            // Clean load must mean the flip did not alter any entry.
            for (id, fp) in &expect {
                assert_eq!(back.last(id), Some(*fp), "silent corruption of {id}");
            }
        } else {
            assert!(back.is_empty());
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprints_differ_by_input() {
    cases(256, |rng| {
        let a = rng.bytes_in(0, 32);
        let b = rng.bytes_in(0, 32);
        if a == b {
            return;
        }
        let ta = Task::new("t", || Ok(())).input(&a);
        let tb = Task::new("t", || Ok(())).input(&b);
        assert_ne!(ta.fingerprint(), tb.fingerprint());
    });
}
