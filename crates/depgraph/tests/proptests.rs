//! Property-based tests on the build engine: topological-order validity,
//! run-once semantics, and serial/parallel equivalence over random DAGs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use marshal_depgraph::{Graph, StateDb, Task};

/// A random DAG as edges (child, parent) with parent < child — acyclic by
/// construction.
fn arb_dag() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (1..n).prop_flat_map(move |child| (Just(child), 0..child)),
            0..(n * 2),
        );
        (Just(n), edges)
    })
}

fn build_graph(
    n: usize,
    edges: &[(usize, usize)],
    log: &Arc<Mutex<Vec<usize>>>,
) -> Graph {
    let mut g = Graph::new();
    for i in 0..n {
        let log = log.clone();
        let mut t = Task::new(format!("t{i:02}"), move || {
            log.lock().unwrap().push(i);
            Ok(())
        });
        let mut deps: Vec<usize> = edges
            .iter()
            .filter(|(c, _)| *c == i)
            .map(|(_, p)| *p)
            .collect();
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            t = t.dep(format!("t{d:02}"));
        }
        g.add(t).unwrap();
    }
    g
}

proptest! {
    #[test]
    fn topo_order_respects_edges((n, edges) in arb_dag()) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let g = build_graph(n, &edges, &log);
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), n);
        let pos = |id: &str| order.iter().position(|o| o == id).unwrap();
        for (child, parent) in &edges {
            prop_assert!(
                pos(&format!("t{parent:02}")) < pos(&format!("t{child:02}")),
                "t{parent:02} must precede t{child:02}"
            );
        }
    }

    #[test]
    fn execute_runs_each_task_exactly_once((n, edges) in arb_dag()) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let g = build_graph(n, &edges, &log);
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        prop_assert_eq!(report.executed.len(), n);
        let mut ran = log.lock().unwrap().clone();
        ran.sort_unstable();
        prop_assert_eq!(ran, (0..n).collect::<Vec<_>>());

        // Execution order respected dependencies.
        let ran = log.lock().unwrap().clone();
        let pos = |i: usize| ran.iter().position(|r| *r == i).unwrap();
        for (child, parent) in &edges {
            prop_assert!(pos(*parent) < pos(*child));
        }

        // Second run: all skipped.
        let report = g.execute(&mut db).unwrap();
        prop_assert!(report.executed.is_empty());
        prop_assert_eq!(report.skipped.len(), n);
    }

    #[test]
    fn parallel_equals_serial((n, edges) in arb_dag()) {
        let count = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        for i in 0..n {
            let count = count.clone();
            let mut t = Task::new(format!("t{i:02}"), move || {
                count.fetch_add(1, Ordering::SeqCst);
                Ok(())
            });
            let mut deps: Vec<usize> = edges
                .iter()
                .filter(|(c, _)| *c == i)
                .map(|(_, p)| *p)
                .collect();
            deps.sort_unstable();
            deps.dedup();
            for d in deps {
                t = t.dep(format!("t{d:02}"));
            }
            g.add(t).unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 4).unwrap();
        prop_assert_eq!(report.executed.len(), n);
        prop_assert_eq!(count.load(Ordering::SeqCst), n);
        // Parallel run records the same state a serial run would: a serial
        // re-execute skips everything.
        let report = g.execute(&mut db).unwrap();
        prop_assert!(report.executed.is_empty());
    }

    #[test]
    fn fingerprints_differ_by_input(a in proptest::collection::vec(any::<u8>(), 0..32),
                                    b in proptest::collection::vec(any::<u8>(), 0..32)) {
        prop_assume!(a != b);
        let ta = Task::new("t", || Ok(())).input(&a);
        let tb = Task::new("t", || Ok(())).input(&b);
        prop_assert_ne!(ta.fingerprint(), tb.fingerprint());
    }
}
