//! # marshal-depgraph
//!
//! A doit-style incremental build engine, reproducing the dependency
//! tracking FireMarshal gets from the `doit` Python package (§III-B of the
//! paper): tasks form a DAG, each task carries a *fingerprint* of its
//! inputs, and a persisted state database lets later builds skip any task
//! whose fingerprint is unchanged and whose outputs still exist.
//!
//! ## Example
//!
//! ```rust
//! use marshal_depgraph::{Graph, StateDb, Task};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), marshal_depgraph::BuildError> {
//! let runs = Arc::new(AtomicUsize::new(0));
//! let mut g = Graph::new();
//! let r = runs.clone();
//! g.add(Task::new("compile", move || { r.fetch_add(1, Ordering::SeqCst); Ok(()) })
//!     .input(b"source-v1"))?;
//! let r = runs.clone();
//! g.add(Task::new("link", move || { r.fetch_add(1, Ordering::SeqCst); Ok(()) })
//!     .dep("compile"))?;
//!
//! let mut db = StateDb::in_memory();
//! let report = g.execute(&mut db)?;
//! assert_eq!(report.executed.len(), 2);
//! // Second build: nothing changed, everything is skipped.
//! let report = g.execute(&mut db)?;
//! assert!(report.executed.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod claims;
pub mod error;
pub mod events;
pub mod exec;
pub mod graph;
pub mod hash;
pub mod runner;
mod sched;
pub mod state;
pub mod task;

pub use claims::{assert_claimed, with_claims};
pub use error::{BuildError, ExecError};
pub use events::{EventSender, ExecEvent, ExecProgress, ProgressFn, RunnerId};
pub use exec::{BuildReport, ExecOptions};
pub use graph::Graph;
pub use hash::{Fingerprint, Hasher128};
pub use runner::{
    run_task, Assignment, DryRunPlan, DryRunRunner, LocalRunner, PlannedTask, TaskRunner,
};
pub use state::StateDb;
pub use task::Task;
