//! The build graph: task registration, validation, and topological order.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::BuildError;
use crate::task::Task;

/// A directed acyclic graph of [`Task`]s.
///
/// Tasks are added with [`Graph::add`]; edges come from each task's
/// declared dependencies. Execution lives in [`crate::exec`].
#[derive(Debug, Clone, Default)]
pub struct Graph {
    tasks: BTreeMap<String, Task>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Registers a task.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DuplicateTask`] if the id is already taken.
    pub fn add(&mut self, task: Task) -> Result<(), BuildError> {
        if self.tasks.contains_key(task.id()) {
            return Err(BuildError::DuplicateTask(task.id().to_owned()));
        }
        self.tasks.insert(task.id().to_owned(), task);
        Ok(())
    }

    /// Looks up a task by id.
    pub fn get(&self, id: &str) -> Option<&Task> {
        self.tasks.get(id)
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over tasks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.values()
    }

    /// Validates edges and returns task ids in a deterministic topological
    /// order (dependencies first; ties broken by id).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownDependency`] for edges to missing tasks
    /// and [`BuildError::Cycle`] when the graph is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<String>, BuildError> {
        for t in self.tasks.values() {
            for d in t.deps() {
                if !self.tasks.contains_key(d) {
                    return Err(BuildError::UnknownDependency {
                        task: t.id().to_owned(),
                        dependency: d.clone(),
                    });
                }
            }
        }
        // Kahn's algorithm over sorted ids for determinism.
        let mut indegree: BTreeMap<&str, usize> =
            self.tasks.keys().map(|k| (k.as_str(), 0)).collect();
        let mut rdeps: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for t in self.tasks.values() {
            let uniq: BTreeSet<&str> = t.deps().iter().map(|d| d.as_str()).collect();
            *indegree.get_mut(t.id()).unwrap() += uniq.len();
            for d in uniq {
                rdeps.entry(d).or_default().push(t.id());
            }
        }
        let mut ready: BTreeSet<&str> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(k, _)| *k)
            .collect();
        let mut order = Vec::with_capacity(self.tasks.len());
        while let Some(&next) = ready.iter().next() {
            ready.remove(next);
            order.push(next.to_owned());
            if let Some(children) = rdeps.get(next) {
                for &c in children {
                    let d = indegree.get_mut(c).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        ready.insert(c);
                    }
                }
            }
        }
        if order.len() != self.tasks.len() {
            let stuck = indegree
                .iter()
                .find(|(_, &d)| d > 0)
                .map(|(k, _)| (*k).to_owned())
                .unwrap_or_default();
            return Err(BuildError::Cycle(stuck));
        }
        Ok(order)
    }

    /// The transitive closure of dependencies of `roots` (including the
    /// roots), in topological order — used to build a single workload
    /// without touching unrelated tasks.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::topo_order`], plus
    /// [`BuildError::UnknownDependency`] for unknown roots.
    pub fn subgraph_order(&self, roots: &[&str]) -> Result<Vec<String>, BuildError> {
        let full = self.topo_order()?;
        let mut wanted: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = Vec::new();
        for r in roots {
            if !self.tasks.contains_key(*r) {
                return Err(BuildError::UnknownDependency {
                    task: "<root>".to_owned(),
                    dependency: (*r).to_owned(),
                });
            }
            stack.push(r);
        }
        while let Some(id) = stack.pop() {
            if wanted.insert(id) {
                for d in self.tasks[id].deps() {
                    stack.push(d);
                }
            }
        }
        Ok(full
            .into_iter()
            .filter(|t| wanted.contains(t.as_str()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: &str, deps: &[&str]) -> Task {
        let mut task = Task::new(id, || Ok(()));
        for d in deps {
            task = task.dep(*d);
        }
        task
    }

    #[test]
    fn topo_order_respects_deps() {
        let mut g = Graph::new();
        g.add(t("c", &["b"])).unwrap();
        g.add(t("b", &["a"])).unwrap();
        g.add(t("a", &[])).unwrap();
        assert_eq!(g.topo_order().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_rejected() {
        let mut g = Graph::new();
        g.add(t("a", &[])).unwrap();
        assert_eq!(
            g.add(t("a", &[])),
            Err(BuildError::DuplicateTask("a".into()))
        );
    }

    #[test]
    fn unknown_dep_rejected() {
        let mut g = Graph::new();
        g.add(t("a", &["ghost"])).unwrap();
        assert!(matches!(
            g.topo_order(),
            Err(BuildError::UnknownDependency { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        g.add(t("a", &["b"])).unwrap();
        g.add(t("b", &["a"])).unwrap();
        assert!(matches!(g.topo_order(), Err(BuildError::Cycle(_))));
    }

    #[test]
    fn self_cycle_detected() {
        let mut g = Graph::new();
        g.add(t("a", &["a"])).unwrap();
        assert!(matches!(g.topo_order(), Err(BuildError::Cycle(_))));
    }

    #[test]
    fn order_is_deterministic() {
        let build = || {
            let mut g = Graph::new();
            g.add(t("z", &[])).unwrap();
            g.add(t("m", &["z"])).unwrap();
            g.add(t("a", &["z"])).unwrap();
            g.topo_order().unwrap()
        };
        assert_eq!(build(), build());
        assert_eq!(build(), vec!["z", "a", "m"]);
    }

    #[test]
    fn subgraph_only_pulls_ancestors() {
        let mut g = Graph::new();
        g.add(t("base", &[])).unwrap();
        g.add(t("kernel", &["base"])).unwrap();
        g.add(t("image", &["base"])).unwrap();
        g.add(t("other", &[])).unwrap();
        let order = g.subgraph_order(&["kernel"]).unwrap();
        assert_eq!(order, vec!["base", "kernel"]);
    }

    #[test]
    fn duplicate_dep_edges_ok() {
        let mut g = Graph::new();
        g.add(t("a", &[])).unwrap();
        g.add(t("b", &["a", "a"])).unwrap();
        assert_eq!(g.topo_order().unwrap(), vec!["a", "b"]);
    }
}
