//! Deterministic 128-bit content hashing.
//!
//! Fingerprints drive up-to-date checks, artifact naming, and the modelled
//! "compilation" steps across the workspace. The function is a 128-bit
//! FNV-1a variant: not cryptographic, but stable across platforms and runs,
//! which is the property reproducible builds need.

use std::fmt;

const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit content fingerprint.
///
/// Displays as 32 lowercase hex digits.
///
/// ```rust
/// use marshal_depgraph::Fingerprint;
/// let a = Fingerprint::of(b"hello");
/// let b = Fingerprint::of(b"hello");
/// assert_eq!(a, b);
/// assert_eq!(a.to_string().len(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Hashes a single byte slice.
    pub fn of(bytes: &[u8]) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update(bytes);
        h.finish()
    }

    /// A short 12-hex-digit prefix, for human-readable artifact names.
    pub fn short(&self) -> String {
        format!("{:032x}", self.0)[..12].to_owned()
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl std::str::FromStr for Fingerprint {
    type Err = std::num::ParseIntError;

    fn from_str(s: &str) -> Result<Fingerprint, Self::Err> {
        u128::from_str_radix(s, 16).map(Fingerprint)
    }
}

/// An incremental 128-bit FNV-1a hasher.
///
/// ```rust
/// use marshal_depgraph::Hasher128;
/// let mut h = Hasher128::new();
/// h.update(b"a");
/// h.update(b"b");
/// assert_eq!(h.finish(), Hasher128::hash_all([b"ab".as_slice()]));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Default for Hasher128 {
    fn default() -> Hasher128 {
        Hasher128::new()
    }
}

impl Hasher128 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Hasher128 {
        Hasher128 { state: OFFSET }
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Feeds a length-prefixed field, so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn update_field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// Feeds a `u64` in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finishes and returns the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }

    /// Hashes an iterator of byte slices as one stream.
    pub fn hash_all<'a, I: IntoIterator<Item = &'a [u8]>>(parts: I) -> Fingerprint {
        let mut h = Hasher128::new();
        for p in parts {
            h.update(p);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(Fingerprint::of(b"abc"), Fingerprint::of(b"abc"));
        assert_ne!(Fingerprint::of(b"abc"), Fingerprint::of(b"abd"));
        assert_ne!(Fingerprint::of(b""), Fingerprint::of(b"\0"));
    }

    #[test]
    fn field_framing_distinguishes_boundaries() {
        let mut a = Hasher128::new();
        a.update_field(b"ab");
        a.update_field(b"c");
        let mut b = Hasher128::new();
        b.update_field(b"a");
        b.update_field(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let f = Fingerprint::of(b"roundtrip");
        let s = f.to_string();
        assert_eq!(s.parse::<Fingerprint>().unwrap(), f);
        assert_eq!(f.short().len(), 12);
        assert!(s.starts_with(&f.short()));
    }

    #[test]
    fn empty_input_nonzero() {
        assert_ne!(Fingerprint::of(b""), Fingerprint(0));
    }
}
