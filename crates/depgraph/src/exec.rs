//! Build execution: up-to-date checking and (optionally parallel) running,
//! with fail-fast and keep-going failure policies.
//!
//! # Parallel safety
//!
//! Before anything runs, the scheduler audits the write claims of every
//! task in the plan ([`crate::Task::claim`]): two tasks that claim the same
//! path without a dependency ordering them are rejected with
//! [`BuildError::Conflict`]. Reports are canonicalized to topological order
//! regardless of completion order, and each task is marked in-progress in
//! the [`StateDb`] (flushed through its atomic write path) while its action
//! runs, so a crash mid-task is detected on the next run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use marshal_trace::Recorder;

use crate::claims::ClaimScope;
use crate::error::BuildError;
use crate::graph::Graph;
use crate::hash::{Fingerprint, Hasher128};
use crate::state::StateDb;
use crate::task::Task;

/// Options controlling how a graph is executed.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// After a task fails, keep building every task that is not a
    /// transitive dependent of a failure, then return an aggregated
    /// [`BuildReport`] instead of bailing on the first error (the
    /// equivalent of `make -k`). When `false` (the default) the first
    /// failure aborts the build with [`BuildError::TaskFailed`].
    pub keep_going: bool,
    /// Number of worker threads; `0` or `1` runs serially.
    pub threads: usize,
    /// Event recorder for the run journal. The default (disabled) recorder
    /// costs one branch per would-be event — no channel sends, no clock
    /// reads on the scheduling hot path.
    pub recorder: Recorder,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            keep_going: false,
            threads: 1,
            recorder: Recorder::disabled(),
        }
    }
}

/// What a build did: which tasks executed, which were skipped as
/// up-to-date, which failed, and which were poisoned (never attempted
/// because a transitive dependency failed), in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Tasks whose actions ran.
    pub executed: Vec<String>,
    /// Tasks skipped because they were up to date.
    pub skipped: Vec<String>,
    /// Tasks whose action failed after exhausting the retry budget, with
    /// the failure message. Non-empty only under
    /// [`ExecOptions::keep_going`]; fail-fast mode reports the first
    /// failure as an error instead.
    pub failed: Vec<(String, String)>,
    /// Tasks never attempted because a transitive dependency failed.
    pub poisoned: Vec<String>,
}

impl BuildReport {
    /// Total tasks considered.
    pub fn total(&self) -> usize {
        self.executed.len() + self.skipped.len() + self.failed.len() + self.poisoned.len()
    }

    /// Whether the named task executed.
    pub fn ran(&self, id: &str) -> bool {
        self.executed.iter().any(|t| t == id)
    }

    /// Whether every task succeeded (nothing failed or poisoned).
    pub fn success(&self) -> bool {
        self.failed.is_empty() && self.poisoned.is_empty()
    }
}

/// Runs a task's action, re-running on failure until the task's retry
/// budget is exhausted. Deterministic: a fixed attempt count, no clock.
/// The task's write claims are installed for the duration, so undeclared
/// writes trip the debug assertion in [`crate::claims::assert_claimed`].
fn run_with_retries(task: &Task) -> Result<(), String> {
    let _claims = ClaimScope::enter(task);
    let budget = task.retry_budget();
    let mut attempt = 0;
    loop {
        match task.run() {
            Ok(()) => return Ok(()),
            Err(_) if attempt < budget => attempt += 1,
            Err(message) if budget > 0 => {
                return Err(format!("{message} (after {} attempts)", attempt + 1))
            }
            Err(message) => return Err(message),
        }
    }
}

/// Rejects plans in which two tasks claim the same write path without a
/// dependency path between them: running such a plan with more than one
/// worker would race on the file, and even serially the survivor would
/// depend on scheduling order.
///
/// Shared tree claims ([`crate::Task::claim_tree`]) are exempt from
/// tree-vs-tree conflicts — they declare idempotent content-addressed
/// writes — but an unordered *exact* claim under another task's tree is
/// still rejected: an exclusive writer racing a shared pool is a real
/// conflict.
fn audit_claims(graph: &Graph, order: &[String]) -> Result<(), BuildError> {
    // Transitive dependency sets, built dependencies-first.
    let mut ancestors: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("order contains known ids");
        let mut set: BTreeSet<&str> = BTreeSet::new();
        for dep in task.deps() {
            if let Some(above) = ancestors.get(dep.as_str()) {
                set.extend(above.iter().copied());
            }
            set.insert(dep.as_str());
        }
        ancestors.insert(id.as_str(), set);
    }
    // Walk in topological order: any previously seen claimant of the same
    // path is safe only if it is an ancestor of the current task.
    let mut writers: BTreeMap<&std::path::Path, Vec<&str>> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("order contains known ids");
        for path in task.claims() {
            let claimants = writers.entry(path.as_path()).or_default();
            for prev in claimants.iter() {
                if !ancestors[id.as_str()].contains(prev) {
                    let (first, second) = if prev < &id.as_str() {
                        ((*prev).to_owned(), id.clone())
                    } else {
                        (id.clone(), (*prev).to_owned())
                    };
                    return Err(BuildError::Conflict {
                        path: path.display().to_string(),
                        first,
                        second,
                    });
                }
            }
            claimants.push(id.as_str());
        }
    }
    // Exact claims vs. shared tree claims: conflict unless one task is a
    // (transitive) dependency of the other, in either direction.
    let ordered = |a: &str, b: &str| ancestors[a].contains(b) || ancestors[b].contains(a);
    let mut tree_claimants: Vec<(&std::path::Path, &str)> = Vec::new();
    for id in order {
        for root in graph
            .get(id)
            .expect("order contains known ids")
            .claim_trees()
        {
            tree_claimants.push((root.as_path(), id.as_str()));
        }
    }
    if !tree_claimants.is_empty() {
        for id in order {
            let task = graph.get(id).expect("order contains known ids");
            for path in task.claims() {
                for (root, tree_task) in &tree_claimants {
                    if *tree_task == id.as_str() || !path.starts_with(root) {
                        continue;
                    }
                    if !ordered(id.as_str(), tree_task) {
                        let (first, second) = if *tree_task < id.as_str() {
                            ((*tree_task).to_owned(), id.clone())
                        } else {
                            (id.clone(), (*tree_task).to_owned())
                        };
                        return Err(BuildError::Conflict {
                            path: path.display().to_string(),
                            first,
                            second,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Rewrites a report into canonical form: every list in topological order
/// (never completion order) and free of duplicates, so parallel builds are
/// observably deterministic.
fn canonicalize_report(report: &mut BuildReport, order: &[String]) {
    let pos: BTreeMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    let rank = |id: &str| pos.get(id).copied().unwrap_or(usize::MAX);
    for list in [
        &mut report.executed,
        &mut report.skipped,
        &mut report.poisoned,
    ] {
        list.sort_by_key(|id| rank(id));
        list.dedup();
    }
    report.failed.sort_by_key(|(id, _)| rank(id));
    report.failed.dedup_by(|a, b| a.0 == b.0);
}

/// Computes each task's *cumulative* fingerprint: its own inputs combined
/// with the cumulative fingerprints of its dependencies, so an input change
/// anywhere below a task changes that task's fingerprint too.
fn cumulative_fingerprints(graph: &Graph, order: &[String]) -> BTreeMap<String, Fingerprint> {
    let mut out: BTreeMap<String, Fingerprint> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("topo order returns known ids");
        let mut h = Hasher128::new();
        h.update_u64(task.fingerprint().0 as u64);
        h.update_u64((task.fingerprint().0 >> 64) as u64);
        let mut deps: Vec<&String> = task.deps().iter().collect();
        deps.sort();
        deps.dedup();
        for d in deps {
            let fp = out[d.as_str()];
            h.update_u64(fp.0 as u64);
            h.update_u64((fp.0 >> 64) as u64);
        }
        out.insert(id.clone(), h.finish());
    }
    out
}

impl Graph {
    /// Serially builds every task, skipping up-to-date ones.
    ///
    /// A task is up to date when its cumulative fingerprint matches the
    /// state database, all of its declared outputs exist, and none of its
    /// dependencies executed during this build.
    ///
    /// On success the state database records the new fingerprints (the
    /// caller decides when to [`StateDb::flush`]).
    ///
    /// # Errors
    ///
    /// Graph validation errors, or [`BuildError::TaskFailed`] from the first
    /// failing action.
    pub fn execute(&self, db: &mut StateDb) -> Result<BuildReport, BuildError> {
        self.execute_with(db, &ExecOptions::default())
    }

    /// Serially builds only `roots` and their transitive dependencies.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute`].
    pub fn execute_roots(
        &self,
        db: &mut StateDb,
        roots: &[&str],
    ) -> Result<BuildReport, BuildError> {
        self.execute_roots_with(db, roots, &ExecOptions::default())
    }

    /// Builds every task under the given [`ExecOptions`].
    ///
    /// # Errors
    ///
    /// Graph validation errors. With `keep_going` unset, also the first
    /// task failure; with it set, task failures land in
    /// [`BuildReport::failed`] / [`BuildReport::poisoned`] and the call
    /// returns `Ok`.
    pub fn execute_with(
        &self,
        db: &mut StateDb,
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let order = self.topo_order()?;
        self.dispatch(db, &order, opts)
    }

    /// Builds only `roots` and their transitive dependencies under the
    /// given [`ExecOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute_with`].
    pub fn execute_roots_with(
        &self,
        db: &mut StateDb,
        roots: &[&str],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let order = self.subgraph_order(roots)?;
        self.dispatch(db, &order, opts)
    }

    /// Builds every task with up to `threads` workers running independent
    /// tasks concurrently. Semantics match [`Graph::execute`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute`]; when several tasks fail concurrently, the
    /// error with the lexicographically smallest task id is reported.
    pub fn execute_parallel(
        &self,
        db: &mut StateDb,
        threads: usize,
    ) -> Result<BuildReport, BuildError> {
        self.execute_with(
            db,
            &ExecOptions {
                keep_going: false,
                threads,
                recorder: Recorder::disabled(),
            },
        )
    }

    fn dispatch(
        &self,
        db: &mut StateDb,
        order: &[String],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        // Audit write claims for every plan, serial included: two unordered
        // writers of one path is a latent bug at any thread count.
        audit_claims(self, order)?;
        let mut report = if opts.threads > 1 {
            self.execute_parallel_order(db, order, opts)?
        } else {
            self.execute_order(db, order, opts)?
        };
        canonicalize_report(&mut report, order);
        Ok(report)
    }

    fn execute_order(
        &self,
        db: &mut StateDb,
        order: &[String],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let fps = cumulative_fingerprints(self, order);
        let mut report = BuildReport::default();
        let mut dirty: BTreeSet<&str> = BTreeSet::new();
        // Failed tasks and their transitive dependents: never attempted.
        let mut dead: BTreeSet<&str> = BTreeSet::new();
        let rec = &opts.recorder;
        for id in order {
            let task = self.get(id).expect("known id");
            if task.deps().iter().any(|d| dead.contains(d.as_str())) {
                dead.insert(id.as_str());
                rec.task_poisoned(id);
                report.poisoned.push(id.clone());
                continue;
            }
            let fp = fps[id.as_str()];
            let dep_ran = task.deps().iter().any(|d| dirty.contains(d.as_str()));
            let up_to_date = !dep_ran && db.last(id) == Some(fp) && task.outputs_exist();
            if up_to_date {
                rec.task_skipped(id);
                report.skipped.push(id.clone());
                continue;
            }
            // Durable in-progress mark: flushed (atomically) before the
            // action runs, so a crash mid-task is visible to the next run.
            // Flush failures are non-fatal — losing the mark only loses
            // crash detection, not correctness of this build.
            db.mark_in_progress(id.clone());
            let _ = db.flush();
            let span = rec.task_span(id);
            match run_with_retries(task) {
                Ok(()) => {
                    db.finish(id.clone(), fp);
                    let _ = db.flush();
                    span.end_with(&[("outcome", "executed")]);
                    dirty.insert(id.as_str());
                    report.executed.push(id.clone());
                }
                Err(message) if opts.keep_going => {
                    // A clean failure is not a crash: clear the mark so the
                    // next run does not report a phantom interruption.
                    db.clear_in_progress(id);
                    let _ = db.flush();
                    span.end_with(&[("outcome", "failed"), ("error", &message)]);
                    dead.insert(id.as_str());
                    report.failed.push((id.clone(), message));
                }
                Err(message) => {
                    db.clear_in_progress(id);
                    let _ = db.flush();
                    span.end_with(&[("outcome", "failed"), ("error", &message)]);
                    return Err(BuildError::TaskFailed {
                        task: id.clone(),
                        message,
                    });
                }
            }
        }
        Ok(report)
    }

    fn execute_parallel_order(
        &self,
        db: &mut StateDb,
        order: &[String],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let fps = cumulative_fingerprints(self, order);
        let threads = opts.threads.max(1);
        let keep_going = opts.keep_going;

        struct Shared<'g> {
            graph: &'g Graph,
            state: Mutex<SchedState>,
            cv: Condvar,
            /// Whether to keep ready timestamps for claim-wait attribution
            /// (only when a recorder is listening).
            trace: bool,
        }
        #[derive(Default)]
        struct SchedState {
            remaining_deps: BTreeMap<String, usize>,
            ready: Vec<String>,
            /// When each ready task became ready (tracing only): the gap
            /// between this and the claim is the task's queue wait.
            ready_at: BTreeMap<String, Instant>,
            dirty: BTreeSet<String>,
            /// Failed tasks and their transitive dependents.
            dead: BTreeSet<String>,
            executed: Vec<String>,
            skipped: Vec<String>,
            poisoned: Vec<String>,
            pending: usize,
            /// Workers currently running a claimed task (`-j` occupancy).
            busy: usize,
            failures: BTreeMap<String, String>,
        }

        /// Decrements children's outstanding-dependency counts after `id`
        /// settles (succeeded, failed, or poisoned), readying any child
        /// whose dependencies have all settled. Children outside `order`
        /// (when building a root subset) are ignored.
        fn settle(st: &mut SchedState, graph: &Graph, id: &str, trace: bool) {
            st.pending -= 1;
            for t in graph.iter() {
                if !t.deps().iter().any(|d| d == id) {
                    continue;
                }
                if let Some(rem) = st.remaining_deps.get_mut(t.id()) {
                    // Counts were initialised over unique deps.
                    *rem = rem.saturating_sub(1);
                    if *rem == 0 {
                        st.ready.push(t.id().to_owned());
                        if trace {
                            st.ready_at.insert(t.id().to_owned(), Instant::now());
                        }
                    }
                }
            }
            st.ready.sort();
        }

        let mut sched = SchedState {
            pending: order.len(),
            ..SchedState::default()
        };
        for id in order {
            let n = self
                .get(id)
                .unwrap()
                .deps()
                .iter()
                .collect::<BTreeSet<_>>()
                .len();
            sched.remaining_deps.insert(id.clone(), n);
            if n == 0 {
                sched.ready.push(id.clone());
            }
        }
        sched.ready.sort();
        let rec = &opts.recorder;
        if rec.enabled() {
            let now = Instant::now();
            for id in &sched.ready {
                sched.ready_at.insert(id.clone(), now);
            }
        }

        let shared = Shared {
            graph: self,
            state: Mutex::new(sched),
            cv: Condvar::new(),
            trace: rec.enabled(),
        };
        let last_fps: BTreeMap<String, Option<Fingerprint>> =
            order.iter().map(|id| (id.clone(), db.last(id))).collect();
        // Workers write the state db directly (in-progress marks, new
        // fingerprints) through this mutex; every flush goes through the
        // db's atomic temp+rename path.
        let db = Mutex::new(db);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    loop {
                        // Claim a ready task, classifying it while the lock
                        // is held: a task whose dependency died is poisoned
                        // and settles without running.
                        let (id, dep_ran, claim_wait_us, busy) = {
                            let mut st = shared.state.lock().unwrap();
                            loop {
                                if st.pending == 0 || (!keep_going && !st.failures.is_empty()) {
                                    return;
                                }
                                if let Some(id) = st.ready.pop() {
                                    let task = shared.graph.get(&id).unwrap();
                                    if task.deps().iter().any(|d| st.dead.contains(d)) {
                                        st.ready_at.remove(&id);
                                        st.dead.insert(id.clone());
                                        st.poisoned.push(id.clone());
                                        rec.task_poisoned(&id);
                                        settle(&mut st, shared.graph, &id, shared.trace);
                                        shared.cv.notify_all();
                                        continue;
                                    }
                                    let dep_ran =
                                        task.deps().iter().any(|d| st.dirty.contains(d.as_str()));
                                    let wait = st
                                        .ready_at
                                        .remove(&id)
                                        .map(|at| at.elapsed().as_micros() as u64);
                                    st.busy += 1;
                                    break (id, dep_ran, wait, st.busy);
                                }
                                st = shared.cv.wait(st).unwrap();
                            }
                        };
                        if rec.enabled() {
                            rec.counter("busy_workers", busy as i64);
                        }
                        let task = shared.graph.get(&id).unwrap();
                        let fp = fps[&id];
                        let up_to_date =
                            !dep_ran && last_fps[&id] == Some(fp) && task.outputs_exist();
                        let result = if up_to_date {
                            rec.task_skipped(&id);
                            Ok(false)
                        } else {
                            {
                                let mut db = db.lock().unwrap();
                                db.mark_in_progress(id.clone());
                                let _ = db.flush();
                            }
                            let span = rec.span(
                                "task",
                                &[
                                    ("task", &id),
                                    ("claim_wait_us", &claim_wait_us.unwrap_or(0).to_string()),
                                ],
                            );
                            let r = run_with_retries(task).map(|_| true);
                            match &r {
                                Ok(_) => span.end_with(&[("outcome", "executed")]),
                                Err(message) => {
                                    span.end_with(&[("outcome", "failed"), ("error", message)]);
                                }
                            }
                            r
                        };

                        match &result {
                            Ok(true) => {
                                let mut db = db.lock().unwrap();
                                db.finish(id.clone(), fp);
                                let _ = db.flush();
                            }
                            Err(_) => {
                                let mut db = db.lock().unwrap();
                                db.clear_in_progress(&id);
                                let _ = db.flush();
                            }
                            Ok(false) => {}
                        }

                        let mut st = shared.state.lock().unwrap();
                        st.busy -= 1;
                        let busy = st.busy;
                        match result {
                            Ok(ran) => {
                                if ran {
                                    st.dirty.insert(id.clone());
                                    st.executed.push(id.clone());
                                } else {
                                    st.skipped.push(id.clone());
                                }
                                settle(&mut st, shared.graph, &id, shared.trace);
                            }
                            Err(message) => {
                                st.failures.insert(id.clone(), message);
                                if keep_going {
                                    // The failure cone keeps settling so
                                    // independent subtrees can finish.
                                    st.dead.insert(id.clone());
                                    settle(&mut st, shared.graph, &id, shared.trace);
                                }
                            }
                        }
                        drop(st);
                        if rec.enabled() {
                            rec.counter("busy_workers", busy as i64);
                        }
                        shared.cv.notify_all();
                    }
                });
            }
        });

        // Fingerprints were recorded as tasks finished (successful subtrees
        // persist even when others failed, so a fixed failure resumes
        // incrementally); only the report remains to assemble.
        let st = shared.state.into_inner().unwrap();
        if !keep_going {
            if let Some((task, message)) = st.failures.into_iter().next() {
                return Err(BuildError::TaskFailed { task, message });
            }
            return Ok(BuildReport {
                executed: st.executed,
                skipped: st.skipped,
                failed: Vec::new(),
                poisoned: Vec::new(),
            });
        }
        Ok(BuildReport {
            executed: st.executed,
            skipped: st.skipped,
            failed: st.failures.into_iter().collect(),
            poisoned: st.poisoned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting_graph(counter: &Arc<AtomicUsize>, input_for_a: &[u8]) -> Graph {
        let mut g = Graph::new();
        let c = counter.clone();
        g.add(
            Task::new("a", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .input(input_for_a),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("b", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("a"),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("c", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("b"),
        )
        .unwrap();
        g
    }

    /// A diamond with one failing leg plus an independent subtree:
    ///
    /// ```text
    ///   bad ──► mid ──► top        good ──► side
    /// ```
    fn failure_cone_graph(ran: &Arc<Mutex<Vec<&'static str>>>) -> Graph {
        let mut g = Graph::new();
        g.add(Task::new("bad", || Err("kaboom".into()))).unwrap();
        for (id, dep) in [
            ("mid", Some("bad")),
            ("top", Some("mid")),
            ("good", None),
            ("side", Some("good")),
        ] {
            let ran = ran.clone();
            let mut t = Task::new(id, move || {
                ran.lock().unwrap().push(id);
                Ok(())
            });
            if let Some(d) = dep {
                t = t.dep(d);
            }
            g.add(t).unwrap();
        }
        g
    }

    #[test]
    fn first_build_runs_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn second_build_skips_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        let report = g.execute(&mut db).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.skipped.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn input_change_cascades() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut db = StateDb::in_memory();
        counting_graph(&counter, b"v1").execute(&mut db).unwrap();
        // Rebuild with a changed leaf input: all three run again.
        let report = counting_graph(&counter, b"v2").execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn failure_stops_build() {
        let mut g = Graph::new();
        g.add(Task::new("bad", || Err("kaboom".into()))).unwrap();
        g.add(Task::new("after", || Ok(())).dep("bad")).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute(&mut db).unwrap_err();
        assert_eq!(
            err,
            BuildError::TaskFailed {
                task: "bad".into(),
                message: "kaboom".into()
            }
        );
        // Nothing recorded for the failed task.
        assert_eq!(db.last("bad"), None);
    }

    #[test]
    fn keep_going_builds_outside_failure_cone() {
        let ran = Arc::new(Mutex::new(Vec::new()));
        let g = failure_cone_graph(&ran);
        let mut db = StateDb::in_memory();
        let opts = ExecOptions {
            keep_going: true,
            threads: 1,
            recorder: Recorder::disabled(),
        };
        let report = g.execute_with(&mut db, &opts).unwrap();
        assert!(!report.success());
        assert_eq!(report.failed, vec![("bad".to_owned(), "kaboom".to_owned())]);
        let mut poisoned = report.poisoned.clone();
        poisoned.sort();
        assert_eq!(poisoned, vec!["mid", "top"]);
        let mut executed = report.executed.clone();
        executed.sort();
        assert_eq!(executed, vec!["good", "side"]);
        // Poisoned tasks never ran, and nothing in the cone was recorded.
        assert_eq!(ran.lock().unwrap().len(), 2);
        assert_eq!(db.last("bad"), None);
        assert_eq!(db.last("mid"), None);
        // The independent subtree was recorded: a second keep-going build
        // skips it and only re-reports the failure cone.
        let report = g.execute_with(&mut db, &opts).unwrap();
        let mut skipped = report.skipped.clone();
        skipped.sort();
        assert_eq!(skipped, vec!["good", "side"]);
        assert_eq!(report.failed.len(), 1);
    }

    #[test]
    fn keep_going_parallel_matches_serial() {
        for threads in [2, 8] {
            let ran = Arc::new(Mutex::new(Vec::new()));
            let g = failure_cone_graph(&ran);
            let mut db = StateDb::in_memory();
            let report = g
                .execute_with(
                    &mut db,
                    &ExecOptions {
                        keep_going: true,
                        threads,
                        recorder: Recorder::disabled(),
                    },
                )
                .unwrap();
            assert_eq!(report.failed.len(), 1, "threads={threads}");
            let mut poisoned = report.poisoned.clone();
            poisoned.sort();
            assert_eq!(poisoned, vec!["mid", "top"], "threads={threads}");
            let mut executed = report.executed.clone();
            executed.sort();
            assert_eq!(executed, vec!["good", "side"], "threads={threads}");
            assert_eq!(report.total(), 5, "threads={threads}");
        }
    }

    #[test]
    fn keep_going_all_green_matches_default() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        let report = g
            .execute_with(
                &mut db,
                &ExecOptions {
                    keep_going: true,
                    threads: 1,
                    recorder: Recorder::disabled(),
                },
            )
            .unwrap();
        assert!(report.success());
        assert_eq!(report.executed, vec!["a", "b", "c"]);
    }

    #[test]
    fn retries_rerun_flaky_tasks() {
        // Fails twice, then succeeds; a budget of 2 retries absorbs it.
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("flaky", move || {
                if a.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    Ok(())
                }
            })
            .retries(2),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["flaky"]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_are_bounded() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("hopeless", move || {
                a.fetch_add(1, Ordering::SeqCst);
                Err("always".into())
            })
            .retries(3),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute(&mut db).unwrap_err();
        // 1 initial + 3 retries, then the error reports the attempt count.
        assert_eq!(attempts.load(Ordering::SeqCst), 4);
        assert!(matches!(
            err,
            BuildError::TaskFailed { ref message, .. } if message == "always (after 4 attempts)"
        ));
    }

    #[test]
    fn missing_output_forces_rerun() {
        let dir = std::env::temp_dir().join(format!("depgraph-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("artifact");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let out2 = out.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("t", move || {
                c.fetch_add(1, Ordering::SeqCst);
                std::fs::write(&out2, b"x").map_err(|e| e.to_string())
            })
            .output(&out),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        std::fs::remove_file(&out).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn roots_limit_scope() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = counting_graph(&counter, b"v1");
        let c = counter.clone();
        g.add(Task::new("unrelated", move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_roots(&mut db, &["b"]).unwrap();
        assert_eq!(report.executed, vec!["a", "b"]);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_matches_serial() {
        for threads in [1, 2, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let g = counting_graph(&counter, b"v1");
            let mut db = StateDb::in_memory();
            let report = g.execute_parallel(&mut db, threads).unwrap();
            assert_eq!(report.executed.len(), 3, "threads={threads}");
            assert_eq!(counter.load(Ordering::SeqCst), 3);
            let report = g.execute_parallel(&mut db, threads).unwrap();
            assert!(report.executed.is_empty());
        }
    }

    #[test]
    fn parallel_wide_fanout() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        g.add(Task::new("root", || Ok(()))).unwrap();
        for i in 0..32 {
            let c = counter.clone();
            g.add(
                Task::new(format!("job{i:02}"), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .dep("root"),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 8).unwrap();
        assert_eq!(report.executed.len(), 33);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn parallel_failure_reported() {
        let mut g = Graph::new();
        g.add(Task::new("ok", || Ok(()))).unwrap();
        g.add(Task::new("bad", || Err("pow".into()))).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute_parallel(&mut db, 4).unwrap_err();
        assert!(matches!(err, BuildError::TaskFailed { ref task, .. } if task == "bad"));
    }

    #[test]
    fn keep_going_roots_subset() {
        // Root subsets compose with keep-going: only the requested
        // subtree is considered, and its failure cone is still tracked.
        let ran = Arc::new(Mutex::new(Vec::new()));
        let g = failure_cone_graph(&ran);
        let mut db = StateDb::in_memory();
        let report = g
            .execute_roots_with(
                &mut db,
                &["top", "side"],
                &ExecOptions {
                    keep_going: true,
                    threads: 2,
                    recorder: Recorder::disabled(),
                },
            )
            .unwrap();
        assert_eq!(report.failed.len(), 1);
        let mut poisoned = report.poisoned.clone();
        poisoned.sort();
        assert_eq!(poisoned, vec!["mid", "top"]);
        assert_eq!(report.total(), 5);
    }

    #[test]
    fn conflicting_claims_rejected_naming_both_tasks() {
        for threads in [1, 8] {
            let ran = Arc::new(AtomicUsize::new(0));
            let mut g = Graph::new();
            let c = ran.clone();
            g.add(
                Task::new("img:a", move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .output("/tmp/shared-rootfs.img"),
            )
            .unwrap();
            let c = ran.clone();
            g.add(
                Task::new("img:b", move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .claim("/tmp/shared-rootfs.img"),
            )
            .unwrap();
            let mut db = StateDb::in_memory();
            let err = g
                .execute_with(
                    &mut db,
                    &ExecOptions {
                        keep_going: false,
                        threads,
                        recorder: Recorder::disabled(),
                    },
                )
                .unwrap_err();
            match err {
                BuildError::Conflict {
                    path,
                    first,
                    second,
                } => {
                    assert_eq!(path, "/tmp/shared-rootfs.img");
                    assert_eq!((first.as_str(), second.as_str()), ("img:a", "img:b"));
                }
                other => panic!("expected Conflict, got {other:?}"),
            }
            // The audit rejects the plan before anything executes.
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn shared_tree_claims_run_concurrently() {
        // Two unordered tasks claiming the same content-addressed store
        // tree is the expected parallel shape, not a conflict.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        for id in ["img:a", "img:b"] {
            let c = counter.clone();
            g.add(
                Task::new(id, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .claim_tree("/work/objects"),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 4).unwrap();
        assert_eq!(report.executed.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn exact_claim_under_foreign_tree_rejected() {
        for threads in [1, 8] {
            let mut g = Graph::new();
            g.add(Task::new("store", || Ok(())).claim_tree("/work/objects"))
                .unwrap();
            g.add(Task::new("rogue", || Ok(())).output("/work/objects/ab/x.blob"))
                .unwrap();
            let mut db = StateDb::in_memory();
            let err = g
                .execute_with(
                    &mut db,
                    &ExecOptions {
                        keep_going: false,
                        threads,
                        recorder: Recorder::disabled(),
                    },
                )
                .unwrap_err();
            match err {
                BuildError::Conflict {
                    path,
                    first,
                    second,
                } => {
                    assert_eq!(path, "/work/objects/ab/x.blob");
                    assert_eq!((first.as_str(), second.as_str()), ("rogue", "store"));
                }
                other => panic!("expected Conflict, got {other:?}"),
            }
        }
    }

    #[test]
    fn ordered_exact_claim_under_tree_allowed() {
        // A downstream task may write an exact path inside the store tree
        // when a dependency edge orders it after the tree claimant (e.g.
        // clean-up or verification passes).
        let mut g = Graph::new();
        g.add(Task::new("store", || Ok(())).claim_tree("/work/objects"))
            .unwrap();
        g.add(
            Task::new("verify", || Ok(()))
                .dep("store")
                .claim("/work/objects/index"),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 4).unwrap();
        assert_eq!(report.executed, vec!["store", "verify"]);
    }

    #[test]
    fn dependency_ordered_claims_are_allowed() {
        // Writers of the same path are fine when a dependency path orders
        // them — e.g. a finalize task rewriting an image its (transitive)
        // dependency produced.
        let mut g = Graph::new();
        g.add(Task::new("base", || Ok(())).claim("/tmp/layered.img"))
            .unwrap();
        g.add(Task::new("mid", || Ok(())).dep("base")).unwrap();
        g.add(
            Task::new("finalize", || Ok(()))
                .dep("mid")
                .claim("/tmp/layered.img"),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 4).unwrap();
        assert_eq!(report.executed, vec!["base", "mid", "finalize"]);
    }

    #[test]
    fn parallel_report_is_topo_ordered() {
        // Independent siblings finish in scheduler order, but the report
        // lists them canonically regardless of thread count.
        let mut expected = vec!["root".to_owned()];
        for threads in [1, 2, 8] {
            let mut g = Graph::new();
            g.add(Task::new("root", || Ok(()))).unwrap();
            for i in 0..24 {
                g.add(Task::new(format!("job{i:02}"), || Ok(())).dep("root"))
                    .unwrap();
            }
            let mut db = StateDb::in_memory();
            let report = g.execute_parallel(&mut db, threads).unwrap();
            if expected.len() == 1 {
                expected.extend((0..24).map(|i| format!("job{i:02}")));
            }
            assert_eq!(report.executed, expected, "threads={threads}");
        }
    }

    #[test]
    fn poisoned_cone_is_deduped_and_topo_ordered() {
        // Diamond under a failing task: `z` is reachable through both legs,
        // so a completion-order accumulator could list it twice. The
        // canonical report never does.
        for threads in [1, 8] {
            let mut g = Graph::new();
            g.add(Task::new("bad", || Err("boom".into()))).unwrap();
            g.add(Task::new("x", || Ok(())).dep("bad")).unwrap();
            g.add(Task::new("y", || Ok(())).dep("bad")).unwrap();
            g.add(Task::new("z", || Ok(())).dep("x").dep("y")).unwrap();
            let mut db = StateDb::in_memory();
            let report = g
                .execute_with(
                    &mut db,
                    &ExecOptions {
                        keep_going: true,
                        threads,
                        recorder: Recorder::disabled(),
                    },
                )
                .unwrap();
            assert_eq!(report.poisoned, vec!["x", "y", "z"], "threads={threads}");
            assert_eq!(report.failed.len(), 1, "threads={threads}");
        }
    }

    #[test]
    fn interrupted_task_is_dirty_on_next_run() {
        let dir = std::env::temp_dir().join(format!("depgraph-interrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("state.db");
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let mut db = StateDb::open(&file).unwrap();
            counting_graph(&counter, b"v1").execute(&mut db).unwrap();
            db.flush().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // Simulate a crash mid-`b`: the scheduler marks a task in-progress
        // and flushes right before running it; a crash never clears it.
        {
            let mut db = StateDb::open(&file).unwrap();
            db.mark_in_progress("b");
            db.flush().unwrap();
        }
        let mut db = StateDb::open(&file).unwrap();
        assert_eq!(db.interrupted(), ["b"]);
        let report = counting_graph(&counter, b"v1").execute(&mut db).unwrap();
        // `b` reruns (its fingerprint was discarded) and `c` follows as its
        // dependent; `a` is still clean.
        assert_eq!(report.executed, vec!["b", "c"]);
        assert_eq!(report.skipped, vec!["a"]);
        // The rerun cleared the mark durably (per-task flushes).
        let db = StateDb::open(&file).unwrap();
        assert!(db.interrupted().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-only check")]
    fn undeclared_write_trips_assertion_via_executor() {
        let mut g = Graph::new();
        g.add(Task::new("sneaky", || {
            crate::claims::assert_claimed(std::path::Path::new("/tmp/undeclared.bin"));
            Ok(())
        }))
        .unwrap();
        let mut db = StateDb::in_memory();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.execute(&mut db)));
        assert!(result.is_err(), "undeclared write must panic in debug");
    }

    #[test]
    fn report_helpers() {
        let r = BuildReport {
            executed: vec!["a".into()],
            skipped: vec!["b".into(), "c".into()],
            failed: vec![("d".into(), "boom".into())],
            poisoned: vec!["e".into()],
        };
        assert_eq!(r.total(), 5);
        assert!(r.ran("a"));
        assert!(!r.ran("b"));
        assert!(!r.success());
        assert!(BuildReport::default().success());
    }
}
