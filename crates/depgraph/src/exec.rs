//! Build execution: up-to-date checking and running over pluggable task
//! runners, with fail-fast and keep-going failure policies.
//!
//! Execution is split in two: a single-threaded scheduler
//! ([`crate::sched`]) owns the graph walk, the up-to-date checks, the
//! claim audit, and the poisoning policy; [`crate::runner::TaskRunner`]s
//! own nothing but execution and report back over the
//! [`crate::ExecEvent`] channel. [`Graph::execute_with`] drives a
//! [`crate::runner::LocalRunner`] thread pool; callers that want remote
//! or dry-run execution pass their own runner set to
//! [`Graph::execute_with_runners`].
//!
//! # Parallel safety
//!
//! Before anything runs, the scheduler audits the write claims of every
//! task in the plan ([`crate::Task::claim`]): two tasks that claim the same
//! path without a dependency ordering them are rejected with
//! [`BuildError::Conflict`]. Reports are canonicalized to topological order
//! regardless of completion order, and each task is marked in-progress in
//! the [`StateDb`] (flushed through its atomic write path) while its action
//! runs, so a crash mid-task is detected on the next run.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use marshal_trace::Recorder;

use crate::error::BuildError;
use crate::events::ProgressFn;
use crate::graph::Graph;
use crate::hash::{Fingerprint, Hasher128};
use crate::runner::{LocalRunner, TaskRunner};
use crate::state::StateDb;

/// Options controlling how a graph is executed.
#[derive(Clone)]
pub struct ExecOptions {
    /// After a task fails, keep building every task that is not a
    /// transitive dependent of a failure, then return an aggregated
    /// [`BuildReport`] instead of bailing on the first error (the
    /// equivalent of `make -k`). When `false` (the default) the first
    /// failure aborts the build with [`BuildError::TaskFailed`].
    pub keep_going: bool,
    /// Number of local worker threads for the default runner.
    ///
    /// This is the one place worker-count defaults are decided:
    /// [`ExecOptions::default`] uses `1` (serial — deterministic and safe
    /// for library callers), and front-ends that want parallelism opt in
    /// via [`ExecOptions::host_threads`]. `0` is clamped to `1`. Ignored
    /// when the caller supplies its own runners.
    pub threads: usize,
    /// Event recorder for the run journal. The default (disabled) recorder
    /// costs one branch per would-be event — no channel sends, no clock
    /// reads on the scheduling hot path.
    pub recorder: Recorder,
    /// Invoked from the scheduler thread with a fresh
    /// [`crate::ExecProgress`] snapshot whenever the ready/running/done
    /// picture may have changed. Must not block for long.
    pub progress: Option<ProgressFn>,
}

impl fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecOptions")
            .field("keep_going", &self.keep_going)
            .field("threads", &self.threads)
            .field("recorder", &self.recorder)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            keep_going: false,
            threads: 1,
            recorder: Recorder::disabled(),
            progress: None,
        }
    }
}

impl ExecOptions {
    /// The host's available parallelism (minimum 1): the worker-count
    /// default CLI front-ends use when the user passes no `-j`. Library
    /// callers get [`ExecOptions::default`]'s serial behaviour unless they
    /// opt in.
    pub fn host_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// What a build did: which tasks executed, which were skipped as
/// up-to-date, which failed, and which were poisoned (never attempted
/// because a transitive dependency failed), in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Tasks whose actions ran.
    pub executed: Vec<String>,
    /// Tasks skipped because they were up to date.
    pub skipped: Vec<String>,
    /// Tasks whose action failed after exhausting the retry budget, with
    /// the failure message. Non-empty only under
    /// [`ExecOptions::keep_going`]; fail-fast mode reports the first
    /// failure as an error instead.
    pub failed: Vec<(String, String)>,
    /// Tasks never attempted because a transitive dependency failed.
    pub poisoned: Vec<String>,
}

impl BuildReport {
    /// Total tasks considered.
    pub fn total(&self) -> usize {
        self.executed.len() + self.skipped.len() + self.failed.len() + self.poisoned.len()
    }

    /// Whether the named task executed.
    pub fn ran(&self, id: &str) -> bool {
        self.executed.iter().any(|t| t == id)
    }

    /// Whether every task succeeded (nothing failed or poisoned).
    pub fn success(&self) -> bool {
        self.failed.is_empty() && self.poisoned.is_empty()
    }
}

/// Rejects plans in which two tasks claim the same write path without a
/// dependency path between them: running such a plan with more than one
/// worker would race on the file, and even serially the survivor would
/// depend on scheduling order.
///
/// Shared tree claims ([`crate::Task::claim_tree`]) are exempt from
/// tree-vs-tree conflicts — they declare idempotent content-addressed
/// writes — but an unordered *exact* claim under another task's tree is
/// still rejected: an exclusive writer racing a shared pool is a real
/// conflict.
fn audit_claims(graph: &Graph, order: &[String]) -> Result<(), BuildError> {
    // Transitive dependency sets, built dependencies-first.
    let mut ancestors: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("order contains known ids");
        let mut set: BTreeSet<&str> = BTreeSet::new();
        for dep in task.deps() {
            if let Some(above) = ancestors.get(dep.as_str()) {
                set.extend(above.iter().copied());
            }
            set.insert(dep.as_str());
        }
        ancestors.insert(id.as_str(), set);
    }
    // Walk in topological order: any previously seen claimant of the same
    // path is safe only if it is an ancestor of the current task.
    let mut writers: BTreeMap<&std::path::Path, Vec<&str>> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("order contains known ids");
        for path in task.claims() {
            let claimants = writers.entry(path.as_path()).or_default();
            for prev in claimants.iter() {
                if !ancestors[id.as_str()].contains(prev) {
                    let (first, second) = if prev < &id.as_str() {
                        ((*prev).to_owned(), id.clone())
                    } else {
                        (id.clone(), (*prev).to_owned())
                    };
                    return Err(BuildError::Conflict {
                        path: path.display().to_string(),
                        first,
                        second,
                    });
                }
            }
            claimants.push(id.as_str());
        }
    }
    // Exact claims vs. shared tree claims: conflict unless one task is a
    // (transitive) dependency of the other, in either direction.
    let ordered = |a: &str, b: &str| ancestors[a].contains(b) || ancestors[b].contains(a);
    let mut tree_claimants: Vec<(&std::path::Path, &str)> = Vec::new();
    for id in order {
        for root in graph
            .get(id)
            .expect("order contains known ids")
            .claim_trees()
        {
            tree_claimants.push((root.as_path(), id.as_str()));
        }
    }
    if !tree_claimants.is_empty() {
        for id in order {
            let task = graph.get(id).expect("order contains known ids");
            for path in task.claims() {
                for (root, tree_task) in &tree_claimants {
                    if *tree_task == id.as_str() || !path.starts_with(root) {
                        continue;
                    }
                    if !ordered(id.as_str(), tree_task) {
                        let (first, second) = if *tree_task < id.as_str() {
                            ((*tree_task).to_owned(), id.clone())
                        } else {
                            (id.clone(), (*tree_task).to_owned())
                        };
                        return Err(BuildError::Conflict {
                            path: path.display().to_string(),
                            first,
                            second,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Rewrites a report into canonical form: every list in topological order
/// (never completion order) and free of duplicates, so parallel builds are
/// observably deterministic.
fn canonicalize_report(report: &mut BuildReport, order: &[String]) {
    let pos: BTreeMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    let rank = |id: &str| pos.get(id).copied().unwrap_or(usize::MAX);
    for list in [
        &mut report.executed,
        &mut report.skipped,
        &mut report.poisoned,
    ] {
        list.sort_by_key(|id| rank(id));
        list.dedup();
    }
    report.failed.sort_by_key(|(id, _)| rank(id));
    report.failed.dedup_by(|a, b| a.0 == b.0);
}

/// Computes each task's *cumulative* fingerprint: its own inputs combined
/// with the cumulative fingerprints of its dependencies, so an input change
/// anywhere below a task changes that task's fingerprint too.
pub(crate) fn cumulative_fingerprints(
    graph: &Graph,
    order: &[String],
) -> BTreeMap<String, Fingerprint> {
    let mut out: BTreeMap<String, Fingerprint> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("topo order returns known ids");
        let mut h = Hasher128::new();
        h.update_u64(task.fingerprint().0 as u64);
        h.update_u64((task.fingerprint().0 >> 64) as u64);
        let mut deps: Vec<&String> = task.deps().iter().collect();
        deps.sort();
        deps.dedup();
        for d in deps {
            let fp = out[d.as_str()];
            h.update_u64(fp.0 as u64);
            h.update_u64((fp.0 >> 64) as u64);
        }
        out.insert(id.clone(), h.finish());
    }
    out
}

impl Graph {
    /// Serially builds every task, skipping up-to-date ones.
    ///
    /// A task is up to date when its cumulative fingerprint matches the
    /// state database, all of its declared outputs exist, and none of its
    /// dependencies executed during this build.
    ///
    /// On success the state database records the new fingerprints (the
    /// caller decides when to [`StateDb::flush`]).
    ///
    /// # Errors
    ///
    /// Graph validation errors, or [`BuildError::TaskFailed`] from the first
    /// failing action.
    pub fn execute(&self, db: &mut StateDb) -> Result<BuildReport, BuildError> {
        self.execute_with(db, &ExecOptions::default())
    }

    /// Serially builds only `roots` and their transitive dependencies.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute`].
    pub fn execute_roots(
        &self,
        db: &mut StateDb,
        roots: &[&str],
    ) -> Result<BuildReport, BuildError> {
        self.execute_roots_with(db, roots, &ExecOptions::default())
    }

    /// Builds every task under the given [`ExecOptions`], on a
    /// [`LocalRunner`] pool of [`ExecOptions::threads`] workers.
    ///
    /// # Errors
    ///
    /// Graph validation errors. With `keep_going` unset, also the first
    /// task failure (when several tasks fail concurrently, the error with
    /// the lexicographically smallest task id is reported); with it set,
    /// task failures land in [`BuildReport::failed`] /
    /// [`BuildReport::poisoned`] and the call returns `Ok`.
    pub fn execute_with(
        &self,
        db: &mut StateDb,
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let order = self.topo_order()?;
        self.dispatch(db, &order, opts)
    }

    /// Builds only `roots` and their transitive dependencies under the
    /// given [`ExecOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute_with`].
    pub fn execute_roots_with(
        &self,
        db: &mut StateDb,
        roots: &[&str],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        let order = self.subgraph_order(roots)?;
        self.dispatch(db, &order, opts)
    }

    /// Builds every task over a caller-supplied runner set instead of the
    /// default local pool ([`ExecOptions::threads`] is ignored). Ready
    /// tasks are offered to runners in declaration order — put remote
    /// runners first to shard eligible work onto them, with a local runner
    /// after for everything else.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute_with`], plus [`BuildError::Runner`] when
    /// the runner set is empty, mixes dry-run and live runners, or breaks
    /// the event contract.
    pub fn execute_with_runners(
        &self,
        db: &mut StateDb,
        opts: &ExecOptions,
        runners: Vec<Box<dyn TaskRunner>>,
    ) -> Result<BuildReport, BuildError> {
        let order = self.topo_order()?;
        audit_claims(self, &order)?;
        self.run_with_runners(db, &order, opts, runners)
    }

    /// Builds only `roots` and their transitive dependencies over a
    /// caller-supplied runner set.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute_with_runners`].
    pub fn execute_roots_with_runners(
        &self,
        db: &mut StateDb,
        roots: &[&str],
        opts: &ExecOptions,
        runners: Vec<Box<dyn TaskRunner>>,
    ) -> Result<BuildReport, BuildError> {
        let order = self.subgraph_order(roots)?;
        audit_claims(self, &order)?;
        self.run_with_runners(db, &order, opts, runners)
    }

    fn dispatch(
        &self,
        db: &mut StateDb,
        order: &[String],
        opts: &ExecOptions,
    ) -> Result<BuildReport, BuildError> {
        // Audit write claims for every plan, serial included: two unordered
        // writers of one path is a latent bug at any thread count.
        audit_claims(self, order)?;
        let runners: Vec<Box<dyn TaskRunner>> =
            vec![Box::new(LocalRunner::new(opts.threads.max(1)))];
        self.run_with_runners(db, order, opts, runners)
    }

    fn run_with_runners(
        &self,
        db: &mut StateDb,
        order: &[String],
        opts: &ExecOptions,
        mut runners: Vec<Box<dyn TaskRunner>>,
    ) -> Result<BuildReport, BuildError> {
        for r in runners.iter_mut() {
            r.set_recorder(opts.recorder.clone());
        }
        let mut report = crate::sched::run_scheduler(self, order, db, opts, &mut runners)?;
        canonicalize_report(&mut report, order);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    /// `execute_with` options for an N-worker local build.
    fn threaded(threads: usize) -> ExecOptions {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// `execute_with` options for a keep-going build at the given width.
    fn keep_going(threads: usize) -> ExecOptions {
        ExecOptions {
            keep_going: true,
            threads,
            ..ExecOptions::default()
        }
    }

    fn counting_graph(counter: &Arc<AtomicUsize>, input_for_a: &[u8]) -> Graph {
        let mut g = Graph::new();
        let c = counter.clone();
        g.add(
            Task::new("a", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .input(input_for_a),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("b", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("a"),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("c", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("b"),
        )
        .unwrap();
        g
    }

    /// A diamond with one failing leg plus an independent subtree:
    ///
    /// ```text
    ///   bad ──► mid ──► top        good ──► side
    /// ```
    fn failure_cone_graph(ran: &Arc<Mutex<Vec<&'static str>>>) -> Graph {
        let mut g = Graph::new();
        g.add(Task::new("bad", || Err("kaboom".into()))).unwrap();
        for (id, dep) in [
            ("mid", Some("bad")),
            ("top", Some("mid")),
            ("good", None),
            ("side", Some("good")),
        ] {
            let ran = ran.clone();
            let mut t = Task::new(id, move || {
                ran.lock().unwrap().push(id);
                Ok(())
            });
            if let Some(d) = dep {
                t = t.dep(d);
            }
            g.add(t).unwrap();
        }
        g
    }

    #[test]
    fn first_build_runs_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn second_build_skips_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        let report = g.execute(&mut db).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.skipped.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn input_change_cascades() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut db = StateDb::in_memory();
        counting_graph(&counter, b"v1").execute(&mut db).unwrap();
        // Rebuild with a changed leaf input: all three run again.
        let report = counting_graph(&counter, b"v2").execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn failure_stops_build() {
        let mut g = Graph::new();
        g.add(Task::new("bad", || Err("kaboom".into()))).unwrap();
        g.add(Task::new("after", || Ok(())).dep("bad")).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute(&mut db).unwrap_err();
        assert_eq!(
            err,
            BuildError::TaskFailed {
                task: "bad".into(),
                message: "kaboom".into()
            }
        );
        // Nothing recorded for the failed task.
        assert_eq!(db.last("bad"), None);
    }

    #[test]
    fn keep_going_builds_outside_failure_cone() {
        let ran = Arc::new(Mutex::new(Vec::new()));
        let g = failure_cone_graph(&ran);
        let mut db = StateDb::in_memory();
        let opts = keep_going(1);
        let report = g.execute_with(&mut db, &opts).unwrap();
        assert!(!report.success());
        assert_eq!(report.failed, vec![("bad".to_owned(), "kaboom".to_owned())]);
        let mut poisoned = report.poisoned.clone();
        poisoned.sort();
        assert_eq!(poisoned, vec!["mid", "top"]);
        let mut executed = report.executed.clone();
        executed.sort();
        assert_eq!(executed, vec!["good", "side"]);
        // Poisoned tasks never ran, and nothing in the cone was recorded.
        assert_eq!(ran.lock().unwrap().len(), 2);
        assert_eq!(db.last("bad"), None);
        assert_eq!(db.last("mid"), None);
        // The independent subtree was recorded: a second keep-going build
        // skips it and only re-reports the failure cone.
        let report = g.execute_with(&mut db, &opts).unwrap();
        let mut skipped = report.skipped.clone();
        skipped.sort();
        assert_eq!(skipped, vec!["good", "side"]);
        assert_eq!(report.failed.len(), 1);
    }

    #[test]
    fn keep_going_parallel_matches_serial() {
        for threads in [2, 8] {
            let ran = Arc::new(Mutex::new(Vec::new()));
            let g = failure_cone_graph(&ran);
            let mut db = StateDb::in_memory();
            let report = g.execute_with(&mut db, &keep_going(threads)).unwrap();
            assert_eq!(report.failed.len(), 1, "threads={threads}");
            let mut poisoned = report.poisoned.clone();
            poisoned.sort();
            assert_eq!(poisoned, vec!["mid", "top"], "threads={threads}");
            let mut executed = report.executed.clone();
            executed.sort();
            assert_eq!(executed, vec!["good", "side"], "threads={threads}");
            assert_eq!(report.total(), 5, "threads={threads}");
        }
    }

    #[test]
    fn keep_going_all_green_matches_default() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        let report = g.execute_with(&mut db, &keep_going(1)).unwrap();
        assert!(report.success());
        assert_eq!(report.executed, vec!["a", "b", "c"]);
    }

    #[test]
    fn retries_rerun_flaky_tasks() {
        // Fails twice, then succeeds; a budget of 2 retries absorbs it.
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("flaky", move || {
                if a.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    Ok(())
                }
            })
            .retries(2),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["flaky"]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retries_are_bounded() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let a = attempts.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("hopeless", move || {
                a.fetch_add(1, Ordering::SeqCst);
                Err("always".into())
            })
            .retries(3),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute(&mut db).unwrap_err();
        // 1 initial + 3 retries, then the error reports the attempt count.
        assert_eq!(attempts.load(Ordering::SeqCst), 4);
        assert!(matches!(
            err,
            BuildError::TaskFailed { ref message, .. } if message == "always (after 4 attempts)"
        ));
    }

    #[test]
    fn missing_output_forces_rerun() {
        let dir = std::env::temp_dir().join(format!("depgraph-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("artifact");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let out2 = out.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("t", move || {
                c.fetch_add(1, Ordering::SeqCst);
                std::fs::write(&out2, b"x").map_err(|e| e.to_string())
            })
            .output(&out),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        std::fs::remove_file(&out).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn roots_limit_scope() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = counting_graph(&counter, b"v1");
        let c = counter.clone();
        g.add(Task::new("unrelated", move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_roots(&mut db, &["b"]).unwrap();
        assert_eq!(report.executed, vec!["a", "b"]);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_matches_serial() {
        for threads in [1, 2, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let g = counting_graph(&counter, b"v1");
            let mut db = StateDb::in_memory();
            let report = g.execute_with(&mut db, &threaded(threads)).unwrap();
            assert_eq!(report.executed.len(), 3, "threads={threads}");
            assert_eq!(counter.load(Ordering::SeqCst), 3);
            let report = g.execute_with(&mut db, &threaded(threads)).unwrap();
            assert!(report.executed.is_empty());
        }
    }

    #[test]
    fn parallel_wide_fanout() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        g.add(Task::new("root", || Ok(()))).unwrap();
        for i in 0..32 {
            let c = counter.clone();
            g.add(
                Task::new(format!("job{i:02}"), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .dep("root"),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_with(&mut db, &threaded(8)).unwrap();
        assert_eq!(report.executed.len(), 33);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn parallel_failure_reported() {
        let mut g = Graph::new();
        g.add(Task::new("ok", || Ok(()))).unwrap();
        g.add(Task::new("bad", || Err("pow".into()))).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute_with(&mut db, &threaded(4)).unwrap_err();
        assert!(matches!(err, BuildError::TaskFailed { ref task, .. } if task == "bad"));
    }

    #[test]
    fn keep_going_roots_subset() {
        // Root subsets compose with keep-going: only the requested
        // subtree is considered, and its failure cone is still tracked.
        let ran = Arc::new(Mutex::new(Vec::new()));
        let g = failure_cone_graph(&ran);
        let mut db = StateDb::in_memory();
        let report = g
            .execute_roots_with(&mut db, &["top", "side"], &keep_going(2))
            .unwrap();
        assert_eq!(report.failed.len(), 1);
        let mut poisoned = report.poisoned.clone();
        poisoned.sort();
        assert_eq!(poisoned, vec!["mid", "top"]);
        assert_eq!(report.total(), 5);
    }

    #[test]
    fn conflicting_claims_rejected_naming_both_tasks() {
        for threads in [1, 8] {
            let ran = Arc::new(AtomicUsize::new(0));
            let mut g = Graph::new();
            let c = ran.clone();
            g.add(
                Task::new("img:a", move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .output("/tmp/shared-rootfs.img"),
            )
            .unwrap();
            let c = ran.clone();
            g.add(
                Task::new("img:b", move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .claim("/tmp/shared-rootfs.img"),
            )
            .unwrap();
            let mut db = StateDb::in_memory();
            let err = g.execute_with(&mut db, &threaded(threads)).unwrap_err();
            match err {
                BuildError::Conflict {
                    path,
                    first,
                    second,
                } => {
                    assert_eq!(path, "/tmp/shared-rootfs.img");
                    assert_eq!((first.as_str(), second.as_str()), ("img:a", "img:b"));
                }
                other => panic!("expected Conflict, got {other:?}"),
            }
            // The audit rejects the plan before anything executes.
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn shared_tree_claims_run_concurrently() {
        // Two unordered tasks claiming the same content-addressed store
        // tree is the expected parallel shape, not a conflict.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        for id in ["img:a", "img:b"] {
            let c = counter.clone();
            g.add(
                Task::new(id, move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .claim_tree("/work/objects"),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_with(&mut db, &threaded(4)).unwrap();
        assert_eq!(report.executed.len(), 2);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn exact_claim_under_foreign_tree_rejected() {
        for threads in [1, 8] {
            let mut g = Graph::new();
            g.add(Task::new("store", || Ok(())).claim_tree("/work/objects"))
                .unwrap();
            g.add(Task::new("rogue", || Ok(())).output("/work/objects/ab/x.blob"))
                .unwrap();
            let mut db = StateDb::in_memory();
            let err = g.execute_with(&mut db, &threaded(threads)).unwrap_err();
            match err {
                BuildError::Conflict {
                    path,
                    first,
                    second,
                } => {
                    assert_eq!(path, "/work/objects/ab/x.blob");
                    assert_eq!((first.as_str(), second.as_str()), ("rogue", "store"));
                }
                other => panic!("expected Conflict, got {other:?}"),
            }
        }
    }

    #[test]
    fn ordered_exact_claim_under_tree_allowed() {
        // A downstream task may write an exact path inside the store tree
        // when a dependency edge orders it after the tree claimant (e.g.
        // clean-up or verification passes).
        let mut g = Graph::new();
        g.add(Task::new("store", || Ok(())).claim_tree("/work/objects"))
            .unwrap();
        g.add(
            Task::new("verify", || Ok(()))
                .dep("store")
                .claim("/work/objects/index"),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_with(&mut db, &threaded(4)).unwrap();
        assert_eq!(report.executed, vec!["store", "verify"]);
    }

    #[test]
    fn dependency_ordered_claims_are_allowed() {
        // Writers of the same path are fine when a dependency path orders
        // them — e.g. a finalize task rewriting an image its (transitive)
        // dependency produced.
        let mut g = Graph::new();
        g.add(Task::new("base", || Ok(())).claim("/tmp/layered.img"))
            .unwrap();
        g.add(Task::new("mid", || Ok(())).dep("base")).unwrap();
        g.add(
            Task::new("finalize", || Ok(()))
                .dep("mid")
                .claim("/tmp/layered.img"),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_with(&mut db, &threaded(4)).unwrap();
        assert_eq!(report.executed, vec!["base", "mid", "finalize"]);
    }

    #[test]
    fn parallel_report_is_topo_ordered() {
        // Independent siblings finish in scheduler order, but the report
        // lists them canonically regardless of thread count.
        let mut expected = vec!["root".to_owned()];
        for threads in [1, 2, 8] {
            let mut g = Graph::new();
            g.add(Task::new("root", || Ok(()))).unwrap();
            for i in 0..24 {
                g.add(Task::new(format!("job{i:02}"), || Ok(())).dep("root"))
                    .unwrap();
            }
            let mut db = StateDb::in_memory();
            let report = g.execute_with(&mut db, &threaded(threads)).unwrap();
            if expected.len() == 1 {
                expected.extend((0..24).map(|i| format!("job{i:02}")));
            }
            assert_eq!(report.executed, expected, "threads={threads}");
        }
    }

    #[test]
    fn poisoned_cone_is_deduped_and_topo_ordered() {
        // Diamond under a failing task: `z` is reachable through both legs,
        // so a completion-order accumulator could list it twice. The
        // canonical report never does.
        for threads in [1, 8] {
            let mut g = Graph::new();
            g.add(Task::new("bad", || Err("boom".into()))).unwrap();
            g.add(Task::new("x", || Ok(())).dep("bad")).unwrap();
            g.add(Task::new("y", || Ok(())).dep("bad")).unwrap();
            g.add(Task::new("z", || Ok(())).dep("x").dep("y")).unwrap();
            let mut db = StateDb::in_memory();
            let report = g.execute_with(&mut db, &keep_going(threads)).unwrap();
            assert_eq!(report.poisoned, vec!["x", "y", "z"], "threads={threads}");
            assert_eq!(report.failed.len(), 1, "threads={threads}");
        }
    }

    #[test]
    fn interrupted_task_is_dirty_on_next_run() {
        let dir = std::env::temp_dir().join(format!("depgraph-interrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("state.db");
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let mut db = StateDb::open(&file).unwrap();
            counting_graph(&counter, b"v1").execute(&mut db).unwrap();
            db.flush().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        // Simulate a crash mid-`b`: the scheduler marks a task in-progress
        // and flushes right before running it; a crash never clears it.
        {
            let mut db = StateDb::open(&file).unwrap();
            db.mark_in_progress("b");
            db.flush().unwrap();
        }
        let mut db = StateDb::open(&file).unwrap();
        assert_eq!(db.interrupted(), ["b"]);
        let report = counting_graph(&counter, b"v1").execute(&mut db).unwrap();
        // `b` reruns (its fingerprint was discarded) and `c` follows as its
        // dependent; `a` is still clean.
        assert_eq!(report.executed, vec!["b", "c"]);
        assert_eq!(report.skipped, vec!["a"]);
        // The rerun cleared the mark durably (per-task flushes).
        let db = StateDb::open(&file).unwrap();
        assert!(db.interrupted().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-only check")]
    fn undeclared_write_trips_assertion_via_executor() {
        let mut g = Graph::new();
        g.add(Task::new("sneaky", || {
            crate::claims::assert_claimed(std::path::Path::new("/tmp/undeclared.bin"));
            Ok(())
        }))
        .unwrap();
        let mut db = StateDb::in_memory();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.execute(&mut db)));
        assert!(result.is_err(), "undeclared write must panic in debug");
    }

    #[test]
    fn report_helpers() {
        let r = BuildReport {
            executed: vec!["a".into()],
            skipped: vec!["b".into(), "c".into()],
            failed: vec![("d".into(), "boom".into())],
            poisoned: vec!["e".into()],
        };
        assert_eq!(r.total(), 5);
        assert!(r.ran("a"));
        assert!(!r.ran("b"));
        assert!(!r.success());
        assert!(BuildReport::default().success());
    }
}
