//! Build execution: up-to-date checking and (optionally parallel) running.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};

use crate::error::BuildError;
use crate::graph::Graph;
use crate::hash::{Fingerprint, Hasher128};
use crate::state::StateDb;

/// What a build did: which tasks executed and which were skipped as
/// up-to-date, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Tasks whose actions ran.
    pub executed: Vec<String>,
    /// Tasks skipped because they were up to date.
    pub skipped: Vec<String>,
}

impl BuildReport {
    /// Total tasks considered.
    pub fn total(&self) -> usize {
        self.executed.len() + self.skipped.len()
    }

    /// Whether the named task executed.
    pub fn ran(&self, id: &str) -> bool {
        self.executed.iter().any(|t| t == id)
    }
}

/// Computes each task's *cumulative* fingerprint: its own inputs combined
/// with the cumulative fingerprints of its dependencies, so an input change
/// anywhere below a task changes that task's fingerprint too.
fn cumulative_fingerprints(
    graph: &Graph,
    order: &[String],
) -> BTreeMap<String, Fingerprint> {
    let mut out: BTreeMap<String, Fingerprint> = BTreeMap::new();
    for id in order {
        let task = graph.get(id).expect("topo order returns known ids");
        let mut h = Hasher128::new();
        h.update_u64(task.fingerprint().0 as u64);
        h.update_u64((task.fingerprint().0 >> 64) as u64);
        let mut deps: Vec<&String> = task.deps().iter().collect();
        deps.sort();
        deps.dedup();
        for d in deps {
            let fp = out[d.as_str()];
            h.update_u64(fp.0 as u64);
            h.update_u64((fp.0 >> 64) as u64);
        }
        out.insert(id.clone(), h.finish());
    }
    out
}

impl Graph {
    /// Serially builds every task, skipping up-to-date ones.
    ///
    /// A task is up to date when its cumulative fingerprint matches the
    /// state database, all of its declared outputs exist, and none of its
    /// dependencies executed during this build.
    ///
    /// On success the state database records the new fingerprints (the
    /// caller decides when to [`StateDb::flush`]).
    ///
    /// # Errors
    ///
    /// Graph validation errors, or [`BuildError::TaskFailed`] from the first
    /// failing action.
    pub fn execute(&self, db: &mut StateDb) -> Result<BuildReport, BuildError> {
        let order = self.topo_order()?;
        self.execute_order(db, &order)
    }

    /// Serially builds only `roots` and their transitive dependencies.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute`].
    pub fn execute_roots(
        &self,
        db: &mut StateDb,
        roots: &[&str],
    ) -> Result<BuildReport, BuildError> {
        let order = self.subgraph_order(roots)?;
        self.execute_order(db, &order)
    }

    fn execute_order(
        &self,
        db: &mut StateDb,
        order: &[String],
    ) -> Result<BuildReport, BuildError> {
        let fps = cumulative_fingerprints(self, order);
        let mut report = BuildReport::default();
        let mut dirty: BTreeSet<&str> = BTreeSet::new();
        for id in order {
            let task = self.get(id).expect("known id");
            let fp = fps[id.as_str()];
            let dep_ran = task.deps().iter().any(|d| dirty.contains(d.as_str()));
            let up_to_date =
                !dep_ran && db.last(id) == Some(fp) && task.outputs_exist();
            if up_to_date {
                report.skipped.push(id.clone());
                continue;
            }
            task.run().map_err(|message| BuildError::TaskFailed {
                task: id.clone(),
                message,
            })?;
            db.record(id.clone(), fp);
            dirty.insert(id.as_str());
            report.executed.push(id.clone());
        }
        Ok(report)
    }

    /// Builds every task with up to `threads` workers running independent
    /// tasks concurrently. Semantics match [`Graph::execute`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::execute`]; when several tasks fail concurrently, the
    /// error with the lexicographically smallest task id is reported.
    pub fn execute_parallel(
        &self,
        db: &mut StateDb,
        threads: usize,
    ) -> Result<BuildReport, BuildError> {
        let order = self.topo_order()?;
        let fps = cumulative_fingerprints(self, &order);
        let threads = threads.max(1);

        struct Shared<'g> {
            graph: &'g Graph,
            state: Mutex<SchedState>,
            cv: Condvar,
        }
        #[derive(Default)]
        struct SchedState {
            remaining_deps: BTreeMap<String, usize>,
            ready: Vec<String>,
            dirty: BTreeSet<String>,
            executed: Vec<String>,
            skipped: Vec<String>,
            pending: usize,
            failures: BTreeMap<String, String>,
            new_fps: BTreeMap<String, Fingerprint>,
        }

        let mut sched = SchedState {
            pending: order.len(),
            ..SchedState::default()
        };
        for id in &order {
            let n = self.get(id).unwrap().deps().iter().collect::<BTreeSet<_>>().len();
            sched.remaining_deps.insert(id.clone(), n);
            if n == 0 {
                sched.ready.push(id.clone());
            }
        }
        sched.ready.sort();

        let shared = Shared {
            graph: self,
            state: Mutex::new(sched),
            cv: Condvar::new(),
        };
        let last_fps: BTreeMap<String, Option<Fingerprint>> =
            order.iter().map(|id| (id.clone(), db.last(id))).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    loop {
                        let id = {
                            let mut st = shared.state.lock().unwrap();
                            loop {
                                if st.pending == 0 || !st.failures.is_empty() {
                                    return;
                                }
                                if let Some(id) = st.ready.pop() {
                                    break id;
                                }
                                st = shared.cv.wait(st).unwrap();
                            }
                        };
                        let task = shared.graph.get(&id).unwrap();
                        let fp = fps[&id];
                        let (dep_ran, last) = {
                            let st = shared.state.lock().unwrap();
                            let dep_ran =
                                task.deps().iter().any(|d| st.dirty.contains(d.as_str()));
                            (dep_ran, last_fps[&id])
                        };
                        let up_to_date = !dep_ran && last == Some(fp) && task.outputs_exist();
                        let result = if up_to_date { Ok(false) } else { task.run().map(|_| true) };

                        let mut st = shared.state.lock().unwrap();
                        match result {
                            Ok(ran) => {
                                if ran {
                                    st.dirty.insert(id.clone());
                                    st.executed.push(id.clone());
                                    st.new_fps.insert(id.clone(), fp);
                                } else {
                                    st.skipped.push(id.clone());
                                }
                                st.pending -= 1;
                                // Unlock children.
                                for t in shared.graph.iter() {
                                    if t.deps().iter().any(|d| d == &id) {
                                        let rem = st.remaining_deps.get_mut(t.id()).unwrap();
                                        let uniq: BTreeSet<&String> = t.deps().iter().collect();
                                        let _ = uniq;
                                        *rem = rem.saturating_sub(
                                            t.deps().iter().filter(|d| *d == &id).collect::<BTreeSet<_>>().len(),
                                        );
                                        if *rem == 0 {
                                            st.ready.push(t.id().to_owned());
                                        }
                                    }
                                }
                                st.ready.sort();
                            }
                            Err(message) => {
                                st.failures.insert(id.clone(), message);
                            }
                        }
                        shared.cv.notify_all();
                    }
                });
            }
        });

        let st = shared.state.into_inner().unwrap();
        if let Some((task, message)) = st.failures.into_iter().next() {
            return Err(BuildError::TaskFailed { task, message });
        }
        for (id, fp) in st.new_fps {
            db.record(id, fp);
        }
        Ok(BuildReport {
            executed: st.executed,
            skipped: st.skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn counting_graph(counter: &Arc<AtomicUsize>, input_for_a: &[u8]) -> Graph {
        let mut g = Graph::new();
        let c = counter.clone();
        g.add(
            Task::new("a", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .input(input_for_a),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("b", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("a"),
        )
        .unwrap();
        let c = counter.clone();
        g.add(
            Task::new("c", move || {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .dep("b"),
        )
        .unwrap();
        g
    }

    #[test]
    fn first_build_runs_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        let report = g.execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn second_build_skips_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let g = counting_graph(&counter, b"v1");
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        let report = g.execute(&mut db).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.skipped.len(), 3);
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn input_change_cascades() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut db = StateDb::in_memory();
        counting_graph(&counter, b"v1").execute(&mut db).unwrap();
        // Rebuild with a changed leaf input: all three run again.
        let report = counting_graph(&counter, b"v2").execute(&mut db).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"]);
        assert_eq!(counter.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn failure_stops_build() {
        let mut g = Graph::new();
        g.add(Task::new("bad", || Err("kaboom".into()))).unwrap();
        g.add(Task::new("after", || Ok(())).dep("bad")).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute(&mut db).unwrap_err();
        assert_eq!(
            err,
            BuildError::TaskFailed {
                task: "bad".into(),
                message: "kaboom".into()
            }
        );
        // Nothing recorded for the failed task.
        assert_eq!(db.last("bad"), None);
    }

    #[test]
    fn missing_output_forces_rerun() {
        let dir = std::env::temp_dir().join(format!("depgraph-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("artifact");
        let counter = Arc::new(AtomicUsize::new(0));
        let c = counter.clone();
        let out2 = out.clone();
        let mut g = Graph::new();
        g.add(
            Task::new("t", move || {
                c.fetch_add(1, Ordering::SeqCst);
                std::fs::write(&out2, b"x").map_err(|e| e.to_string())
            })
            .output(&out),
        )
        .unwrap();
        let mut db = StateDb::in_memory();
        g.execute(&mut db).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        std::fs::remove_file(&out).unwrap();
        g.execute(&mut db).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn roots_limit_scope() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = counting_graph(&counter, b"v1");
        let c = counter.clone();
        g.add(Task::new("unrelated", move || {
            c.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }))
        .unwrap();
        let mut db = StateDb::in_memory();
        let report = g.execute_roots(&mut db, &["b"]).unwrap();
        assert_eq!(report.executed, vec!["a", "b"]);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn parallel_matches_serial() {
        for threads in [1, 2, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let g = counting_graph(&counter, b"v1");
            let mut db = StateDb::in_memory();
            let report = g.execute_parallel(&mut db, threads).unwrap();
            assert_eq!(report.executed.len(), 3, "threads={threads}");
            assert_eq!(counter.load(Ordering::SeqCst), 3);
            let report = g.execute_parallel(&mut db, threads).unwrap();
            assert!(report.executed.is_empty());
        }
    }

    #[test]
    fn parallel_wide_fanout() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut g = Graph::new();
        g.add(Task::new("root", || Ok(()))).unwrap();
        for i in 0..32 {
            let c = counter.clone();
            g.add(
                Task::new(format!("job{i:02}"), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                })
                .dep("root"),
            )
            .unwrap();
        }
        let mut db = StateDb::in_memory();
        let report = g.execute_parallel(&mut db, 8).unwrap();
        assert_eq!(report.executed.len(), 33);
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn parallel_failure_reported() {
        let mut g = Graph::new();
        g.add(Task::new("ok", || Ok(()))).unwrap();
        g.add(Task::new("bad", || Err("pow".into()))).unwrap();
        let mut db = StateDb::in_memory();
        let err = g.execute_parallel(&mut db, 4).unwrap_err();
        assert!(matches!(err, BuildError::TaskFailed { ref task, .. } if task == "bad"));
    }

    #[test]
    fn report_helpers() {
        let r = BuildReport {
            executed: vec!["a".into()],
            skipped: vec!["b".into(), "c".into()],
        };
        assert_eq!(r.total(), 3);
        assert!(r.ran("a"));
        assert!(!r.ran("b"));
    }
}
