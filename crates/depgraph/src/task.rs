//! Task definitions.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use crate::hash::{Fingerprint, Hasher128};

/// The action a task performs when it is out of date.
pub type Action = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

/// A unit of build work.
///
/// A task is identified by a unique id, depends on other tasks by id,
/// carries input bytes that are folded into its fingerprint, and may declare
/// output files whose absence forces a re-run even when inputs are
/// unchanged (mirroring `doit`'s `targets`).
///
/// ```rust
/// use marshal_depgraph::Task;
/// let t = Task::new("kernel", || Ok(()))
///     .dep("initramfs")
///     .input(b"config-fragment-v2")
///     .output("/tmp/kernel.bin");
/// assert_eq!(t.id(), "kernel");
/// ```
#[derive(Clone)]
pub struct Task {
    id: String,
    deps: Vec<String>,
    inputs: Vec<Vec<u8>>,
    outputs: Vec<PathBuf>,
    claims: Vec<PathBuf>,
    claim_trees: Vec<PathBuf>,
    retries: u32,
    remote_spec: Option<Vec<u8>>,
    action: Action,
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("deps", &self.deps)
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl Task {
    /// Creates a task with the given id and action.
    pub fn new<F>(id: impl Into<String>, action: F) -> Task
    where
        F: Fn() -> Result<(), String> + Send + Sync + 'static,
    {
        Task {
            id: id.into(),
            deps: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            claims: Vec::new(),
            claim_trees: Vec::new(),
            retries: 0,
            remote_spec: None,
            action: Arc::new(action),
        }
    }

    /// Adds a dependency edge: this task runs after `dep`.
    pub fn dep(mut self, dep: impl Into<String>) -> Task {
        self.deps.push(dep.into());
        self
    }

    /// Folds input bytes into the task fingerprint.
    pub fn input(mut self, bytes: &[u8]) -> Task {
        self.inputs.push(bytes.to_vec());
        self
    }

    /// Declares an output file; if missing at build time the task re-runs.
    /// Outputs are also write claims (see [`Task::claim`]).
    pub fn output(mut self, path: impl Into<PathBuf>) -> Task {
        self.outputs.push(path.into());
        self
    }

    /// Declares an additional write claim: a path this task's action writes
    /// that is not a tracked output (checksum sidecars, shared caches).
    ///
    /// The scheduler rejects a graph in which two tasks claim the same path
    /// unless one depends (transitively) on the other, so claims are what
    /// make parallel execution safe. In debug builds, writes routed through
    /// [`crate::claims::assert_claimed`] additionally verify at run time
    /// that the written path was declared. Like the retry budget, claims
    /// are execution metadata and do not change the task fingerprint.
    pub fn claim(mut self, path: impl Into<PathBuf>) -> Task {
        self.claims.push(path.into());
        self
    }

    /// Declares a *shared* write claim over a directory tree: this task may
    /// write any path under `root`, and other tasks claiming the same tree
    /// may do so concurrently.
    ///
    /// This is the claim shape for content-addressed stores, where the
    /// exact paths are derived from content at run time and concurrent
    /// writes of the same path are idempotent (write-once blobs landed via
    /// temp file + atomic rename). The scheduler therefore allows any
    /// number of unordered tree claimants of the same root, but still
    /// rejects an unordered *exact* claim under another task's tree — an
    /// exclusive writer racing the shared pool is a real conflict. Like
    /// [`Task::claim`], tree claims are execution metadata and do not
    /// change the task fingerprint.
    pub fn claim_tree(mut self, root: impl Into<PathBuf>) -> Task {
        self.claim_trees.push(root.into());
        self
    }

    /// Marks the task as retryable: on failure its action is re-run up to
    /// `n` additional times before the failure is reported. Retries are
    /// deterministic — a fixed attempt budget, no wall-clock backoff — so
    /// a build with a persistently failing task behaves identically on
    /// every run.
    pub fn retries(mut self, n: u32) -> Task {
        self.retries = n;
        self
    }

    /// The retry budget set with [`Task::retries`] (0 = fail on first error).
    pub fn retry_budget(&self) -> u32 {
        self.retries
    }

    /// Attaches an opaque serialized description of this task so runners
    /// that cannot invoke the in-process action (remote runners — closures
    /// do not cross the wire) can execute an equivalent build elsewhere.
    ///
    /// The payload format is a contract between whoever builds the graph
    /// and whoever configures the remote runner; the graph engine never
    /// interprets it. Like claims and retries, the spec is execution
    /// metadata and does not change the task fingerprint.
    pub fn remote_spec(mut self, bytes: impl Into<Vec<u8>>) -> Task {
        self.remote_spec = Some(bytes.into());
        self
    }

    /// The serialized task description set with [`Task::remote_spec`], if
    /// any. Runners that need one decline tasks without it.
    pub fn remote_payload(&self) -> Option<&[u8]> {
        self.remote_spec.as_deref()
    }

    /// The unique task id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Dependency ids.
    pub fn deps(&self) -> &[String] {
        &self.deps
    }

    /// Declared output files.
    pub fn outputs(&self) -> &[PathBuf] {
        &self.outputs
    }

    /// Every path this task declares it writes: outputs plus extra claims.
    pub fn claims(&self) -> impl Iterator<Item = &PathBuf> {
        self.outputs.iter().chain(self.claims.iter())
    }

    /// Shared directory-tree claims declared with [`Task::claim_tree`].
    pub fn claim_trees(&self) -> &[PathBuf] {
        &self.claim_trees
    }

    /// Runs the task's action.
    ///
    /// # Errors
    ///
    /// Propagates the action's error message.
    pub fn run(&self) -> Result<(), String> {
        (self.action)()
    }

    /// The fingerprint of this task's own inputs (not including deps).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update_field(self.id.as_bytes());
        for d in &self.deps {
            h.update_field(d.as_bytes());
        }
        for i in &self.inputs {
            h.update_field(i);
        }
        for o in &self.outputs {
            h.update_field(o.to_string_lossy().as_bytes());
        }
        h.finish()
    }

    /// Whether every declared output currently exists on disk.
    ///
    /// Tasks with no declared outputs vacuously report `true`.
    pub fn outputs_exist(&self) -> bool {
        self.outputs.iter().all(|p| p.exists())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_changes_with_inputs() {
        let a = Task::new("t", || Ok(())).input(b"one");
        let b = Task::new("t", || Ok(())).input(b"two");
        let c = Task::new("t", || Ok(())).input(b"one");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fingerprint_includes_identity_and_deps() {
        let a = Task::new("a", || Ok(()));
        let b = Task::new("b", || Ok(()));
        assert_ne!(a.fingerprint(), b.fingerprint());
        let a2 = Task::new("a", || Ok(())).dep("x");
        assert_ne!(a.fingerprint(), a2.fingerprint());
    }

    #[test]
    fn missing_outputs_detected() {
        let t = Task::new("t", || Ok(())).output("/definitely/not/here");
        assert!(!t.outputs_exist());
        let t = Task::new("t", || Ok(()));
        assert!(t.outputs_exist());
    }

    #[test]
    fn action_errors_propagate() {
        let t = Task::new("t", || Err("nope".to_owned()));
        assert_eq!(t.run(), Err("nope".to_owned()));
    }

    #[test]
    fn retry_budget_defaults_to_zero() {
        assert_eq!(Task::new("t", || Ok(())).retry_budget(), 0);
        assert_eq!(Task::new("t", || Ok(())).retries(3).retry_budget(), 3);
    }

    #[test]
    fn claims_cover_outputs_and_extras() {
        let t = Task::new("t", || Ok(()))
            .output("/tmp/a.bin")
            .claim("/tmp/a.bin.fp");
        let claimed: Vec<_> = t.claims().map(|p| p.display().to_string()).collect();
        assert_eq!(claimed, vec!["/tmp/a.bin", "/tmp/a.bin.fp"]);
    }

    #[test]
    fn claims_do_not_change_fingerprint() {
        // Claims are execution metadata, like retries: declaring them must
        // not invalidate previously built state.
        let a = Task::new("t", || Ok(())).input(b"x");
        let b = Task::new("t", || Ok(())).input(b"x").claim("/tmp/side.fp");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = Task::new("t", || Ok(()))
            .input(b"x")
            .claim_tree("/tmp/objects");
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn claim_trees_accessible() {
        let t = Task::new("t", || Ok(()))
            .claim_tree("/work/objects")
            .claim_tree("/work/cache");
        let trees: Vec<_> = t
            .claim_trees()
            .iter()
            .map(|p| p.display().to_string())
            .collect();
        assert_eq!(trees, vec!["/work/objects", "/work/cache"]);
        // Tree claims are not exact claims.
        assert_eq!(t.claims().count(), 0);
    }

    #[test]
    fn remote_spec_does_not_change_fingerprint() {
        // The remote spec describes *where* a task may run, not *what* it
        // builds: attaching one must not invalidate previously built state.
        let a = Task::new("t", || Ok(())).input(b"x");
        let b = Task::new("t", || Ok(()))
            .input(b"x")
            .remote_spec(b"spec-v1".to_vec());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(b.remote_payload(), Some(&b"spec-v1"[..]));
        assert_eq!(a.remote_payload(), None);
    }

    #[test]
    fn retry_budget_does_not_change_fingerprint() {
        // Retry policy is execution behaviour, not content: changing it must
        // not invalidate previously built state.
        let a = Task::new("t", || Ok(())).input(b"x");
        let b = Task::new("t", || Ok(())).input(b"x").retries(2);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
