//! The persistent build-state database.
//!
//! Maps task id → the cumulative fingerprint the task last executed with.
//! Persisted as a sorted, line-oriented text file (`id\thash`), so the file
//! itself is deterministic and diff-friendly.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::error::BuildError;
use crate::hash::Fingerprint;

/// Build-state database: last-built fingerprints per task.
///
/// ```rust
/// use marshal_depgraph::{Fingerprint, StateDb};
/// let mut db = StateDb::in_memory();
/// db.record("kernel", Fingerprint::of(b"v1"));
/// assert_eq!(db.last("kernel"), Some(Fingerprint::of(b"v1")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    entries: BTreeMap<String, Fingerprint>,
    path: Option<PathBuf>,
}

impl StateDb {
    /// Creates an empty database that is never written to disk.
    pub fn in_memory() -> StateDb {
        StateDb::default()
    }

    /// Opens (or creates) a database backed by the file at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] if the file exists but cannot be read
    /// or parsed.
    pub fn open(path: impl Into<PathBuf>) -> Result<StateDb, BuildError> {
        let path = path.into();
        let mut db = StateDb {
            entries: BTreeMap::new(),
            path: Some(path.clone()),
        };
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| BuildError::State(format!("read {}: {e}", path.display())))?;
            for (no, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                let (id, hash) = line.split_once('\t').ok_or_else(|| {
                    BuildError::State(format!("{}:{}: malformed line", path.display(), no + 1))
                })?;
                let fp = hash.parse::<Fingerprint>().map_err(|e| {
                    BuildError::State(format!("{}:{}: bad hash: {e}", path.display(), no + 1))
                })?;
                db.entries.insert(id.to_owned(), fp);
            }
        }
        Ok(db)
    }

    /// The fingerprint `task` last executed with, if any.
    pub fn last(&self, task: &str) -> Option<Fingerprint> {
        self.entries.get(task).copied()
    }

    /// Records that `task` executed with `fingerprint`.
    pub fn record(&mut self, task: impl Into<String>, fingerprint: Fingerprint) {
        self.entries.insert(task.into(), fingerprint);
    }

    /// Forgets a task (forcing its next build), returning whether it existed.
    pub fn forget(&mut self, task: &str) -> bool {
        self.entries.remove(task).is_some()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All recorded task ids, sorted.
    pub fn task_ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the database to its backing file (no-op for in-memory).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] on I/O failure.
    pub fn flush(&self) -> Result<(), BuildError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| BuildError::State(format!("mkdir {}: {e}", dir.display())))?;
        }
        let mut out = String::new();
        for (id, fp) in &self.entries {
            out.push_str(id);
            out.push('\t');
            out.push_str(&fp.to_string());
            out.push('\n');
        }
        std::fs::write(path, out)
            .map_err(|e| BuildError::State(format!("write {}: {e}", path.display())))
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-depgraph-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn persist_roundtrip() {
        let dir = tmpdir("roundtrip");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("a", Fingerprint::of(b"1"));
        db.record("b", Fingerprint::of(b"2"));
        db.flush().unwrap();

        let db2 = StateDb::open(&file).unwrap();
        assert_eq!(db2.last("a"), Some(Fingerprint::of(b"1")));
        assert_eq!(db2.last("b"), Some(Fingerprint::of(b"2")));
        assert_eq!(db2.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_file_rejected() {
        let dir = tmpdir("malformed");
        let file = dir.join("state.db");
        std::fs::write(&file, "no-tab-here\n").unwrap();
        assert!(matches!(StateDb::open(&file), Err(BuildError::State(_))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn forget_and_clear() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        assert!(db.forget("a"));
        assert!(!db.forget("a"));
        db.record("b", Fingerprint::of(b"2"));
        db.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn in_memory_flush_is_noop() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        db.flush().unwrap();
        assert!(db.path().is_none());
    }
}
