//! The persistent build-state database.
//!
//! Maps task id → the cumulative fingerprint the task last executed with.
//! Persisted as a sorted, line-oriented text file (`id\thash`), so the file
//! itself is deterministic and diff-friendly.
//!
//! # Crash safety
//!
//! [`StateDb::flush`] writes atomically (temp file + rename), so a crash
//! mid-flush leaves either the old file or the new file, never a torn one.
//! The file carries a `#fm-state` header recording the entry count and a
//! content checksum; [`StateDb::open`] verifies both, so truncation or
//! bit-rot is detected even when each surviving line parses cleanly. A
//! corrupt file is quarantined to `<path>.corrupt` and the build proceeds
//! with a cold cache (everything rebuilds) instead of failing — losing
//! incrementality is recoverable, acting on corrupt state is not.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::error::BuildError;
use crate::hash::Fingerprint;

/// Magic prefix of the integrity header line.
const HEADER_PREFIX: &str = "#fm-state v1 ";

/// The hash-field token marking a task as in progress rather than built.
const IN_PROGRESS_TOKEN: &str = "!in-progress";

/// Build-state database: last-built fingerprints per task.
///
/// ```rust
/// use marshal_depgraph::{Fingerprint, StateDb};
/// let mut db = StateDb::in_memory();
/// db.record("kernel", Fingerprint::of(b"v1"));
/// assert_eq!(db.last("kernel"), Some(Fingerprint::of(b"v1")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    entries: BTreeMap<String, Fingerprint>,
    /// Tasks currently (or, in a crashed run, permanently) mid-execution.
    /// Persisted so an interrupted build is detectable on the next open.
    in_progress: BTreeSet<String>,
    /// Tasks found marked in-progress at open time: the previous run was
    /// interrupted mid-task, so their recorded state was discarded.
    interrupted: Vec<String>,
    path: Option<PathBuf>,
    recovery: Option<String>,
}

impl StateDb {
    /// Creates an empty database that is never written to disk.
    pub fn in_memory() -> StateDb {
        StateDb::default()
    }

    /// Opens (or creates) a database backed by the file at `path`.
    ///
    /// A corrupt state file (truncated, bit-flipped, malformed, or holding
    /// duplicate task ids) is quarantined to `<path>.corrupt` and an empty
    /// database is returned; [`StateDb::recovery`] describes what happened
    /// so callers can warn. Corruption therefore costs a full rebuild, not
    /// a failed one.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] only for real I/O failures: the file
    /// exists but cannot be read, or the quarantine rename fails.
    pub fn open(path: impl Into<PathBuf>) -> Result<StateDb, BuildError> {
        let path = path.into();
        let mut db = StateDb {
            path: Some(path.clone()),
            ..StateDb::default()
        };
        if !path.exists() {
            return Ok(db);
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| BuildError::State(format!("read {}: {e}", path.display())))?;
        // Invalid UTF-8 is corruption (bit-rot), not an I/O failure.
        let parsed = match String::from_utf8(bytes) {
            Ok(text) => parse_state_file(&text, &path),
            Err(_) => Err(BuildError::State(format!(
                "{}: not valid UTF-8",
                path.display()
            ))),
        };
        match parsed {
            Ok((entries, in_progress)) => {
                db.entries = entries;
                // A task marked in-progress was mid-write when the previous
                // run died: whatever fingerprint it recorded (and whatever
                // bytes its outputs hold) cannot be trusted, so drop the
                // entry and let the task rebuild.
                for id in in_progress {
                    db.entries.remove(&id);
                    db.interrupted.push(id);
                }
            }
            Err(BuildError::State(why)) => {
                let quarantine = path.with_extension("db.corrupt");
                std::fs::rename(&path, &quarantine).map_err(|e| {
                    BuildError::State(format!(
                        "quarantine {} -> {}: {e}",
                        path.display(),
                        quarantine.display()
                    ))
                })?;
                db.recovery = Some(format!(
                    "state database corrupt ({why}); quarantined to {} and starting \
                     with a cold cache — everything will rebuild",
                    quarantine.display()
                ));
            }
            Err(other) => return Err(other),
        }
        Ok(db)
    }

    /// Parses a state file, failing on any inconsistency. Exposed for
    /// tests that need to distinguish "corrupt" from "recovered".
    ///
    /// # Errors
    ///
    /// [`BuildError::State`] describing the first malformed line, bad
    /// hash, duplicate id, or integrity-header mismatch.
    pub fn parse_strict(
        text: &str,
        path: &Path,
    ) -> Result<BTreeMap<String, Fingerprint>, BuildError> {
        parse_state_file(text, path).map(|(entries, _)| entries)
    }

    /// If [`StateDb::open`] recovered from a corrupt file, the
    /// human-readable account of what it did; `None` for a clean open.
    pub fn recovery(&self) -> Option<&str> {
        self.recovery.as_deref()
    }

    /// The fingerprint `task` last executed with, if any.
    pub fn last(&self, task: &str) -> Option<Fingerprint> {
        self.entries.get(task).copied()
    }

    /// Records that `task` executed with `fingerprint`.
    pub fn record(&mut self, task: impl Into<String>, fingerprint: Fingerprint) {
        self.entries.insert(task.into(), fingerprint);
    }

    /// Marks `task` as mid-execution. Flushed to disk before the task's
    /// action runs, so a crash mid-task leaves a durable record and the
    /// next run rebuilds the task instead of trusting possibly-torn
    /// outputs.
    pub fn mark_in_progress(&mut self, task: impl Into<String>) {
        self.in_progress.insert(task.into());
    }

    /// Clears an in-progress mark (the task finished or failed cleanly),
    /// returning whether it was set.
    pub fn clear_in_progress(&mut self, task: &str) -> bool {
        self.in_progress.remove(task)
    }

    /// Records a completed task: stores its fingerprint and clears its
    /// in-progress mark in one step.
    pub fn finish(&mut self, task: impl Into<String>, fingerprint: Fingerprint) {
        let task = task.into();
        self.in_progress.remove(&task);
        self.entries.insert(task, fingerprint);
    }

    /// Tasks currently marked in-progress, sorted.
    pub fn in_progress(&self) -> Vec<&str> {
        self.in_progress.iter().map(String::as_str).collect()
    }

    /// Tasks that were marked in-progress when this database was opened —
    /// evidence of an interrupted previous run. Their recorded fingerprints
    /// were discarded, so they will rebuild.
    pub fn interrupted(&self) -> &[String] {
        &self.interrupted
    }

    /// Forgets a task (forcing its next build), returning whether it existed.
    pub fn forget(&mut self, task: &str) -> bool {
        self.entries.remove(task).is_some()
    }

    /// Removes every entry and in-progress mark.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.in_progress.clear();
    }

    /// All recorded task ids, sorted.
    pub fn task_ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the database to its backing file (no-op for in-memory).
    ///
    /// The write is atomic: content goes to `<path>.tmp` first and is
    /// renamed into place, so a crash never leaves a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] on I/O failure.
    pub fn flush(&self) -> Result<(), BuildError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| BuildError::State(format!("mkdir {}: {e}", dir.display())))?;
        }
        let mut body = String::new();
        for (id, fp) in &self.entries {
            body.push_str(id);
            body.push('\t');
            body.push_str(&fp.to_string());
            body.push('\n');
        }
        for id in &self.in_progress {
            body.push_str(id);
            body.push('\t');
            body.push_str(IN_PROGRESS_TOKEN);
            body.push('\n');
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{HEADER_PREFIX}n={} sum={}",
            self.entries.len() + self.in_progress.len(),
            Fingerprint::of(body.as_bytes())
        );
        out.push_str(&body);
        let tmp = path.with_extension("db.tmp");
        std::fs::write(&tmp, out)
            .map_err(|e| BuildError::State(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            BuildError::State(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Shortens a line for inclusion in an error message.
fn excerpt(line: &str) -> String {
    const MAX: usize = 60;
    if line.chars().count() <= MAX {
        format!("{line:?}")
    } else {
        let cut: String = line.chars().take(MAX).collect();
        format!("{cut:?}…")
    }
}

type ParsedState = (BTreeMap<String, Fingerprint>, BTreeSet<String>);

fn parse_state_file(text: &str, path: &Path) -> Result<ParsedState, BuildError> {
    let mut entries = BTreeMap::new();
    let mut in_progress = BTreeSet::new();
    let mut header: Option<(usize, String)> = None;
    let mut body = String::new();
    // `flush` always writes at least the header line, so an existing empty
    // file can only be the stub of a torn write.
    if text.trim().is_empty() {
        return Err(BuildError::State(format!(
            "{}: empty state file (likely truncated)",
            path.display()
        )));
    }
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(HEADER_PREFIX) {
            // "n=<count> sum=<hash>"
            let mut count = None;
            let mut sum = None;
            for field in rest.split_whitespace() {
                if let Some(v) = field.strip_prefix("n=") {
                    count = v.parse::<usize>().ok();
                } else if let Some(v) = field.strip_prefix("sum=") {
                    sum = Some(v.to_owned());
                }
            }
            match (count, sum) {
                (Some(n), Some(s)) => header = Some((n, s)),
                _ => {
                    return Err(BuildError::State(format!(
                        "{}:{}: malformed integrity header: {}",
                        path.display(),
                        no + 1,
                        excerpt(line)
                    )))
                }
            }
            continue;
        }
        if line.starts_with('#') {
            // A comment line that is not a valid header can only come from
            // damage (e.g. a header line truncated mid-write): rejecting it
            // is what makes truncation detectable.
            return Err(BuildError::State(format!(
                "{}:{}: unrecognised header line: {}",
                path.display(),
                no + 1,
                excerpt(line)
            )));
        }
        let (id, hash) = line.split_once('\t').ok_or_else(|| {
            BuildError::State(format!(
                "{}:{}: malformed line (expected id\\thash): {}",
                path.display(),
                no + 1,
                excerpt(line)
            ))
        })?;
        let duplicate = if hash == IN_PROGRESS_TOKEN {
            // A task may carry both a (stale) fingerprint line and an
            // in-progress mark — the run died after recording one build
            // and while re-running the task — but never two marks.
            !in_progress.insert(id.to_owned())
        } else {
            let fp = hash.parse::<Fingerprint>().map_err(|e| {
                BuildError::State(format!(
                    "{}:{}: bad hash ({e}): {}",
                    path.display(),
                    no + 1,
                    excerpt(line)
                ))
            })?;
            entries.insert(id.to_owned(), fp).is_some()
        };
        if duplicate {
            return Err(BuildError::State(format!(
                "{}:{}: duplicate task id: {}",
                path.display(),
                no + 1,
                excerpt(line)
            )));
        }
        body.push_str(line);
        body.push('\n');
    }
    if let Some((count, sum)) = header {
        let found = entries.len() + in_progress.len();
        if count != found {
            return Err(BuildError::State(format!(
                "{}: truncated: header records {count} entries, found {found}",
                path.display()
            )));
        }
        let actual = Fingerprint::of(body.as_bytes()).to_string();
        if actual != sum {
            return Err(BuildError::State(format!(
                "{}: checksum mismatch: header says {sum}, content hashes to {actual}",
                path.display()
            )));
        }
    }
    Ok((entries, in_progress))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "marshal-depgraph-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn persist_roundtrip() {
        let dir = tmpdir("roundtrip");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("a", Fingerprint::of(b"1"));
        db.record("b", Fingerprint::of(b"2"));
        db.flush().unwrap();

        let db2 = StateDb::open(&file).unwrap();
        assert!(db2.recovery().is_none());
        assert_eq!(db2.last("a"), Some(Fingerprint::of(b"1")));
        assert_eq!(db2.last("b"), Some(Fingerprint::of(b"2")));
        assert_eq!(db2.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn headerless_legacy_file_still_loads() {
        let dir = tmpdir("legacy");
        let file = dir.join("state.db");
        let fp = Fingerprint::of(b"1");
        std::fs::write(&file, format!("a\t{fp}\n")).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.recovery().is_none());
        assert_eq!(db.last("a"), Some(fp));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_file_quarantined_and_recovered() {
        let dir = tmpdir("malformed");
        let file = dir.join("state.db");
        std::fs::write(&file, "no-tab-here\n").unwrap();
        let db = StateDb::open(&file).unwrap();
        // Recovery: empty db, note set, original quarantined.
        assert!(db.is_empty());
        let note = db.recovery().expect("recovery note");
        assert!(note.contains("malformed line"), "{note}");
        assert!(
            note.contains("no-tab-here"),
            "error carries the offending line: {note}"
        );
        assert!(!file.exists());
        assert!(dir.join("state.db.corrupt").exists());
        // A fresh open after quarantine is clean.
        let db = StateDb::open(&file).unwrap();
        assert!(db.recovery().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn truncated_file_detected() {
        let dir = tmpdir("truncated");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        for i in 0..10 {
            db.record(format!("task{i}"), Fingerprint::of(&[i]));
        }
        db.flush().unwrap();
        // Drop the last two lines, as a torn write would.
        let text = std::fs::read_to_string(&file).unwrap();
        let kept: Vec<&str> = text.lines().take(9).collect();
        std::fs::write(&file, kept.join("\n")).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.is_empty());
        assert!(
            db.recovery().unwrap().contains("truncated"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bitflip_detected_by_checksum() {
        let dir = tmpdir("bitflip");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("aa", Fingerprint::of(b"1"));
        db.record("bb", Fingerprint::of(b"2"));
        db.flush().unwrap();
        // Corrupt one character of a task id: every line still parses, so
        // only the checksum catches it.
        let text = std::fs::read_to_string(&file).unwrap();
        let flipped = text.replace("\nbb\t", "\nbz\t");
        assert_ne!(text, flipped);
        std::fs::write(&file, flipped).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.is_empty());
        assert!(
            db.recovery().unwrap().contains("checksum"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn duplicate_ids_rejected() {
        let dir = tmpdir("dup");
        let file = dir.join("state.db");
        let fp = Fingerprint::of(b"1");
        let text = format!("a\t{fp}\na\t{fp}\n");
        let err = StateDb::parse_strict(&text, &file).unwrap_err();
        assert!(matches!(err, BuildError::State(ref m) if m.contains("duplicate task id")));
        // And open() recovers from it.
        std::fs::write(&file, text).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(
            db.recovery().unwrap().contains("duplicate"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bad_hash_error_carries_line_excerpt() {
        let file = PathBuf::from("state.db");
        let err = StateDb::parse_strict("task\tnot-a-hash\n", &file).unwrap_err();
        let BuildError::State(msg) = err else {
            panic!("wrong variant")
        };
        assert!(msg.contains("bad hash"), "{msg}");
        assert!(msg.contains("not-a-hash"), "{msg}");
        // Long lines are truncated, not dumped wholesale.
        let long = format!("task\t{}\n", "x".repeat(500));
        let BuildError::State(msg) = StateDb::parse_strict(&long, &file).unwrap_err() else {
            panic!("wrong variant")
        };
        assert!(msg.len() < 200, "excerpt should be bounded: {}", msg.len());
        assert!(msg.contains('…'), "{msg}");
    }

    #[test]
    fn flush_leaves_no_temp_file() {
        let dir = tmpdir("atomic");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("a", Fingerprint::of(b"1"));
        db.flush().unwrap();
        assert!(file.exists());
        assert!(!dir.join("state.db.tmp").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn in_progress_roundtrip_and_interruption() {
        let dir = tmpdir("inprogress");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("done", Fingerprint::of(b"1"));
        // Simulate the scheduler's pre-run mark on a task that also has a
        // stale fingerprint from an earlier build.
        db.record("torn", Fingerprint::of(b"old"));
        db.mark_in_progress("torn");
        db.mark_in_progress("fresh");
        db.flush().unwrap();

        // "Crash": the marks were never cleared. The next open treats the
        // marked tasks as dirty — fingerprints dropped — and reports them.
        let db2 = StateDb::open(&file).unwrap();
        assert!(db2.recovery().is_none(), "interruption is not corruption");
        assert_eq!(db2.last("done"), Some(Fingerprint::of(b"1")));
        assert_eq!(db2.last("torn"), None, "in-progress entries are dirty");
        assert_eq!(db2.interrupted(), ["fresh", "torn"]);
        assert!(db2.in_progress().is_empty(), "marks do not carry over");

        // A clean finish clears the mark and records the fingerprint.
        let mut db = StateDb::open(&file).unwrap();
        db.mark_in_progress("torn");
        db.finish("torn", Fingerprint::of(b"new"));
        db.flush().unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.interrupted().is_empty());
        assert_eq!(db.last("torn"), Some(Fingerprint::of(b"new")));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn duplicate_in_progress_marks_rejected() {
        let file = PathBuf::from("state.db");
        let text = "a\t!in-progress\na\t!in-progress\n";
        let err = StateDb::parse_strict(text, &file).unwrap_err();
        assert!(matches!(err, BuildError::State(ref m) if m.contains("duplicate")));
    }

    #[test]
    fn clear_in_progress_reports_presence() {
        let mut db = StateDb::in_memory();
        db.mark_in_progress("t");
        assert_eq!(db.in_progress(), ["t"]);
        assert!(db.clear_in_progress("t"));
        assert!(!db.clear_in_progress("t"));
    }

    #[test]
    fn forget_and_clear() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        assert!(db.forget("a"));
        assert!(!db.forget("a"));
        db.record("b", Fingerprint::of(b"2"));
        db.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn in_memory_flush_is_noop() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        db.flush().unwrap();
        assert!(db.path().is_none());
    }
}
