//! The persistent build-state database.
//!
//! Maps task id → the cumulative fingerprint the task last executed with.
//! Persisted as a sorted, line-oriented text file (`id\thash`), so the file
//! itself is deterministic and diff-friendly.
//!
//! # Crash safety
//!
//! [`StateDb::flush`] writes atomically (temp file + rename), so a crash
//! mid-flush leaves either the old file or the new file, never a torn one.
//! The file carries a `#fm-state` header recording the entry count and a
//! content checksum; [`StateDb::open`] verifies both, so truncation or
//! bit-rot is detected even when each surviving line parses cleanly. A
//! corrupt file is quarantined to `<path>.corrupt` and the build proceeds
//! with a cold cache (everything rebuilds) instead of failing — losing
//! incrementality is recoverable, acting on corrupt state is not.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::error::BuildError;
use crate::hash::Fingerprint;

/// Magic prefix of the integrity header line.
const HEADER_PREFIX: &str = "#fm-state v1 ";

/// Build-state database: last-built fingerprints per task.
///
/// ```rust
/// use marshal_depgraph::{Fingerprint, StateDb};
/// let mut db = StateDb::in_memory();
/// db.record("kernel", Fingerprint::of(b"v1"));
/// assert_eq!(db.last("kernel"), Some(Fingerprint::of(b"v1")));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StateDb {
    entries: BTreeMap<String, Fingerprint>,
    path: Option<PathBuf>,
    recovery: Option<String>,
}

impl StateDb {
    /// Creates an empty database that is never written to disk.
    pub fn in_memory() -> StateDb {
        StateDb::default()
    }

    /// Opens (or creates) a database backed by the file at `path`.
    ///
    /// A corrupt state file (truncated, bit-flipped, malformed, or holding
    /// duplicate task ids) is quarantined to `<path>.corrupt` and an empty
    /// database is returned; [`StateDb::recovery`] describes what happened
    /// so callers can warn. Corruption therefore costs a full rebuild, not
    /// a failed one.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] only for real I/O failures: the file
    /// exists but cannot be read, or the quarantine rename fails.
    pub fn open(path: impl Into<PathBuf>) -> Result<StateDb, BuildError> {
        let path = path.into();
        let mut db = StateDb {
            entries: BTreeMap::new(),
            path: Some(path.clone()),
            recovery: None,
        };
        if !path.exists() {
            return Ok(db);
        }
        let bytes = std::fs::read(&path)
            .map_err(|e| BuildError::State(format!("read {}: {e}", path.display())))?;
        // Invalid UTF-8 is corruption (bit-rot), not an I/O failure.
        let parsed = match String::from_utf8(bytes) {
            Ok(text) => parse_state_file(&text, &path),
            Err(_) => Err(BuildError::State(format!(
                "{}: not valid UTF-8",
                path.display()
            ))),
        };
        match parsed {
            Ok(entries) => db.entries = entries,
            Err(BuildError::State(why)) => {
                let quarantine = path.with_extension("db.corrupt");
                std::fs::rename(&path, &quarantine).map_err(|e| {
                    BuildError::State(format!(
                        "quarantine {} -> {}: {e}",
                        path.display(),
                        quarantine.display()
                    ))
                })?;
                db.recovery = Some(format!(
                    "state database corrupt ({why}); quarantined to {} and starting \
                     with a cold cache — everything will rebuild",
                    quarantine.display()
                ));
            }
            Err(other) => return Err(other),
        }
        Ok(db)
    }

    /// Parses a state file, failing on any inconsistency. Exposed for
    /// tests that need to distinguish "corrupt" from "recovered".
    ///
    /// # Errors
    ///
    /// [`BuildError::State`] describing the first malformed line, bad
    /// hash, duplicate id, or integrity-header mismatch.
    pub fn parse_strict(
        text: &str,
        path: &Path,
    ) -> Result<BTreeMap<String, Fingerprint>, BuildError> {
        parse_state_file(text, path)
    }

    /// If [`StateDb::open`] recovered from a corrupt file, the
    /// human-readable account of what it did; `None` for a clean open.
    pub fn recovery(&self) -> Option<&str> {
        self.recovery.as_deref()
    }

    /// The fingerprint `task` last executed with, if any.
    pub fn last(&self, task: &str) -> Option<Fingerprint> {
        self.entries.get(task).copied()
    }

    /// Records that `task` executed with `fingerprint`.
    pub fn record(&mut self, task: impl Into<String>, fingerprint: Fingerprint) {
        self.entries.insert(task.into(), fingerprint);
    }

    /// Forgets a task (forcing its next build), returning whether it existed.
    pub fn forget(&mut self, task: &str) -> bool {
        self.entries.remove(task).is_some()
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// All recorded task ids, sorted.
    pub fn task_ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the database to its backing file (no-op for in-memory).
    ///
    /// The write is atomic: content goes to `<path>.tmp` first and is
    /// renamed into place, so a crash never leaves a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::State`] on I/O failure.
    pub fn flush(&self) -> Result<(), BuildError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| BuildError::State(format!("mkdir {}: {e}", dir.display())))?;
        }
        let mut body = String::new();
        for (id, fp) in &self.entries {
            body.push_str(id);
            body.push('\t');
            body.push_str(&fp.to_string());
            body.push('\n');
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{HEADER_PREFIX}n={} sum={}",
            self.entries.len(),
            Fingerprint::of(body.as_bytes())
        );
        out.push_str(&body);
        let tmp = path.with_extension("db.tmp");
        std::fs::write(&tmp, out)
            .map_err(|e| BuildError::State(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            BuildError::State(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

/// Shortens a line for inclusion in an error message.
fn excerpt(line: &str) -> String {
    const MAX: usize = 60;
    if line.chars().count() <= MAX {
        format!("{line:?}")
    } else {
        let cut: String = line.chars().take(MAX).collect();
        format!("{cut:?}…")
    }
}

fn parse_state_file(text: &str, path: &Path) -> Result<BTreeMap<String, Fingerprint>, BuildError> {
    let mut entries = BTreeMap::new();
    let mut header: Option<(usize, String)> = None;
    let mut body = String::new();
    // `flush` always writes at least the header line, so an existing empty
    // file can only be the stub of a torn write.
    if text.trim().is_empty() {
        return Err(BuildError::State(format!(
            "{}: empty state file (likely truncated)",
            path.display()
        )));
    }
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(HEADER_PREFIX) {
            // "n=<count> sum=<hash>"
            let mut count = None;
            let mut sum = None;
            for field in rest.split_whitespace() {
                if let Some(v) = field.strip_prefix("n=") {
                    count = v.parse::<usize>().ok();
                } else if let Some(v) = field.strip_prefix("sum=") {
                    sum = Some(v.to_owned());
                }
            }
            match (count, sum) {
                (Some(n), Some(s)) => header = Some((n, s)),
                _ => {
                    return Err(BuildError::State(format!(
                        "{}:{}: malformed integrity header: {}",
                        path.display(),
                        no + 1,
                        excerpt(line)
                    )))
                }
            }
            continue;
        }
        if line.starts_with('#') {
            // A comment line that is not a valid header can only come from
            // damage (e.g. a header line truncated mid-write): rejecting it
            // is what makes truncation detectable.
            return Err(BuildError::State(format!(
                "{}:{}: unrecognised header line: {}",
                path.display(),
                no + 1,
                excerpt(line)
            )));
        }
        let (id, hash) = line.split_once('\t').ok_or_else(|| {
            BuildError::State(format!(
                "{}:{}: malformed line (expected id\\thash): {}",
                path.display(),
                no + 1,
                excerpt(line)
            ))
        })?;
        let fp = hash.parse::<Fingerprint>().map_err(|e| {
            BuildError::State(format!(
                "{}:{}: bad hash ({e}): {}",
                path.display(),
                no + 1,
                excerpt(line)
            ))
        })?;
        if entries.insert(id.to_owned(), fp).is_some() {
            return Err(BuildError::State(format!(
                "{}:{}: duplicate task id: {}",
                path.display(),
                no + 1,
                excerpt(line)
            )));
        }
        body.push_str(line);
        body.push('\n');
    }
    if let Some((count, sum)) = header {
        if count != entries.len() {
            return Err(BuildError::State(format!(
                "{}: truncated: header records {count} entries, found {}",
                path.display(),
                entries.len()
            )));
        }
        let actual = Fingerprint::of(body.as_bytes()).to_string();
        if actual != sum {
            return Err(BuildError::State(format!(
                "{}: checksum mismatch: header says {sum}, content hashes to {actual}",
                path.display()
            )));
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "marshal-depgraph-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn persist_roundtrip() {
        let dir = tmpdir("roundtrip");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("a", Fingerprint::of(b"1"));
        db.record("b", Fingerprint::of(b"2"));
        db.flush().unwrap();

        let db2 = StateDb::open(&file).unwrap();
        assert!(db2.recovery().is_none());
        assert_eq!(db2.last("a"), Some(Fingerprint::of(b"1")));
        assert_eq!(db2.last("b"), Some(Fingerprint::of(b"2")));
        assert_eq!(db2.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn headerless_legacy_file_still_loads() {
        let dir = tmpdir("legacy");
        let file = dir.join("state.db");
        let fp = Fingerprint::of(b"1");
        std::fs::write(&file, format!("a\t{fp}\n")).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.recovery().is_none());
        assert_eq!(db.last("a"), Some(fp));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn malformed_file_quarantined_and_recovered() {
        let dir = tmpdir("malformed");
        let file = dir.join("state.db");
        std::fs::write(&file, "no-tab-here\n").unwrap();
        let db = StateDb::open(&file).unwrap();
        // Recovery: empty db, note set, original quarantined.
        assert!(db.is_empty());
        let note = db.recovery().expect("recovery note");
        assert!(note.contains("malformed line"), "{note}");
        assert!(
            note.contains("no-tab-here"),
            "error carries the offending line: {note}"
        );
        assert!(!file.exists());
        assert!(dir.join("state.db.corrupt").exists());
        // A fresh open after quarantine is clean.
        let db = StateDb::open(&file).unwrap();
        assert!(db.recovery().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn truncated_file_detected() {
        let dir = tmpdir("truncated");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        for i in 0..10 {
            db.record(format!("task{i}"), Fingerprint::of(&[i]));
        }
        db.flush().unwrap();
        // Drop the last two lines, as a torn write would.
        let text = std::fs::read_to_string(&file).unwrap();
        let kept: Vec<&str> = text.lines().take(9).collect();
        std::fs::write(&file, kept.join("\n")).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.is_empty());
        assert!(
            db.recovery().unwrap().contains("truncated"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bitflip_detected_by_checksum() {
        let dir = tmpdir("bitflip");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("aa", Fingerprint::of(b"1"));
        db.record("bb", Fingerprint::of(b"2"));
        db.flush().unwrap();
        // Corrupt one character of a task id: every line still parses, so
        // only the checksum catches it.
        let text = std::fs::read_to_string(&file).unwrap();
        let flipped = text.replace("\nbb\t", "\nbz\t");
        assert_ne!(text, flipped);
        std::fs::write(&file, flipped).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(db.is_empty());
        assert!(
            db.recovery().unwrap().contains("checksum"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn duplicate_ids_rejected() {
        let dir = tmpdir("dup");
        let file = dir.join("state.db");
        let fp = Fingerprint::of(b"1");
        let text = format!("a\t{fp}\na\t{fp}\n");
        let err = StateDb::parse_strict(&text, &file).unwrap_err();
        assert!(matches!(err, BuildError::State(ref m) if m.contains("duplicate task id")));
        // And open() recovers from it.
        std::fs::write(&file, text).unwrap();
        let db = StateDb::open(&file).unwrap();
        assert!(
            db.recovery().unwrap().contains("duplicate"),
            "{:?}",
            db.recovery()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bad_hash_error_carries_line_excerpt() {
        let file = PathBuf::from("state.db");
        let err = StateDb::parse_strict("task\tnot-a-hash\n", &file).unwrap_err();
        let BuildError::State(msg) = err else {
            panic!("wrong variant")
        };
        assert!(msg.contains("bad hash"), "{msg}");
        assert!(msg.contains("not-a-hash"), "{msg}");
        // Long lines are truncated, not dumped wholesale.
        let long = format!("task\t{}\n", "x".repeat(500));
        let BuildError::State(msg) = StateDb::parse_strict(&long, &file).unwrap_err() else {
            panic!("wrong variant")
        };
        assert!(msg.len() < 200, "excerpt should be bounded: {}", msg.len());
        assert!(msg.contains('…'), "{msg}");
    }

    #[test]
    fn flush_leaves_no_temp_file() {
        let dir = tmpdir("atomic");
        let file = dir.join("state.db");
        let mut db = StateDb::open(&file).unwrap();
        db.record("a", Fingerprint::of(b"1"));
        db.flush().unwrap();
        assert!(file.exists());
        assert!(!dir.join("state.db.tmp").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn forget_and_clear() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        assert!(db.forget("a"));
        assert!(!db.forget("a"));
        db.record("b", Fingerprint::of(b"2"));
        db.clear();
        assert!(db.is_empty());
    }

    #[test]
    fn in_memory_flush_is_noop() {
        let mut db = StateDb::in_memory();
        db.record("a", Fingerprint::of(b"1"));
        db.flush().unwrap();
        assert!(db.path().is_none());
    }
}
