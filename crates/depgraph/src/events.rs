//! The executor's event channel: runners report task lifecycle events back
//! to the scheduler over an mpsc channel.
//!
//! The scheduler ([`crate::sched`]) owns the graph, the up-to-date checks,
//! the claim audit, and the poisoning policy; runners
//! ([`crate::runner::TaskRunner`]) own nothing but execution. The only
//! thing that flows from a runner back to the scheduler is an
//! [`ExecEvent`], sent through the [`EventSender`] handed to
//! [`crate::runner::TaskRunner::submit`]. See `docs/executor.md` for the
//! full protocol contract.

use std::sync::mpsc::Sender;

/// Identifies a runner within one scheduler run: its index in the runner
/// list, in declaration order.
pub type RunnerId = usize;

/// A task-lifecycle event reported by a runner.
///
/// Events are facts about what a runner did, not requests: the scheduler
/// is free to ignore an event that no longer makes sense (a duplicate
/// `Finished` for a task it already settled, an event from a runner it
/// already declared lost). That tolerance is what makes the protocol safe
/// against racy or misbehaving runners.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecEvent {
    /// The runner began executing the task's action.
    Started {
        /// The reporting runner.
        runner: RunnerId,
        /// The task id.
        task: String,
    },
    /// A progress note from a long-running task (free-form, advisory).
    Progress {
        /// The reporting runner.
        runner: RunnerId,
        /// The task id.
        task: String,
        /// Human-readable progress note.
        note: String,
    },
    /// The task's action completed successfully.
    Finished {
        /// The reporting runner.
        runner: RunnerId,
        /// The task id.
        task: String,
    },
    /// The task's action failed (after exhausting its retry budget).
    Failed {
        /// The reporting runner.
        runner: RunnerId,
        /// The task id.
        task: String,
        /// The action's error message.
        message: String,
    },
    /// The task's action panicked. The scheduler re-raises the panic on
    /// its own thread so a debug-assertion tripped inside a worker is not
    /// silently downgraded to a task failure.
    Panicked {
        /// The reporting runner.
        runner: RunnerId,
        /// The task id.
        task: String,
        /// The panic payload, rendered.
        message: String,
    },
    /// The runner can no longer execute tasks (transport died, worker
    /// crashed). Tasks in flight on this runner are requeued once onto a
    /// surviving runner, then treated as failures — never left hanging.
    RunnerLost {
        /// The lost runner.
        runner: RunnerId,
        /// Why the runner was lost.
        reason: String,
    },
}

impl ExecEvent {
    /// The runner that reported this event.
    pub fn runner(&self) -> RunnerId {
        match self {
            ExecEvent::Started { runner, .. }
            | ExecEvent::Progress { runner, .. }
            | ExecEvent::Finished { runner, .. }
            | ExecEvent::Failed { runner, .. }
            | ExecEvent::Panicked { runner, .. }
            | ExecEvent::RunnerLost { runner, .. } => *runner,
        }
    }
}

/// A runner's handle for reporting [`ExecEvent`]s to the scheduler.
///
/// Cloneable and `Send`: a runner may hand clones to worker threads. Every
/// event is stamped with the runner's id, so the scheduler can attribute
/// events without trusting runners to fill the field themselves. Sends
/// after the scheduler has returned are silently dropped.
#[derive(Debug, Clone)]
pub struct EventSender {
    runner: RunnerId,
    tx: Sender<ExecEvent>,
}

impl EventSender {
    /// Creates a sender that stamps events with `runner`. Normally the
    /// scheduler builds these; public so crates implementing
    /// [`crate::runner::TaskRunner`] can unit-test their runners against a
    /// bare channel.
    pub fn new(runner: RunnerId, tx: Sender<ExecEvent>) -> EventSender {
        EventSender { runner, tx }
    }

    /// The runner id this sender stamps onto events.
    pub fn runner(&self) -> RunnerId {
        self.runner
    }

    fn send(&self, event: ExecEvent) {
        // A closed channel means the scheduler is gone; late events from a
        // straggling worker have nowhere useful to go.
        let _ = self.tx.send(event);
    }

    /// Reports that the task's action began executing.
    pub fn started(&self, task: &str) {
        self.send(ExecEvent::Started {
            runner: self.runner,
            task: task.to_owned(),
        });
    }

    /// Reports an advisory progress note for a running task.
    pub fn progress(&self, task: &str, note: &str) {
        self.send(ExecEvent::Progress {
            runner: self.runner,
            task: task.to_owned(),
            note: note.to_owned(),
        });
    }

    /// Reports that the task's action completed successfully.
    pub fn finished(&self, task: &str) {
        self.send(ExecEvent::Finished {
            runner: self.runner,
            task: task.to_owned(),
        });
    }

    /// Reports that the task's action failed.
    pub fn failed(&self, task: &str, message: impl Into<String>) {
        self.send(ExecEvent::Failed {
            runner: self.runner,
            task: task.to_owned(),
            message: message.into(),
        });
    }

    /// Reports that the task's action panicked.
    pub fn panicked(&self, task: &str, message: impl Into<String>) {
        self.send(ExecEvent::Panicked {
            runner: self.runner,
            task: task.to_owned(),
            message: message.into(),
        });
    }

    /// Reports that this runner can no longer execute tasks.
    pub fn runner_lost(&self, reason: impl Into<String>) {
        self.send(ExecEvent::RunnerLost {
            runner: self.runner,
            reason: reason.into(),
        });
    }
}

/// A point-in-time snapshot of scheduler state, delivered to the
/// [`crate::ExecOptions::progress`] callback whenever the picture changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecProgress {
    /// Total tasks in the plan.
    pub total: usize,
    /// Tasks ready to dispatch (dependencies settled, not yet claimed).
    pub ready: usize,
    /// Tasks currently executing on a runner.
    pub running: usize,
    /// Tasks settled successfully (executed or skipped as up to date).
    pub done: usize,
    /// Tasks failed or poisoned by a failed dependency.
    pub failed: usize,
}

/// The progress-callback type: invoked from the scheduler thread, so it
/// must not block for long.
pub type ProgressFn = std::sync::Arc<dyn Fn(&ExecProgress) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn events_are_stamped_with_runner_id() {
        let (tx, rx) = channel();
        let sender = EventSender::new(3, tx);
        assert_eq!(sender.runner(), 3);
        sender.started("a");
        sender.progress("a", "halfway");
        sender.finished("a");
        sender.failed("b", "boom");
        sender.panicked("c", "ouch");
        sender.runner_lost("test");
        let events: Vec<ExecEvent> = rx.try_iter().collect();
        assert_eq!(events.len(), 6);
        assert!(events.iter().all(|e| e.runner() == 3));
        assert_eq!(
            events[2],
            ExecEvent::Finished {
                runner: 3,
                task: "a".into()
            }
        );
    }

    #[test]
    fn sends_after_scheduler_exit_are_dropped() {
        let (tx, rx) = channel();
        drop(rx);
        let sender = EventSender::new(0, tx);
        // Must not panic: the scheduler is gone, the event evaporates.
        sender.finished("late");
    }
}
