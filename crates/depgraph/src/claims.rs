//! The runtime side of the write-claim registry.
//!
//! While a task's action runs, the executor installs the task's declared
//! claims in a thread-local; library code that writes build artifacts calls
//! [`assert_claimed`] on each path it is about to write. In debug builds an
//! undeclared write panics with the offending task and path, so a task
//! whose action grew a new output without a matching [`crate::Task::claim`]
//! declaration is caught by the test suite instead of silently racing other
//! tasks under parallel execution. Release builds skip the check entirely.

use std::cell::RefCell;
use std::path::{Path, PathBuf};

use crate::task::Task;

/// (task id, exact claims, tree claims) for the running task.
type ActiveClaims = (String, Vec<PathBuf>, Vec<PathBuf>);

thread_local! {
    static CURRENT: RefCell<Option<ActiveClaims>> = const { RefCell::new(None) };
}

/// Installs a task's claims for the duration of its action; the executor
/// holds one of these across [`Task::run`]. Dropping it clears the context.
pub(crate) struct ClaimScope;

impl ClaimScope {
    pub(crate) fn enter(task: &Task) -> ClaimScope {
        CURRENT.with(|c| {
            *c.borrow_mut() = Some((
                task.id().to_owned(),
                task.claims().cloned().collect(),
                task.claim_trees().to_vec(),
            ));
        });
        ClaimScope
    }
}

impl Drop for ClaimScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

/// Runs `f` with `task`'s write claims installed, so artifact writes inside
/// `f` are audited exactly as they would be inside the task's own action.
/// Remote runners use this around artifact-fetch hooks, which write a
/// task's outputs without going through [`crate::runner::run_task`].
pub fn with_claims<T>(task: &Task, f: impl FnOnce() -> T) -> T {
    let _scope = ClaimScope::enter(task);
    f()
}

/// Debug-asserts that the currently running task declared `path` as a write
/// claim. Outside a task action (host-init, output collection, tests that
/// call actions directly) there is no context and the call is a no-op, as
/// it is in release builds.
///
/// # Panics
///
/// In debug builds, when called from inside a task action whose task did
/// not declare `path` via [`Task::output`], [`Task::claim`], or a
/// [`Task::claim_tree`] containing it.
pub fn assert_claimed(path: &Path) {
    if !cfg!(debug_assertions) {
        return;
    }
    CURRENT.with(|c| {
        if let Some((task, claims, trees)) = &*c.borrow() {
            assert!(
                claims.iter().any(|p| p == path) || trees.iter().any(|t| path.starts_with(t)),
                "task `{task}` wrote `{}` without declaring a write claim; \
                 add .output(), .claim(), or .claim_tree() for it so the \
                 parallel scheduler can audit cross-task conflicts",
                path.display()
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_context_is_a_noop() {
        // Outside any task action the check never fires.
        assert_claimed(Path::new("/anything/at/all"));
    }

    #[test]
    fn claimed_write_passes() {
        let t = Task::new("t", || Ok(())).output("/tmp/claimed.bin");
        let _scope = ClaimScope::enter(&t);
        assert_claimed(Path::new("/tmp/claimed.bin"));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-only check")]
    #[should_panic(expected = "without declaring a write claim")]
    fn undeclared_write_panics_in_debug() {
        let t = Task::new("t", || Ok(())).output("/tmp/claimed.bin");
        let _scope = ClaimScope::enter(&t);
        assert_claimed(Path::new("/tmp/not-claimed.bin"));
    }

    #[test]
    fn tree_claim_covers_nested_paths() {
        let t = Task::new("t", || Ok(())).claim_tree("/work/objects");
        let _scope = ClaimScope::enter(&t);
        assert_claimed(Path::new("/work/objects/ab/abcdef.blob"));
        assert_claimed(Path::new("/work/objects"));
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "debug-only check")]
    #[should_panic(expected = "without declaring a write claim")]
    fn tree_claim_does_not_cover_siblings() {
        let t = Task::new("t", || Ok(())).claim_tree("/work/objects");
        let _scope = ClaimScope::enter(&t);
        assert_claimed(Path::new("/work/levels/base.img"));
    }

    #[test]
    fn scope_clears_on_drop() {
        let t = Task::new("t", || Ok(()));
        {
            let _scope = ClaimScope::enter(&t);
        }
        // Context gone: an unclaimed path no longer trips the assertion.
        assert_claimed(Path::new("/tmp/whatever"));
    }
}
