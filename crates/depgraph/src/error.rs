//! Build errors.

use std::fmt;

/// Error raised while constructing or executing a build graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A task with the same id was already registered.
    DuplicateTask(String),
    /// A task depends on an id that was never registered.
    UnknownDependency {
        /// The task with the bad edge.
        task: String,
        /// The missing dependency id.
        dependency: String,
    },
    /// The graph contains a dependency cycle through the named task.
    Cycle(String),
    /// A task action returned an error.
    TaskFailed {
        /// The failing task id.
        task: String,
        /// The action's error message.
        message: String,
    },
    /// The persistent state database could not be read or written.
    State(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateTask(id) => write!(f, "duplicate task `{id}`"),
            BuildError::UnknownDependency { task, dependency } => {
                write!(f, "task `{task}` depends on unknown task `{dependency}`")
            }
            BuildError::Cycle(id) => write!(f, "dependency cycle through task `{id}`"),
            BuildError::TaskFailed { task, message } => {
                write!(f, "task `{task}` failed: {message}")
            }
            BuildError::State(msg) => write!(f, "state database error: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildError::TaskFailed {
            task: "kernel".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task `kernel` failed: boom");
        assert!(BuildError::Cycle("a".into()).to_string().contains("cycle"));
    }
}
