//! Build errors.

use std::fmt;

/// Error raised while constructing or executing a build graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A task with the same id was already registered.
    DuplicateTask(String),
    /// A task depends on an id that was never registered.
    UnknownDependency {
        /// The task with the bad edge.
        task: String,
        /// The missing dependency id.
        dependency: String,
    },
    /// The graph contains a dependency cycle through the named task.
    Cycle(String),
    /// A task action returned an error.
    TaskFailed {
        /// The failing task id.
        task: String,
        /// The action's error message.
        message: String,
    },
    /// Two tasks that are not ordered by a dependency both claim to write
    /// the same path — running them concurrently (or in either order)
    /// would race on the file, so the graph is rejected before anything
    /// executes.
    Conflict {
        /// The doubly-claimed path.
        path: String,
        /// The first claiming task (lexicographically smaller id).
        first: String,
        /// The second claiming task.
        second: String,
    },
    /// The persistent state database could not be read or written.
    State(String),
    /// The runner configuration is unusable: no runners, a mix of dry-run
    /// and live runners, or a scheduler stall caused by a runner breaking
    /// its event contract.
    Runner(String),
}

/// The execution-facing alias for [`BuildError`]: scheduler errors such as
/// [`BuildError::Conflict`] and [`BuildError::TaskFailed`] are reported
/// through the same type graph-construction errors use.
pub type ExecError = BuildError;

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateTask(id) => write!(f, "duplicate task `{id}`"),
            BuildError::UnknownDependency { task, dependency } => {
                write!(f, "task `{task}` depends on unknown task `{dependency}`")
            }
            BuildError::Cycle(id) => write!(f, "dependency cycle through task `{id}`"),
            BuildError::TaskFailed { task, message } => {
                write!(f, "task `{task}` failed: {message}")
            }
            BuildError::Conflict {
                path,
                first,
                second,
            } => write!(
                f,
                "write conflict: tasks `{first}` and `{second}` both claim `{path}` \
                 but neither depends on the other; add a dependency edge or give \
                 them distinct output paths"
            ),
            BuildError::State(msg) => write!(f, "state database error: {msg}"),
            BuildError::Runner(msg) => write!(f, "runner error: {msg}"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BuildError::TaskFailed {
            task: "kernel".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "task `kernel` failed: boom");
        assert!(BuildError::Cycle("a".into()).to_string().contains("cycle"));
        let e = BuildError::Conflict {
            path: "/tmp/rootfs.img".into(),
            first: "img:a".into(),
            second: "img:b".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("img:a") && msg.contains("img:b"), "{msg}");
        assert!(msg.contains("/tmp/rootfs.img"), "{msg}");
    }
}
