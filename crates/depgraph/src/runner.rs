//! Task runners: the execution half of the event-driven executor.
//!
//! A [`TaskRunner`] consumes [`Assignment`]s from the scheduler and
//! reports [`crate::ExecEvent`]s back over the channel. The scheduler never
//! runs a task itself; it only decides *what* may run and *where*. Two
//! runners ship here — [`LocalRunner`] (a thread pool) and
//! [`DryRunRunner`] (a no-op plan recorder) — and `marshal-netstore`
//! provides a remote runner speaking the MNET EXEC protocol.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use marshal_trace::Recorder;

use crate::claims::ClaimScope;
use crate::events::EventSender;
use crate::task::Task;

/// One unit of work handed from the scheduler to a runner.
#[derive(Debug, Clone)]
pub struct Assignment {
    /// The task to execute (owned clone; actions are `Arc`-shared).
    pub task: Task,
    /// How long the task sat ready before a runner slot claimed it, for
    /// queue-wait attribution in the run journal.
    pub claim_wait_us: u64,
}

/// An execution backend for build tasks.
///
/// Contract (see `docs/executor.md`):
/// - [`TaskRunner::submit`] must not block on task execution; it enqueues
///   the assignment and returns. Every submitted assignment must
///   eventually produce exactly one terminal event (`Finished`, `Failed`,
///   or `Panicked`) *or* be covered by a `RunnerLost` event, so the
///   scheduler never waits forever.
/// - The scheduler keeps at most [`TaskRunner::slots`] assignments in
///   flight on a runner, and only offers tasks for which
///   [`TaskRunner::can_run`] returned `true`.
/// - [`TaskRunner::shutdown`] is called once after the scheduler drains;
///   it must join any worker threads.
pub trait TaskRunner: Send {
    /// Human-readable runner name for journals and error messages.
    fn label(&self) -> String;

    /// How many assignments this runner executes concurrently.
    fn slots(&self) -> usize;

    /// Whether this runner can execute the given task. Runners that need
    /// a serialized task description (remote runners) decline tasks
    /// without one; the scheduler then offers the task elsewhere.
    fn can_run(&self, _task: &Task) -> bool {
        true
    }

    /// Whether this runner only estimates work instead of performing it.
    /// The scheduler refuses to mix dry-run and live runners, and skips
    /// all state-database writes when the whole pool is dry.
    fn is_dry_run(&self) -> bool {
        false
    }

    /// Installs the run-journal recorder. Called once before scheduling.
    fn set_recorder(&mut self, _recorder: Recorder) {}

    /// Accepts an assignment. Terminal events flow through `events`.
    fn submit(&mut self, assignment: Assignment, events: &EventSender);

    /// Stops accepting work and joins workers.
    fn shutdown(&mut self) {}
}

/// Runs a task's action, re-running on failure until the task's retry
/// budget is exhausted. Deterministic: a fixed attempt count, no clock.
/// The task's write claims are installed for the duration, so undeclared
/// writes trip the debug assertion in [`crate::claims::assert_claimed`].
///
/// This is the single action entry point every runner shares; remote
/// runners call it too when they fall back to executing locally.
///
/// # Errors
///
/// The action's final error message, suffixed with the attempt count when
/// the task had a retry budget.
pub fn run_task(task: &Task) -> Result<(), String> {
    let _claims = ClaimScope::enter(task);
    let budget = task.retry_budget();
    let mut attempt = 0;
    loop {
        match task.run() {
            Ok(()) => return Ok(()),
            Err(_) if attempt < budget => attempt += 1,
            Err(message) if budget > 0 => {
                return Err(format!("{message} (after {} attempts)", attempt + 1))
            }
            Err(message) => return Err(message),
        }
    }
}

/// Renders a panic payload for transport through the event channel.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked".to_owned()
    }
}

struct LocalJob {
    assignment: Assignment,
    events: EventSender,
}

/// The default runner: a pool of `threads` worker threads executing task
/// actions in-process. Behind [`crate::Graph::execute_with`] this replaces
/// the pre-event-channel Condvar pool; serial builds are simply a
/// one-thread pool, which is what gives serial and parallel runs identical
/// journal shapes (`task` spans with `claim_wait_us`, `busy_workers`
/// samples) at every `-j`.
pub struct LocalRunner {
    threads: usize,
    label: String,
    recorder: Recorder,
    tx: Option<Sender<LocalJob>>,
    shared_rx: Option<Arc<Mutex<Receiver<LocalJob>>>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for LocalRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalRunner")
            .field("threads", &self.threads)
            .field("workers", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl LocalRunner {
    /// Creates a pool that executes up to `threads` tasks concurrently
    /// (`0` is clamped to `1`). Worker threads start lazily on the first
    /// [`TaskRunner::submit`], after the recorder is installed.
    pub fn new(threads: usize) -> LocalRunner {
        let threads = threads.max(1);
        LocalRunner {
            threads,
            label: format!("local:{threads}"),
            recorder: Recorder::disabled(),
            tx: None,
            shared_rx: None,
            handles: Vec::new(),
        }
    }

    fn ensure_workers(&mut self) {
        if self.tx.is_some() {
            return;
        }
        let (tx, rx) = channel::<LocalJob>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..self.threads {
            let rx = Arc::clone(&rx);
            let rec = self.recorder.clone();
            let label = self.label.clone();
            self.handles.push(std::thread::spawn(move || loop {
                // Hold the receiver lock only while claiming, never while
                // executing, so idle workers can claim concurrently.
                let job = { rx.lock().expect("runner queue poisoned").recv() };
                let Ok(LocalJob { assignment, events }) = job else {
                    return;
                };
                let task = assignment.task;
                let id = task.id().to_owned();
                events.started(&id);
                // The task span lives on the worker thread that ran the
                // action, keeping per-thread span nesting exact.
                let span = rec.span(
                    "task",
                    &[
                        ("task", &id),
                        ("claim_wait_us", &assignment.claim_wait_us.to_string()),
                        ("runner", &label),
                    ],
                );
                match catch_unwind(AssertUnwindSafe(|| run_task(&task))) {
                    Ok(Ok(())) => {
                        span.end_with(&[("outcome", "executed")]);
                        events.finished(&id);
                    }
                    Ok(Err(message)) => {
                        span.end_with(&[("outcome", "failed"), ("error", &message)]);
                        events.failed(&id, message);
                    }
                    Err(payload) => {
                        let message = panic_message(payload);
                        span.end_with(&[("outcome", "panicked"), ("error", &message)]);
                        events.panicked(&id, message);
                    }
                }
            }));
        }
        self.shared_rx = Some(rx);
        self.tx = Some(tx);
    }
}

impl TaskRunner for LocalRunner {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn slots(&self) -> usize {
        self.threads
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn submit(&mut self, assignment: Assignment, events: &EventSender) {
        self.ensure_workers();
        let job = LocalJob {
            assignment,
            events: events.clone(),
        };
        if let Some(tx) = &self.tx {
            // The send only fails after shutdown, which the scheduler
            // never submits past.
            let _ = tx.send(job);
        }
    }

    fn shutdown(&mut self) {
        self.tx = None;
        self.shared_rx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LocalRunner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One task a dry run would have executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedTask {
    /// The task id.
    pub id: String,
    /// The outputs the task would write.
    pub outputs: Vec<PathBuf>,
    /// The task's retry budget.
    pub retries: u32,
}

/// The plan a [`DryRunRunner`] accumulated, shared with the caller.
#[derive(Debug, Clone, Default)]
pub struct DryRunPlan {
    tasks: Arc<Mutex<Vec<PlannedTask>>>,
}

impl DryRunPlan {
    /// The tasks the dry run would have executed, in dispatch order.
    pub fn tasks(&self) -> Vec<PlannedTask> {
        self.tasks.lock().expect("dry-run plan poisoned").clone()
    }
}

/// A cost-estimating no-op runner: records what *would* run and reports
/// instant success without executing anything. Powers `build --dry-run`.
/// The scheduler persists nothing when the runner pool is dry, so a dry
/// run leaves the state database and the filesystem untouched.
#[derive(Debug, Default)]
pub struct DryRunRunner {
    plan: DryRunPlan,
}

impl DryRunRunner {
    /// Creates the runner and the shared plan it fills in.
    pub fn new() -> (DryRunRunner, DryRunPlan) {
        let plan = DryRunPlan::default();
        (DryRunRunner { plan: plan.clone() }, plan)
    }
}

impl TaskRunner for DryRunRunner {
    fn label(&self) -> String {
        "dry-run".to_owned()
    }

    fn slots(&self) -> usize {
        // Effectively unbounded: nothing executes, so there is nothing to
        // limit. A finite-but-huge value keeps slot arithmetic simple.
        usize::MAX / 2
    }

    fn is_dry_run(&self) -> bool {
        true
    }

    fn submit(&mut self, assignment: Assignment, events: &EventSender) {
        let task = &assignment.task;
        self.plan
            .tasks
            .lock()
            .expect("dry-run plan poisoned")
            .push(PlannedTask {
                id: task.id().to_owned(),
                outputs: task.outputs().to_vec(),
                retries: task.retry_budget(),
            });
        events.started(task.id());
        events.finished(task.id());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn harness() -> (EventSender, mpsc::Receiver<crate::ExecEvent>) {
        let (tx, rx) = mpsc::channel();
        (EventSender::new(0, tx), rx)
    }

    #[test]
    fn local_runner_executes_and_reports() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let task = Task::new("t", move || {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        });
        let mut runner = LocalRunner::new(2);
        let (events, rx) = harness();
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &events,
        );
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert!(matches!(first, crate::ExecEvent::Started { ref task, .. } if task == "t"));
        assert!(matches!(second, crate::ExecEvent::Finished { ref task, .. } if task == "t"));
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        runner.shutdown();
    }

    #[test]
    fn local_runner_reports_failures_with_retry_suffix() {
        let task = Task::new("bad", || Err("boom".to_owned())).retries(2);
        let mut runner = LocalRunner::new(1);
        let (events, rx) = harness();
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &events,
        );
        let _started = rx.recv().unwrap();
        match rx.recv().unwrap() {
            crate::ExecEvent::Failed { task, message, .. } => {
                assert_eq!(task, "bad");
                assert_eq!(message, "boom (after 3 attempts)");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        runner.shutdown();
    }

    #[test]
    fn local_runner_converts_panics_to_events() {
        let task = Task::new("explode", || panic!("shrapnel"));
        let mut runner = LocalRunner::new(1);
        let (events, rx) = harness();
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &events,
        );
        let _started = rx.recv().unwrap();
        match rx.recv().unwrap() {
            crate::ExecEvent::Panicked { task, message, .. } => {
                assert_eq!(task, "explode");
                assert!(message.contains("shrapnel"), "{message}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        runner.shutdown();
    }

    #[test]
    fn dry_run_records_without_executing() {
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        let task = Task::new("would-run", move || {
            r.fetch_add(1, Ordering::SeqCst);
            Ok(())
        })
        .output("/tmp/nonexistent-artifact")
        .retries(1);
        let (mut runner, plan) = DryRunRunner::new();
        assert!(runner.is_dry_run());
        let (events, rx) = harness();
        runner.submit(
            Assignment {
                task,
                claim_wait_us: 0,
            },
            &events,
        );
        assert!(matches!(
            rx.recv().unwrap(),
            crate::ExecEvent::Started { .. }
        ));
        assert!(matches!(
            rx.recv().unwrap(),
            crate::ExecEvent::Finished { .. }
        ));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "dry run executes nothing");
        let planned = plan.tasks();
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].id, "would-run");
        assert_eq!(planned[0].retries, 1);
        assert_eq!(
            planned[0].outputs,
            vec![PathBuf::from("/tmp/nonexistent-artifact")]
        );
    }
}
