//! The scheduler: the policy half of the event-driven executor.
//!
//! [`run_scheduler`] owns everything runners must not: the dependency
//! graph walk, up-to-date checks against the [`StateDb`], crash-safe
//! in-progress marks, the keep-going failure cone, and runner-loss
//! recovery. Runners only execute; every decision lives here, on one
//! thread, which is what keeps `-j1` and `-j8` builds observably
//! identical. See `docs/executor.md` for the protocol.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;
use std::time::Instant;

use marshal_trace::Recorder;

use crate::error::BuildError;
use crate::events::{EventSender, ExecEvent, ExecProgress};
use crate::exec::{cumulative_fingerprints, BuildReport, ExecOptions};
use crate::graph::Graph;
use crate::hash::Fingerprint;
use crate::runner::{Assignment, TaskRunner};
use crate::state::StateDb;

struct Sched<'a> {
    graph: &'a Graph,
    rec: &'a Recorder,
    fps: BTreeMap<String, Fingerprint>,
    labels: Vec<String>,
    /// Which runners are still accepting work.
    live: Vec<bool>,
    /// Assignments currently in flight per runner.
    inflight_on: Vec<usize>,
    /// Whether to write the state database (false for dry runs).
    persist: bool,
    keep_going: bool,
    /// Whether to keep ready timestamps for claim-wait attribution.
    trace: bool,
    total: usize,
    remaining: BTreeMap<String, usize>,
    ready: Vec<String>,
    ready_at: BTreeMap<String, Instant>,
    dirty: BTreeSet<String>,
    /// Failed tasks and their transitive dependents.
    dead: BTreeSet<String>,
    /// Tasks already requeued once after a runner loss: a second loss
    /// poisons instead of requeueing forever.
    requeued: BTreeSet<String>,
    in_flight: BTreeMap<String, usize>,
    executed: Vec<String>,
    skipped: Vec<String>,
    poisoned: Vec<String>,
    failures: BTreeMap<String, String>,
    pending: usize,
    /// Fail-fast: a failure was seen, stop dispatching and drain.
    halting: bool,
}

impl Sched<'_> {
    /// Decrements children's outstanding-dependency counts after `id`
    /// settles (succeeded, skipped, failed, or poisoned), readying any
    /// child whose dependencies have all settled. Children outside the
    /// plan (when building a root subset) are ignored.
    fn settle(&mut self, id: &str) {
        self.pending -= 1;
        for t in self.graph.iter() {
            if !t.deps().iter().any(|d| d == id) {
                continue;
            }
            if let Some(rem) = self.remaining.get_mut(t.id()) {
                // Counts were initialised over unique deps.
                *rem = rem.saturating_sub(1);
                if *rem == 0 {
                    self.ready.push(t.id().to_owned());
                    if self.trace {
                        self.ready_at.insert(t.id().to_owned(), Instant::now());
                    }
                }
            }
        }
        self.ready.sort();
    }

    /// Records a task failure under the active failure policy. A clean
    /// failure is not a crash: the in-progress mark is cleared (when one
    /// was set) so the next run does not report a phantom interruption.
    fn fail(&mut self, db: &mut StateDb, clear_mark: bool, id: String, message: String) {
        if self.persist && clear_mark {
            db.clear_in_progress(&id);
            let _ = db.flush();
        }
        self.failures.insert(id.clone(), message);
        if self.keep_going {
            // The failure cone keeps settling so independent subtrees
            // can finish.
            self.dead.insert(id.clone());
            self.settle(&id);
        } else {
            self.halting = true;
        }
    }

    fn progress(&self) -> ExecProgress {
        ExecProgress {
            total: self.total,
            ready: self.ready.len(),
            running: self.in_flight.len(),
            done: self.executed.len() + self.skipped.len(),
            failed: self.failures.len() + self.poisoned.len(),
        }
    }

    /// Applies one runner event. Events are facts, not requests: anything
    /// that no longer makes sense (a duplicate terminal event, a report
    /// from an already-lost runner) is ignored.
    fn handle(&mut self, db: &mut StateDb, ev: ExecEvent) {
        match ev {
            ExecEvent::Started { .. } | ExecEvent::Progress { .. } => {}
            ExecEvent::Finished { task, .. } => {
                let Some(r) = self.in_flight.remove(&task) else {
                    return;
                };
                self.inflight_on[r] -= 1;
                if self.persist {
                    db.finish(task.clone(), self.fps[task.as_str()]);
                    let _ = db.flush();
                }
                self.rec
                    .counter("busy_workers", self.in_flight.len() as i64);
                self.dirty.insert(task.clone());
                self.executed.push(task.clone());
                self.settle(&task);
            }
            ExecEvent::Failed { task, message, .. } => {
                let Some(r) = self.in_flight.remove(&task) else {
                    return;
                };
                self.inflight_on[r] -= 1;
                self.rec
                    .counter("busy_workers", self.in_flight.len() as i64);
                self.fail(db, true, task, message);
            }
            ExecEvent::Panicked { task, message, .. } => {
                // Re-raise on the scheduler thread so a debug assertion
                // tripped inside a worker is not downgraded to a task
                // failure. The in-progress mark stays set — a panic is a
                // crash, and the next run should see it as one.
                panic!("task `{task}` panicked: {message}");
            }
            ExecEvent::RunnerLost { runner, reason } => {
                if !self.live.get(runner).copied().unwrap_or(false) {
                    return;
                }
                self.live[runner] = false;
                self.rec.runner_lost(&self.labels[runner], &reason);
                let orphans: Vec<String> = self
                    .in_flight
                    .iter()
                    .filter(|&(_, r)| *r == runner)
                    .map(|(t, _)| t.clone())
                    .collect();
                for id in orphans {
                    self.in_flight.remove(&id);
                    self.inflight_on[runner] -= 1;
                    if self.requeued.insert(id.clone()) {
                        self.rec.task_requeued(&id);
                        if self.trace {
                            self.ready_at.insert(id.clone(), Instant::now());
                        }
                        self.ready.push(id);
                    } else {
                        let message = format!(
                            "runner `{}` lost mid-task ({reason}); task already requeued once",
                            self.labels[runner]
                        );
                        self.fail(db, true, id, message);
                    }
                }
                self.ready.sort();
                self.rec
                    .counter("busy_workers", self.in_flight.len() as i64);
            }
        }
    }
}

/// Drives the plan in `order` to completion over the given runners.
///
/// The scheduler dispatches ready tasks to runners (declaration order,
/// first runner with a free slot whose [`TaskRunner::can_run`] accepts the
/// task), then blocks on the event channel; every state transition is a
/// reaction to a runner event. A lost runner's in-flight tasks are
/// requeued once onto survivors, then failed — never left hanging. The
/// report is assembled in completion order; the caller canonicalizes.
pub(crate) fn run_scheduler(
    graph: &Graph,
    order: &[String],
    db: &mut StateDb,
    opts: &ExecOptions,
    runners: &mut [Box<dyn TaskRunner>],
) -> Result<BuildReport, BuildError> {
    if runners.is_empty() {
        return Err(BuildError::Runner(
            "no task runners configured; a build needs at least one runner".into(),
        ));
    }
    let dry = runners[0].is_dry_run();
    if runners.iter().any(|r| r.is_dry_run() != dry) {
        return Err(BuildError::Runner(
            "cannot mix dry-run and live runners in one build".into(),
        ));
    }

    let rec = &opts.recorder;
    let (tx, rx) = mpsc::channel::<ExecEvent>();
    let senders: Vec<EventSender> = (0..runners.len())
        .map(|i| EventSender::new(i, tx.clone()))
        .collect();

    let mut st = Sched {
        graph,
        rec,
        fps: cumulative_fingerprints(graph, order),
        labels: runners.iter().map(|r| r.label()).collect(),
        live: vec![true; runners.len()],
        inflight_on: vec![0; runners.len()],
        persist: !dry,
        keep_going: opts.keep_going,
        trace: rec.enabled(),
        total: order.len(),
        remaining: BTreeMap::new(),
        ready: Vec::new(),
        ready_at: BTreeMap::new(),
        dirty: BTreeSet::new(),
        dead: BTreeSet::new(),
        requeued: BTreeSet::new(),
        in_flight: BTreeMap::new(),
        executed: Vec::new(),
        skipped: Vec::new(),
        poisoned: Vec::new(),
        failures: BTreeMap::new(),
        pending: order.len(),
        halting: false,
    };
    for id in order {
        let n = graph
            .get(id)
            .expect("order contains known ids")
            .deps()
            .iter()
            .collect::<BTreeSet<_>>()
            .len();
        st.remaining.insert(id.clone(), n);
        if n == 0 {
            st.ready.push(id.clone());
        }
    }
    st.ready.sort();
    if st.trace {
        let now = Instant::now();
        for id in &st.ready {
            st.ready_at.insert(id.clone(), now);
        }
    }

    loop {
        // Dispatch phase: classify every ready task, feeding runnable ones
        // to runners. Poisoned and up-to-date tasks settle inline, which
        // can ready their children into this same pass — an all-skipped
        // build completes here without a single event.
        if !st.halting {
            let mut deferred: Vec<String> = Vec::new();
            while let Some(id) = st.ready.pop() {
                let task = graph.get(&id).expect("known id");
                if task.deps().iter().any(|d| st.dead.contains(d)) {
                    st.ready_at.remove(&id);
                    rec.task_poisoned(&id);
                    st.dead.insert(id.clone());
                    st.poisoned.push(id.clone());
                    st.settle(&id);
                    continue;
                }
                let fp = st.fps[id.as_str()];
                let dep_ran = task.deps().iter().any(|d| st.dirty.contains(d));
                if !dep_ran && db.last(&id) == Some(fp) && task.outputs_exist() {
                    st.ready_at.remove(&id);
                    rec.task_skipped(&id);
                    st.skipped.push(id.clone());
                    st.settle(&id);
                    continue;
                }
                let mut chosen = None;
                let mut capable = false;
                for (i, r) in runners.iter().enumerate() {
                    if !st.live[i] || !r.can_run(task) {
                        continue;
                    }
                    capable = true;
                    if st.inflight_on[i] < r.slots() {
                        chosen = Some(i);
                        break;
                    }
                }
                match chosen {
                    Some(i) => {
                        let claim_wait_us = st
                            .ready_at
                            .remove(&id)
                            .map(|at| at.elapsed().as_micros() as u64)
                            .unwrap_or(0);
                        if st.persist {
                            // Durable in-progress mark: flushed (atomically)
                            // before the action runs, so a crash mid-task is
                            // visible to the next run. Flush failures are
                            // non-fatal — losing the mark only loses crash
                            // detection, not correctness of this build.
                            db.mark_in_progress(id.clone());
                            let _ = db.flush();
                        }
                        st.in_flight.insert(id.clone(), i);
                        st.inflight_on[i] += 1;
                        rec.counter("busy_workers", st.in_flight.len() as i64);
                        runners[i].submit(
                            Assignment {
                                task: task.clone(),
                                claim_wait_us,
                            },
                            &senders[i],
                        );
                    }
                    None if capable => deferred.push(id),
                    None => {
                        // Every runner that could have run this task is
                        // lost (or none ever could): fail it rather than
                        // wait for capacity that will never return.
                        st.ready_at.remove(&id);
                        let message = format!("no live runner can execute task `{id}`");
                        st.fail(db, false, id, message);
                        if st.halting {
                            break;
                        }
                    }
                }
            }
            st.ready.extend(deferred);
            st.ready.sort();
        }
        if st.trace {
            rec.counter("ready_tasks", st.ready.len() as i64);
        }
        if let Some(p) = &opts.progress {
            p(&st.progress());
        }
        if st.in_flight.is_empty() {
            if st.pending == 0 || st.halting {
                break;
            }
            // Nothing running and nothing dispatched, yet tasks remain: a
            // runner broke its event contract. Error instead of blocking
            // on a channel that will never deliver.
            return Err(BuildError::Runner(format!(
                "scheduler stalled: {} task(s) pending with no runnable work",
                st.pending
            )));
        }
        // Block for the next event (the in-flight guard above guarantees
        // one is owed), then drain whatever else already arrived.
        let ev = rx
            .recv()
            .expect("scheduler holds a sender; recv cannot fail");
        st.handle(db, ev);
        while let Ok(ev) = rx.try_recv() {
            st.handle(db, ev);
        }
    }
    if let Some(p) = &opts.progress {
        p(&st.progress());
    }

    drop(senders);
    drop(tx);
    for r in runners.iter_mut() {
        r.shutdown();
    }

    if !st.keep_going {
        if let Some((task, message)) = st.failures.into_iter().next() {
            // Several tasks may fail while the pipeline drains; report the
            // lexicographically smallest deterministically.
            return Err(BuildError::TaskFailed { task, message });
        }
        return Ok(BuildReport {
            executed: st.executed,
            skipped: st.skipped,
            failed: Vec::new(),
            poisoned: Vec::new(),
        });
    }
    Ok(BuildReport {
        executed: st.executed,
        skipped: st.skipped,
        failed: st.failures.into_iter().collect(),
        poisoned: st.poisoned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LocalRunner;
    use crate::task::Task;

    /// A scripted runner for driving the scheduler through shapes a real
    /// runner only produces under rare timing: out-of-order completions,
    /// duplicate events, runner loss mid-task. On each submission it
    /// replays the actions scripted for that task — synchronously, from
    /// inside `submit`, so tests are fully deterministic.
    struct MockRunner {
        name: String,
        slots: usize,
        script: BTreeMap<String, Vec<MockAction>>,
    }

    #[derive(Clone)]
    enum MockAction {
        Finish(&'static str),
        Fail(&'static str, &'static str),
        Lose(&'static str),
    }

    impl MockRunner {
        fn boxed(
            name: &str,
            slots: usize,
            script: &[(&str, &[MockAction])],
        ) -> Box<dyn TaskRunner> {
            Box::new(MockRunner {
                name: name.to_owned(),
                slots,
                script: script
                    .iter()
                    .map(|(id, actions)| ((*id).to_owned(), actions.to_vec()))
                    .collect(),
            })
        }
    }

    impl TaskRunner for MockRunner {
        fn label(&self) -> String {
            self.name.clone()
        }

        fn slots(&self) -> usize {
            self.slots
        }

        fn submit(&mut self, assignment: Assignment, events: &EventSender) {
            let id = assignment.task.id().to_owned();
            events.started(&id);
            for action in self.script.remove(&id).unwrap_or_default() {
                match action {
                    MockAction::Finish(t) => events.finished(t),
                    MockAction::Fail(t, msg) => events.failed(t, msg),
                    MockAction::Lose(reason) => events.runner_lost(reason),
                }
            }
        }
    }

    fn flat_graph(ids: &[&str]) -> Graph {
        let mut g = Graph::new();
        for id in ids {
            g.add(Task::new(*id, || Ok(()))).unwrap();
        }
        g
    }

    fn run(
        g: &Graph,
        db: &mut StateDb,
        opts: &ExecOptions,
        runners: Vec<Box<dyn TaskRunner>>,
    ) -> Result<BuildReport, BuildError> {
        g.execute_with_runners(db, opts, runners)
    }

    #[test]
    fn zero_runners_error_cleanly() {
        let g = flat_graph(&["a"]);
        let mut db = StateDb::in_memory();
        let err = run(&g, &mut db, &ExecOptions::default(), Vec::new()).unwrap_err();
        assert!(matches!(err, BuildError::Runner(_)), "{err:?}");
    }

    #[test]
    fn mixed_dry_and_live_runners_rejected() {
        let g = flat_graph(&["a"]);
        let mut db = StateDb::in_memory();
        let (dry, _plan) = crate::runner::DryRunRunner::new();
        let runners: Vec<Box<dyn TaskRunner>> = vec![Box::new(LocalRunner::new(1)), Box::new(dry)];
        let err = run(&g, &mut db, &ExecOptions::default(), runners).unwrap_err();
        assert!(matches!(err, BuildError::Runner(_)), "{err:?}");
    }

    #[test]
    fn out_of_order_finishes_settle_correctly() {
        // Three independent tasks dispatched c, b, a (reverse-lex pop);
        // the runner reports them finished in a different order entirely.
        let g = flat_graph(&["a", "b", "c"]);
        let mut db = StateDb::in_memory();
        let runners = vec![MockRunner::boxed(
            "mock",
            8,
            &[
                ("c", &[]),
                ("b", &[]),
                (
                    "a",
                    &[
                        MockAction::Finish("a"),
                        MockAction::Finish("c"),
                        MockAction::Finish("b"),
                    ],
                ),
            ],
        )];
        let report = run(&g, &mut db, &ExecOptions::default(), runners).unwrap();
        assert_eq!(report.executed, vec!["a", "b", "c"], "canonical order");
        assert!(report.success());
    }

    #[test]
    fn duplicate_terminal_events_are_ignored() {
        // One task, three terminal events: the first Finished settles it,
        // the duplicate Finished and the late Failed must be no-ops (no
        // double-count, no slot underflow, no spurious failure).
        let g = flat_graph(&["a"]);
        let mut db = StateDb::in_memory();
        let runners = vec![MockRunner::boxed(
            "mock",
            1,
            &[(
                "a",
                &[
                    MockAction::Finish("a"),
                    MockAction::Finish("a"),
                    MockAction::Fail("a", "late and wrong"),
                ],
            )],
        )];
        let report = run(&g, &mut db, &ExecOptions::default(), runners).unwrap();
        assert_eq!(report.executed, vec!["a"]);
        assert!(report.failed.is_empty() && report.poisoned.is_empty());
    }

    #[test]
    fn lost_runner_requeues_task_onto_survivor() {
        // Runner 0 dies mid-`a`; the task requeues onto the surviving
        // local runner and the build completes.
        let mut g = Graph::new();
        g.add(Task::new("a", || Ok(()))).unwrap();
        g.add(Task::new("b", || Ok(())).dep("a")).unwrap();
        let mut db = StateDb::in_memory();
        let runners: Vec<Box<dyn TaskRunner>> = vec![
            MockRunner::boxed("loser", 1, &[("a", &[MockAction::Lose("transport died")])]),
            Box::new(LocalRunner::new(1)),
        ];
        let report = run(&g, &mut db, &ExecOptions::default(), runners).unwrap();
        assert_eq!(report.executed, vec!["a", "b"]);
        assert!(report.success());
    }

    #[test]
    fn second_runner_loss_poisons_instead_of_looping() {
        // Both runners die while holding `a`: requeue once, then fail the
        // task and poison its dependent — never hang or retry forever.
        let mut g = Graph::new();
        g.add(Task::new("a", || Ok(()))).unwrap();
        g.add(Task::new("b", || Ok(())).dep("a")).unwrap();
        let mut db = StateDb::in_memory();
        let runners: Vec<Box<dyn TaskRunner>> = vec![
            MockRunner::boxed("loser1", 1, &[("a", &[MockAction::Lose("died first")])]),
            MockRunner::boxed("loser2", 1, &[("a", &[MockAction::Lose("died second")])]),
        ];
        let opts = ExecOptions {
            keep_going: true,
            ..ExecOptions::default()
        };
        let report = run(&g, &mut db, &opts, runners).unwrap();
        assert!(report.executed.is_empty());
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].0, "a");
        assert!(
            report.failed[0].1.contains("already requeued once"),
            "{}",
            report.failed[0].1
        );
        assert_eq!(report.poisoned, vec!["b"]);
    }

    #[test]
    fn all_runners_lost_fails_fast_without_hanging() {
        // Fail-fast flavour of total runner loss: the build errors with
        // the lost-task failure instead of stalling.
        let mut g = Graph::new();
        g.add(Task::new("a", || Ok(()))).unwrap();
        let mut db = StateDb::in_memory();
        let runners: Vec<Box<dyn TaskRunner>> = vec![
            MockRunner::boxed("loser1", 1, &[("a", &[MockAction::Lose("gone")])]),
            MockRunner::boxed("loser2", 1, &[("a", &[MockAction::Lose("gone too")])]),
        ];
        let err = run(&g, &mut db, &ExecOptions::default(), runners).unwrap_err();
        assert!(
            matches!(err, BuildError::TaskFailed { ref task, .. } if task == "a"),
            "{err:?}"
        );
    }

    #[test]
    fn dry_run_plans_without_touching_state() {
        let mut g = Graph::new();
        g.add(Task::new("a", || Err("must never run".into())))
            .unwrap();
        g.add(Task::new("b", || Err("must never run".into())).dep("a"))
            .unwrap();
        let mut db = StateDb::in_memory();
        let (runner, plan) = crate::runner::DryRunRunner::new();
        let report = run(&g, &mut db, &ExecOptions::default(), vec![Box::new(runner)]).unwrap();
        assert_eq!(report.executed, vec!["a", "b"]);
        let ids: Vec<String> = plan.tasks().into_iter().map(|t| t.id).collect();
        assert_eq!(ids, vec!["a", "b"]);
        // Nothing persisted: a later live build still sees both as dirty.
        assert_eq!(db.last("a"), None);
        assert_eq!(db.last("b"), None);
    }

    #[test]
    fn progress_callback_reaches_terminal_counts() {
        use std::sync::{Arc, Mutex};
        let g = flat_graph(&["a", "b"]);
        let mut db = StateDb::in_memory();
        let seen: Arc<Mutex<Vec<ExecProgress>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let opts = ExecOptions {
            progress: Some(std::sync::Arc::new(move |p: &ExecProgress| {
                sink.lock().unwrap().push(*p);
            })),
            ..ExecOptions::default()
        };
        let runners: Vec<Box<dyn TaskRunner>> = vec![Box::new(LocalRunner::new(2))];
        run(&g, &mut db, &opts, runners).unwrap();
        let snaps = seen.lock().unwrap();
        let last = snaps.last().expect("at least one progress snapshot");
        assert_eq!(last.total, 2);
        assert_eq!(last.done, 2);
        assert_eq!(last.running, 0);
        assert_eq!(last.failed, 0);
    }
}
