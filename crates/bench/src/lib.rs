//! # marshal-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! FireMarshal paper (see `EXPERIMENTS.md` at the workspace root for the
//! full index). Each Criterion bench prints its paper-artifact data once,
//! then measures the underlying operation:
//!
//! | bench | paper artifact |
//! |---|---|
//! | `incremental_build` | §III-B dependency tracking (full vs no-op vs leaf-change) |
//! | `parallel_jobs` | §IV-B parallel jobs ("two weeks to two days") |
//! | `pfa_latency` | Fig. 5 remote-fault latency breakdown |
//! | `bpred_sweep` | Fig. 6 Gshare vs TAGE |
//! | `build_outputs` | Fig. 3 build outputs (disk vs `--no-disk`) |
//! | `determinism` | §IV-C exact-cycle repeatability |
//! | `ablation` | design-choice sweeps (TAGE depth, cache capacity, L2, NIC) |

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Minimal in-repo stand-in for the `criterion` crate (the build
/// environment is offline, so the real crate is unavailable). Implements
/// the subset of the API the benches use — `benchmark_group`,
/// `sample_size`, `bench_function`, `Bencher::iter` — with wall-clock
/// timing and a plain-text report on stdout.
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Creates a harness with the default sample size (10).
    pub fn new() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.default_sample_size, &mut f);
        self
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::new()
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (kept for criterion API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    // One untimed warm-up pass, then `samples` timed passes.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "{label:<40} mean {mean:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        times[0],
        times[times.len() - 1],
        times.len()
    );
}

/// Passed to each benchmark closure; `iter` times the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine`, keeping its result live so the
    /// optimiser cannot delete the work.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        std::hint::black_box(out);
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Creates a unique scratch root for one bench run.
pub fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("marshal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Sets up the bundled workloads and a builder rooted at `root`.
pub fn builder_in(root: &std::path::Path) -> marshal_core::Builder {
    let setup = marshal_workloads::setup(root).expect("setup workloads");
    marshal_core::Builder::new(setup.board, setup.search, root.join("work"))
        .expect("create builder")
}

/// Loads one built job's artifacts as a cycle-exact cluster payload.
pub fn node_payload(job: &marshal_core::JobArtifacts) -> marshal_sim_rtl::NodePayload {
    match &job.kind {
        marshal_core::JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot = marshal_firmware::BootBinary::from_bytes(
                &std::fs::read(boot_path).expect("boot.bin"),
            )
            .expect("parse boot binary");
            let disk = disk_path.as_ref().map(|p| {
                marshal_image::FsImage::from_bytes(&std::fs::read(p).expect("rootfs.img"))
                    .expect("parse disk image")
            });
            marshal_sim_rtl::NodePayload::Linux { boot, disk }
        }
        marshal_core::JobKind::Bare { bin_path } => marshal_sim_rtl::NodePayload::Bare {
            bin: std::fs::read(bin_path).expect("bin.mexe"),
        },
    }
}
