//! # marshal-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! FireMarshal paper (see `EXPERIMENTS.md` at the workspace root for the
//! full index). Each Criterion bench prints its paper-artifact data once,
//! then measures the underlying operation:
//!
//! | bench | paper artifact |
//! |---|---|
//! | `incremental_build` | §III-B dependency tracking (full vs no-op vs leaf-change) |
//! | `parallel_jobs` | §IV-B parallel jobs ("two weeks to two days") |
//! | `pfa_latency` | Fig. 5 remote-fault latency breakdown |
//! | `bpred_sweep` | Fig. 6 Gshare vs TAGE |
//! | `build_outputs` | Fig. 3 build outputs (disk vs `--no-disk`) |
//! | `determinism` | §IV-C exact-cycle repeatability |
//! | `ablation` | design-choice sweeps (TAGE depth, cache capacity, L2, NIC) |

#![warn(missing_docs)]

use std::path::PathBuf;

/// Creates a unique scratch root for one bench run.
pub fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("marshal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("scratch dir");
    d
}

/// Sets up the bundled workloads and a builder rooted at `root`.
pub fn builder_in(root: &std::path::Path) -> marshal_core::Builder {
    let setup = marshal_workloads::setup(root).expect("setup workloads");
    marshal_core::Builder::new(setup.board, setup.search, root.join("work"))
        .expect("create builder")
}

/// Loads one built job's artifacts as a cycle-exact cluster payload.
pub fn node_payload(job: &marshal_core::JobArtifacts) -> marshal_sim_rtl::NodePayload {
    match &job.kind {
        marshal_core::JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot = marshal_firmware::BootBinary::from_bytes(
                &std::fs::read(boot_path).expect("boot.bin"),
            )
            .expect("parse boot binary");
            let disk = disk_path.as_ref().map(|p| {
                marshal_image::FsImage::from_bytes(&std::fs::read(p).expect("rootfs.img"))
                    .expect("parse disk image")
            });
            marshal_sim_rtl::NodePayload::Linux { boot, disk }
        }
        marshal_core::JobKind::Bare { bin_path } => marshal_sim_rtl::NodePayload::Bare {
            bin: std::fs::read(bin_path).expect("bin.mexe"),
        },
    }
}
