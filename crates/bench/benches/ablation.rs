//! Ablations of the design choices DESIGN.md calls out for the
//! cycle-exact timing model: TAGE table count / history depth, data-cache
//! capacity, and mispredict penalty. These demonstrate that the Fig. 5 /
//! Fig. 6 shapes come from the modelled mechanisms, not from tuning.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_isa::abi;
use marshal_isa::asm::assemble;
use marshal_sim_rtl::{BpredConfig, CacheConfig, FireSim, HardwareConfig};
use marshal_workloads::intspeed;

fn bin_for(name: &str) -> Vec<u8> {
    let source = intspeed::benchmarks()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap()
        .1;
    assemble(&source, abi::USER_BASE).unwrap().to_bytes()
}

fn run(hw: HardwareConfig, bin: &[u8]) -> marshal_sim_rtl::PerfReport {
    FireSim::new(hw).launch_bare(bin).unwrap().1
}

fn bench_ablation(c: &mut Criterion) {
    // --- Ablation 1: TAGE depth on a long-history benchmark --------------
    let exchange = bin_for("648.exchange2_s");
    println!("== ablation: TAGE tagged-table count (648.exchange2_s) ==");
    println!("{:>8} {:>12} {:>12}", "tables", "mispredicts", "cycles");
    for tables in [1u32, 2, 3, 4, 6] {
        let hw = HardwareConfig::boom_gshare().with_bpred(BpredConfig::Tage {
            tables,
            table_bits: 10,
            min_history: 4,
            max_history: 64,
        });
        let report = run(hw, &exchange);
        println!(
            "{tables:>8} {:>12} {:>12}",
            report.counters.mispredicts, report.counters.cycles
        );
    }

    // --- Ablation 2: TAGE maximum history on the same benchmark -----------
    println!("== ablation: TAGE max history length ==");
    println!("{:>8} {:>12} {:>12}", "history", "mispredicts", "cycles");
    for max_history in [8u32, 16, 32, 64, 127] {
        let hw = HardwareConfig::boom_gshare().with_bpred(BpredConfig::Tage {
            tables: 4,
            table_bits: 10,
            min_history: 4,
            max_history,
        });
        let report = run(hw, &exchange);
        println!(
            "{max_history:>8} {:>12} {:>12}",
            report.counters.mispredicts, report.counters.cycles
        );
    }

    // --- Ablation 3: D-cache capacity on the cache-hostile benchmark ------
    let mcf = bin_for("605.mcf_s");
    println!("== ablation: D-cache capacity (605.mcf_s, 64 KiB working set) ==");
    println!("{:>10} {:>12} {:>12}", "capacity", "miss-rate", "cycles");
    for (label, sets) in [
        ("4KiB", 16u32),
        ("16KiB", 64),
        ("64KiB", 256),
        ("256KiB", 1024),
    ] {
        let mut hw = HardwareConfig::rocket();
        hw.dcache = CacheConfig {
            sets,
            ways: 4,
            line_bytes: 64,
            hit_latency: 1,
        };
        let report = run(hw, &mcf);
        println!(
            "{label:>10} {:>11.1}% {:>12}",
            report.dcache.miss_rate() * 100.0,
            report.counters.cycles
        );
    }

    // --- Ablation 4: mispredict penalty on an unpredictable benchmark -----
    let leela = bin_for("641.leela_s");
    println!("== ablation: mispredict penalty (641.leela_s) ==");
    println!("{:>9} {:>12}", "penalty", "cycles");
    for penalty in [3u64, 6, 12, 24] {
        let mut hw = HardwareConfig::boom_gshare();
        hw.core.mispredict_penalty = penalty;
        let report = run(hw, &leela);
        println!("{penalty:>9} {:>12}", report.counters.cycles);
    }

    // --- Ablation 4b: L2 presence on the cache-hostile benchmark ----------
    println!("== ablation: unified L2 (605.mcf_s) ==");
    for (label, l2) in [
        ("no L2", None),
        ("256KiB L2", Some(marshal_sim_rtl::CacheConfig::l2_256k())),
    ] {
        let mut hw = HardwareConfig::rocket();
        hw.l2 = l2;
        let report = run(hw, &mcf);
        match report.l2 {
            Some(s) => println!(
                "  {label:>10}: {:>9} cycles (L2 miss-rate {:.1}%)",
                report.counters.cycles,
                s.miss_rate() * 100.0
            ),
            None => println!("  {label:>10}: {:>9} cycles", report.counters.cycles),
        }
    }

    // --- Ablation 5: network parameters behind the PFA's RDMA fetch -------
    use marshal_sim_rtl::NicModel;
    println!("== ablation: RDMA fetch cost vs link speed (4 KiB pages) ==");
    println!("{:>16} {:>12}", "link (B/cycle)", "rdma cycles");
    for bpc in [1u64, 3, 6, 12] {
        let nic = NicModel {
            link_bytes_per_cycle: bpc,
            ..NicModel::default()
        };
        println!("{bpc:>16} {:>12}", nic.rdma_read(4096));
    }
    println!("== ablation: RDMA fetch cost vs page size (25GbE-class link) ==");
    println!("{:>10} {:>12}", "page", "rdma cycles");
    for page in [1024u64, 4096, 16384, 65536] {
        println!("{page:>10} {:>12}", NicModel::default().rdma_read(page));
    }

    // Criterion: one representative point so the sweep is timed too.
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("exchange2_tage4", |b| {
        let hw = HardwareConfig::boom_tage();
        b.iter(|| run(hw.clone(), &exchange).counters.cycles)
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
