//! E8 (§IV-B): "Each job is instantiated as a node in the simulated
//! cluster and run in parallel. This optimization reduced the runtime for
//! our experiment from about two weeks to roughly two days."
//!
//! Measures a multi-node cycle-exact cluster run serially vs. in parallel.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_depgraph::{ExecOptions, Graph, StateDb, Task};
use marshal_isa::abi;
use marshal_isa::asm::assemble;
use marshal_sim_rtl::{FireSim, HardwareConfig, NodePayload};

fn cluster(n: usize) -> Vec<(String, NodePayload)> {
    // One moderately long bare-metal job per node (identical work, like
    // the intspeed jobs being independent benchmarks).
    let exe = assemble(
        r#"
_start:
        li      t0, 400000
        li      t1, 0
l:      addi    t1, t1, 3
        andi    t2, t1, 7
        beqz    t2, skip
        xor     t1, t1, t0
skip:
        addi    t0, t0, -1
        bnez    t0, l
        li      a0, 0
        li      a7, 93
        ecall
"#,
        abi::USER_BASE,
    )
    .unwrap();
    (0..n)
        .map(|i| {
            (
                format!("job{i}"),
                NodePayload::Bare {
                    bin: exe.to_bytes(),
                },
            )
        })
        .collect()
}

fn bench_parallel_jobs(c: &mut Criterion) {
    let sim = FireSim::new(HardwareConfig::rocket());
    let nodes = cluster(10);

    // Print the §IV-B data: wall-clock speedup at 10 nodes.
    let t0 = std::time::Instant::now();
    let serial = sim.launch_cluster(&nodes, false).unwrap();
    let serial_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = sim.launch_cluster(&nodes, true).unwrap();
    let parallel_time = t0.elapsed();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report.counters.cycles, p.report.counters.cycles);
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("== §IV-B parallel jobs (10-node intspeed-style cluster) ==");
    println!("  host cores: {cores}");
    println!("  serial:   {serial_time:?}");
    println!("  parallel: {parallel_time:?}");
    println!(
        "  speedup:  {:.2}x — bounded by min(jobs, cores) = {}x; the paper's \
         FPGA cluster ran all 10 nodes concurrently (~2 weeks -> ~2 days)",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64(),
        cores.min(10)
    );

    let mut group = c.benchmark_group("parallel_jobs");
    group.sample_size(10);
    for (label, par) in [("serial_10_jobs", false), ("parallel_10_jobs", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let results = sim.launch_cluster(&nodes, par).unwrap();
                assert_eq!(results.len(), 10);
                results.len()
            })
        });
    }
    group.finish();
}

/// A wide build graph with CPU-bound tasks: one root fanning out to 16
/// independent "image" tasks, each joined by a "finalize" task — the shape
/// `marshal build -j N` schedules for a multi-job workload.
fn build_graph(work: u64) -> Graph {
    let spin = move |seed: u64| {
        // Deterministic busy work standing in for image assembly.
        let mut acc = seed;
        for i in 0..work {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
    };
    let mut g = Graph::new();
    g.add(Task::new("root", move || {
        spin(1);
        Ok(())
    }))
    .unwrap();
    for i in 0..16 {
        g.add(
            Task::new(format!("img{i:02}"), move || {
                spin(i + 2);
                Ok(())
            })
            .dep("root"),
        )
        .unwrap();
    }
    let mut finalize = Task::new("finalize", move || {
        spin(99);
        Ok(())
    });
    for i in 0..16 {
        finalize = finalize.dep(format!("img{i:02}"));
    }
    g.add(finalize).unwrap();
    g
}

fn bench_parallel_build(c: &mut Criterion) {
    const WORK: u64 = 2_000_000;

    // Print the `-j N` sweep: wall-clock speedup of the task scheduler at
    // the thread counts the CLI exposes, with identical reports throughout.
    println!("== `-j N` parallel build (18-task graph, 16-wide fan-out) ==");
    let g = build_graph(WORK);
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let mut db = StateDb::in_memory();
        let t0 = std::time::Instant::now();
        let report = g
            .execute_with(
                &mut db,
                &ExecOptions {
                    keep_going: false,
                    threads,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(report.executed.len(), 18, "-j {threads} runs every task");
        let serial = *baseline.get_or_insert(elapsed);
        println!(
            "  -j {threads}: {elapsed:?} ({:.2}x vs -j 1)",
            serial.as_secs_f64() / elapsed.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let g = build_graph(WORK);
        group.bench_function(format!("build_j{threads}"), |b| {
            b.iter(|| {
                let mut db = StateDb::in_memory();
                let report = g
                    .execute_with(
                        &mut db,
                        &ExecOptions {
                            keep_going: false,
                            threads,
                            ..ExecOptions::default()
                        },
                    )
                    .unwrap();
                report.executed.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_jobs, bench_parallel_build);
criterion_main!(benches);
