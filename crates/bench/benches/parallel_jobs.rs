//! E8 (§IV-B): "Each job is instantiated as a node in the simulated
//! cluster and run in parallel. This optimization reduced the runtime for
//! our experiment from about two weeks to roughly two days."
//!
//! Measures a multi-node cycle-exact cluster run serially vs. in parallel.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_isa::abi;
use marshal_isa::asm::assemble;
use marshal_sim_rtl::{FireSim, HardwareConfig, NodePayload};

fn cluster(n: usize) -> Vec<(String, NodePayload)> {
    // One moderately long bare-metal job per node (identical work, like
    // the intspeed jobs being independent benchmarks).
    let exe = assemble(
        r#"
_start:
        li      t0, 400000
        li      t1, 0
l:      addi    t1, t1, 3
        andi    t2, t1, 7
        beqz    t2, skip
        xor     t1, t1, t0
skip:
        addi    t0, t0, -1
        bnez    t0, l
        li      a0, 0
        li      a7, 93
        ecall
"#,
        abi::USER_BASE,
    )
    .unwrap();
    (0..n)
        .map(|i| {
            (
                format!("job{i}"),
                NodePayload::Bare {
                    bin: exe.to_bytes(),
                },
            )
        })
        .collect()
}

fn bench_parallel_jobs(c: &mut Criterion) {
    let sim = FireSim::new(HardwareConfig::rocket());
    let nodes = cluster(10);

    // Print the §IV-B data: wall-clock speedup at 10 nodes.
    let t0 = std::time::Instant::now();
    let serial = sim.launch_cluster(&nodes, false).unwrap();
    let serial_time = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = sim.launch_cluster(&nodes, true).unwrap();
    let parallel_time = t0.elapsed();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.report.counters.cycles, p.report.counters.cycles);
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("== §IV-B parallel jobs (10-node intspeed-style cluster) ==");
    println!("  host cores: {cores}");
    println!("  serial:   {serial_time:?}");
    println!("  parallel: {parallel_time:?}");
    println!(
        "  speedup:  {:.2}x — bounded by min(jobs, cores) = {}x; the paper's \
         FPGA cluster ran all 10 nodes concurrently (~2 weeks -> ~2 days)",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64(),
        cores.min(10)
    );

    let mut group = c.benchmark_group("parallel_jobs");
    group.sample_size(10);
    for (label, par) in [("serial_10_jobs", false), ("parallel_10_jobs", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let results = sim.launch_cluster(&nodes, par).unwrap();
                assert_eq!(results.len(), 10);
                results.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_jobs);
criterion_main!(benches);
