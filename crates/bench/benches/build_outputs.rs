//! E4 (Fig. 3): the outputs of the build command — artifact sizes and
//! build cost for disk vs. `--no-disk` (initramfs-embedded) builds.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_core::{BuildOptions, JobKind};

fn bench_build_outputs(c: &mut Criterion) {
    let root = marshal_bench::scratch("fig3");
    let mut builder = marshal_bench::builder_in(&root);

    // Print the Fig. 3 data: artifact inventory for both build modes.
    for (label, no_disk) in [("default (disk image)", false), ("--no-disk", true)] {
        let products = builder
            .build(
                "hello.json",
                &BuildOptions {
                    no_disk,
                    force: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let JobKind::Linux {
            boot_path,
            disk_path,
        } = &products.jobs[0].kind
        else {
            panic!()
        };
        let boot_size = std::fs::metadata(boot_path).unwrap().len();
        let disk_size = disk_path
            .as_ref()
            .map(|p| std::fs::metadata(p).unwrap().len());
        println!("== Fig. 3 build outputs ({label}) ==");
        println!("  boot binary: {boot_size} bytes");
        match disk_size {
            Some(s) => println!("  disk image:  {s} bytes"),
            None => println!("  disk image:  (embedded in initramfs)"),
        }
    }

    let mut group = c.benchmark_group("build_outputs");
    group.sample_size(10);
    for (label, no_disk) in [("build_with_disk", false), ("build_no_disk", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let products = builder
                    .build(
                        "hello.json",
                        &BuildOptions {
                            no_disk,
                            force: true,
                            ..Default::default()
                        },
                    )
                    .unwrap();
                products.jobs.len()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

criterion_group!(benches, bench_build_outputs);
criterion_main!(benches);
