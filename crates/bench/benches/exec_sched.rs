//! Executor-refactor regression gate: the event-channel scheduler
//! (`run_scheduler` + `LocalRunner`) against a compact replica of the
//! pre-refactor Condvar worker pool, on the same 64-task layered graph
//! with identical CPU-bound task bodies.
//!
//! The scheduler adds a dispatch loop, per-task fingerprints, state-db
//! bookkeeping, and an event channel on top of raw pooling; this bench
//! asserts all of that costs no more than 5% wall-clock on a realistic
//! task mix, and records the measurement in `BENCH_exec.json`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_depgraph::{ExecOptions, Graph, StateDb, Task};

/// 8 layers of 8 tasks: each task depends on two tasks of the previous
/// layer, the dependency shape of an inheritance chain fan-out.
const LAYERS: usize = 8;
const WIDTH: usize = 8;
const TASKS: usize = LAYERS * WIDTH;
const THREADS: usize = 4;
/// Spin iterations per task; sized so one task runs for a few
/// milliseconds — still orders of magnitude shorter than a real level
/// build, so the per-task overhead this gate measures is overstated, not
/// hidden, relative to production builds.
const WORK: u64 = 3_000_000;
const RUNS: usize = 7;

/// Deterministic busy work standing in for image assembly.
fn spin(seed: u64) {
    let mut acc = seed;
    for i in 0..WORK {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc);
}

/// The task grid as (id, dep indices) pairs, in layer order.
fn grid() -> Vec<(String, Vec<usize>)> {
    let mut out = Vec::with_capacity(TASKS);
    for layer in 0..LAYERS {
        for i in 0..WIDTH {
            let id = format!("t{layer:02}_{i}");
            let deps = if layer == 0 {
                Vec::new()
            } else {
                let prev = (layer - 1) * WIDTH;
                vec![prev + i, prev + (i + 1) % WIDTH]
            };
            out.push((id, deps));
        }
    }
    out
}

/// The 64-task graph for the real scheduler.
fn sched_graph() -> Graph {
    let grid = grid();
    let mut g = Graph::new();
    for (idx, (id, deps)) in grid.iter().enumerate() {
        let seed = idx as u64 + 1;
        let mut task = Task::new(id.clone(), move || {
            spin(seed);
            Ok(())
        });
        for d in deps {
            task = task.dep(grid[*d].0.clone());
        }
        g.add(task).unwrap();
    }
    g
}

/// One run through the event-channel scheduler.
fn run_scheduler(g: &Graph) -> Duration {
    let mut db = StateDb::in_memory();
    let t0 = Instant::now();
    let report = g
        .execute_with(
            &mut db,
            &ExecOptions {
                threads: THREADS,
                ..ExecOptions::default()
            },
        )
        .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(report.executed.len(), TASKS);
    elapsed
}

/// Compact replica of the pre-refactor executor: a Condvar-signalled
/// worker pool over a shared ready queue with per-task dependency counts —
/// pure pooling, none of the scheduler's fingerprint/state/event work.
/// This is the baseline the refactor must stay within 5% of.
fn run_condvar_pool() -> Duration {
    struct State {
        ready: VecDeque<usize>,
        remaining: Vec<usize>,
        done: usize,
    }
    let grid = grid();
    let children: Vec<Vec<usize>> = {
        let mut c = vec![Vec::new(); TASKS];
        for (idx, (_, deps)) in grid.iter().enumerate() {
            for d in deps {
                c[*d].push(idx);
            }
        }
        c
    };
    let remaining: Vec<usize> = grid.iter().map(|(_, d)| d.len()).collect();
    let ready: VecDeque<usize> = remaining
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == 0)
        .map(|(i, _)| i)
        .collect();
    let shared = Arc::new((
        Mutex::new(State {
            ready,
            remaining,
            done: 0,
        }),
        Condvar::new(),
    ));

    let t0 = Instant::now();
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let children = children.clone();
            std::thread::spawn(move || {
                let (lock, cvar) = &*shared;
                loop {
                    let idx = {
                        let mut st = lock.lock().unwrap();
                        loop {
                            if st.done == TASKS {
                                return;
                            }
                            if let Some(idx) = st.ready.pop_front() {
                                break idx;
                            }
                            st = cvar.wait(st).unwrap();
                        }
                    };
                    spin(idx as u64 + 1);
                    let mut st = lock.lock().unwrap();
                    st.done += 1;
                    for child in &children[idx] {
                        st.remaining[*child] -= 1;
                        if st.remaining[*child] == 0 {
                            st.ready.push_back(*child);
                        }
                    }
                    cvar.notify_all();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let elapsed = t0.elapsed();
    assert_eq!(shared.0.lock().unwrap().done, TASKS);
    elapsed
}

fn median(mut runs: Vec<Duration>) -> Duration {
    runs.sort();
    runs[runs.len() / 2]
}

fn bench_exec_sched(c: &mut Criterion) {
    let g = sched_graph();
    // Warm-up, then interleave the variants so drift hits both equally.
    run_condvar_pool();
    run_scheduler(&g);
    let mut pool_runs = Vec::with_capacity(RUNS);
    let mut sched_runs = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        pool_runs.push(run_condvar_pool());
        sched_runs.push(run_scheduler(&g));
    }
    let pool = median(pool_runs);
    let sched = median(sched_runs);
    let ratio = sched.as_secs_f64() / pool.as_secs_f64();
    println!("== exec_sched: event-channel scheduler vs pre-refactor pool ==");
    println!("  {TASKS}-task graph ({LAYERS}x{WIDTH}), {THREADS} threads, median of {RUNS}");
    println!("  condvar pool: {pool:?}");
    println!("  scheduler:    {sched:?}");
    println!("  ratio:        {ratio:.3}x");
    assert!(
        ratio <= 1.05,
        "the scheduler must stay within 5% of the raw pool \
         (scheduler {sched:?} vs pool {pool:?}, {ratio:.3}x)"
    );
    append_bench_json(pool, sched, ratio);

    let mut group = c.benchmark_group("exec_sched");
    group.sample_size(10);
    group.bench_function("condvar_pool_64", |b| b.iter(run_condvar_pool));
    group.bench_function("scheduler_64", |b| b.iter(|| run_scheduler(&g)));
    group.finish();
}

/// Appends this run's records to `BENCH_exec.json` (a JSON array) at the
/// workspace root, creating it on first run. Hand-rolled JSON: the build
/// environment is offline, so no serde.
fn append_bench_json(pool: Duration, sched: Duration, ratio: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_exec.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    for (variant, wall) in [("condvar_pool", pool), ("scheduler", sched)] {
        entries.push(format!(
            "{{\"unix_time\": {stamp}, \"bench\": \"exec_sched\", \
             \"variant\": \"{variant}\", \"tasks\": {TASKS}, \
             \"threads\": {THREADS}, \"wall_ns\": {}, \
             \"sched_pool_ratio\": {ratio:.3}}}",
            wall.as_nanos()
        ));
    }
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_exec_sched);
criterion_main!(benches);
