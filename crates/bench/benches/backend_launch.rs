//! Backend launch throughput across the unified `Simulator` registry: the
//! same built artifacts launched on every backend (`qemu`, `spike`, `rtl`),
//! timed head to head. Appends one record per backend per run to
//! `BENCH_backends.json` at the workspace root so the numbers accumulate a
//! trajectory across commits.

use marshal_bench::{builder_in, criterion_group, criterion_main, scratch, Criterion};
use marshal_core::launch::load_artifacts;
use marshal_core::simulator::{simulator_for, BackendOptions};
use marshal_core::BuildOptions;
use marshal_sim_functional::LaunchMode;

/// One measured backend: mean wall-clock per launch and derived throughput.
struct Measured {
    backend: &'static str,
    mean_ns: u128,
    launches_per_sec: f64,
    instructions: u64,
}

fn bench_backend_launch(c: &mut Criterion) {
    let root = scratch("backend-launch");
    let mut builder = builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello workload");
    let job = &products.jobs[0];
    let loaded = load_artifacts(job).expect("load artifacts");

    // Print the head-to-head numbers once, then hand the same routine to
    // the harness for its sampled measurement.
    println!("== backend launch throughput (hello.json, identical artifacts) ==");
    let mut measured = Vec::new();
    for backend_name in ["qemu", "spike", "rtl"] {
        let backend = simulator_for(backend_name, &job.spec, &BackendOptions::default())
            .expect("registry backend");
        const SAMPLES: u32 = 10;
        // Warm-up, then timed samples.
        let warm = backend.run(&loaded, LaunchMode::Run).expect("launch");
        assert_eq!(warm.result.exit_code, 0, "{backend_name} runs clean");
        let t0 = std::time::Instant::now();
        for _ in 0..SAMPLES {
            let run = backend.run(&loaded, LaunchMode::Run).expect("launch");
            std::hint::black_box(run.result.instructions);
        }
        let mean = t0.elapsed() / SAMPLES;
        let per_sec = 1.0 / mean.as_secs_f64();
        println!(
            "  {backend_name:<6} mean {mean:>12?}  {per_sec:>8.1} launches/s  \
             ({} instructions retired)",
            warm.result.instructions
        );
        measured.push(Measured {
            backend: backend_name,
            mean_ns: mean.as_nanos(),
            launches_per_sec: per_sec,
            instructions: warm.result.instructions,
        });
    }
    append_bench_json(&measured);

    let mut group = c.benchmark_group("backend_launch");
    group.sample_size(10);
    for backend_name in ["qemu", "spike", "rtl"] {
        let backend = simulator_for(backend_name, &job.spec, &BackendOptions::default())
            .expect("registry backend");
        group.bench_function(backend_name, |b| {
            b.iter(|| {
                let run = backend.run(&loaded, LaunchMode::Run).expect("launch");
                run.result.instructions
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

/// Appends this run's records to `BENCH_backends.json` (a JSON array) at
/// the workspace root, creating it on first run. Hand-rolled JSON: the
/// build environment is offline, so no serde.
fn append_bench_json(measured: &[Measured]) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_backends.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        // The file is an array of flat objects, one per line; keep them.
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    for m in measured {
        entries.push(format!(
            "{{\"unix_time\": {stamp}, \"bench\": \"backend_launch\", \
             \"backend\": \"{}\", \"mean_ns\": {}, \"launches_per_sec\": {:.1}, \
             \"instructions\": {}}}",
            m.backend, m.mean_ns, m.launches_per_sec, m.instructions
        ));
    }
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_backend_launch);
criterion_main!(benches);
