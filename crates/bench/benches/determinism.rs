//! E10 (§IV-C): exact-cycle repeatability of cycle-exact simulation, and
//! the cost of a full boot + payload on each simulator tier (the paper's
//! functional-first methodology relies on the speed gap).

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_core::{BuildOptions, JobKind};
use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::{LaunchMode, Qemu, Spike};
use marshal_sim_rtl::{FireSim, HardwareConfig};

fn bench_determinism(c: &mut Criterion) {
    let root = marshal_bench::scratch("det");
    let mut builder = marshal_bench::builder_in(&root);
    let products = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let JobKind::Linux {
        boot_path,
        disk_path,
    } = &products.jobs[0].kind
    else {
        panic!()
    };
    let boot = BootBinary::from_bytes(&std::fs::read(boot_path).unwrap()).unwrap();
    let disk = FsImage::from_bytes(&std::fs::read(disk_path.as_ref().unwrap()).unwrap()).unwrap();

    // Print the §IV-C data: repeated cycle counts.
    let sim = FireSim::new(HardwareConfig::boom_tage());
    let counts: Vec<u64> = (0..3)
        .map(|_| {
            sim.launch(&boot, Some(&disk), LaunchMode::Run)
                .unwrap()
                .1
                .counters
                .cycles
        })
        .collect();
    println!("== §IV-C cycle-exact repeatability (coremark on boom-tage) ==");
    println!("  three runs: {counts:?}");
    assert!(counts.windows(2).all(|w| w[0] == w[1]));
    println!("  identical to the cycle: yes");

    let mut group = c.benchmark_group("simulation_tiers");
    group.sample_size(10);
    group.bench_function("qemu_functional", |b| {
        b.iter(|| {
            Qemu::new()
                .launch(&boot, Some(&disk), LaunchMode::Run)
                .unwrap()
                .instructions
        })
    });
    group.bench_function("spike_functional", |b| {
        b.iter(|| {
            Spike::new()
                .launch(&boot, Some(&disk), LaunchMode::Run)
                .unwrap()
                .instructions
        })
    });
    group.bench_function("firesim_cycle_exact", |b| {
        b.iter(|| {
            sim.launch(&boot, Some(&disk), LaunchMode::Run)
                .unwrap()
                .1
                .counters
                .cycles
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

criterion_group!(benches, bench_determinism);
criterion_main!(benches);
