//! E5 (Fig. 5): the PFA latency microbenchmark — per-step latency of a
//! remote page fault, software-paging baseline vs. the accelerator.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_sim_rtl::pfa::{RemoteMemory, RemoteMode, RemoteTimings};

const PAGE: u64 = 4096;

fn bench_pfa(c: &mut Criterion) {
    let timings = RemoteTimings::default();

    // Print the Fig. 5 data.
    let breakdown = |mode: RemoteMode| {
        let mut mem = RemoteMemory::new(mode, timings, PAGE);
        for i in 0..64u64 {
            mem.access(i * PAGE);
        }
        mem.stats()
    };
    let sw = breakdown(RemoteMode::SoftwarePaging);
    let hw = breakdown(RemoteMode::Pfa);
    println!("== Fig. 5: remote page fault latency breakdown (cycles/fault) ==");
    println!("{:>16} {:>16} {:>8}", "step", "sw-paging", "pfa");
    for ((step, s), (_, h)) in sw.step_breakdown().iter().zip(hw.step_breakdown().iter()) {
        println!("{step:>16} {s:>16} {h:>8}");
    }
    println!(
        "{:>16} {:>16} {:>8}   ({:.2}x)",
        "critical path",
        sw.mean_latency(),
        hw.mean_latency(),
        sw.mean_latency() as f64 / hw.mean_latency() as f64
    );

    // Criterion: cost of simulating a fault storm in each mode.
    let mut group = c.benchmark_group("pfa_latency");
    for (label, mode) in [
        ("software_paging_4k_faults", RemoteMode::SoftwarePaging),
        ("pfa_4k_faults", RemoteMode::Pfa),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut mem = RemoteMemory::new(mode, timings, PAGE);
                let mut total = 0u64;
                for i in 0..4096u64 {
                    total += mem.access(i * PAGE);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pfa);
criterion_main!(benches);
