//! The launch hot loop with boot checkpointing off vs on: the same built
//! artifacts launched cold (full firmware → kernel → init boot every time)
//! and checkpointed (boot restored from a verified snapshot, only the
//! payload re-executed). `test` fleets and cosim re-launch the same image
//! dozens of times, so amortizing the boot is the whole point.
//!
//! The measured workload is `fedora-base.json`: the boot-dominated case
//! (systemd init over a 2 GiB rootfs, no payload command) where the
//! checkpoint's O(memory-copy) restore is isolated from payload cost.
//! Payload-dominated launches are served by the other half of the fast
//! path — the predecoded-instruction cache and demand-paged user memory —
//! and are covered by `backend_launch`. The bench asserts the speedup
//! floor (10x full, 5x in `MARSHAL_BENCH_SMOKE=1` smoke mode) and appends
//! a checkpoint-off and a checkpoint-on row to `BENCH_backends.json`.

use marshal_bench::{builder_in, criterion_group, criterion_main, scratch, Criterion};
use marshal_core::launch::{load_artifacts, run_checkpointed};
use marshal_core::simulator::{simulator_for, BackendOptions};
use marshal_core::{BuildOptions, CheckpointStore};
use marshal_sim_functional::LaunchMode;
use marshal_trace::Recorder;

fn smoke() -> bool {
    std::env::var("MARSHAL_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn bench_launch_hot(c: &mut Criterion) {
    let (samples, rounds, floor) = if smoke() { (10, 2, 5.0) } else { (40, 3, 10.0) };
    let root = scratch("launch-hot");
    let mut builder = builder_in(&root);
    let products = builder
        .build("fedora-base.json", &BuildOptions::default())
        .expect("build fedora-base workload");
    let job = &products.jobs[0];
    let loaded = load_artifacts(job).expect("load artifacts");
    let backend =
        simulator_for("qemu", &job.spec, &BackendOptions::default()).expect("registry backend");
    let store = CheckpointStore::new(builder.workdir());
    let rec = Recorder::disabled();

    // Warm both sides; the first checkpointed launch boots cold and writes
    // the snapshot, so the timed loop below is pure restore.
    let cold = backend.run(&loaded, LaunchMode::Run).expect("cold launch");
    assert_eq!(cold.result.exit_code, 0, "payload runs clean");
    let (restored, _) = run_checkpointed(
        backend.as_ref(),
        &loaded,
        LaunchMode::Run,
        Some(&store),
        "bench",
        &rec,
    )
    .expect("capturing launch");
    // The restore must be bit-identical to the cold boot — speed without
    // that guarantee would be worthless.
    assert_eq!(cold.result.serial, restored.result.serial, "serial differs");
    assert_eq!(cold.result.exit_code, restored.result.exit_code);
    assert_eq!(cold.result.instructions, restored.result.instructions);

    // Interleave off/on rounds and keep each side's best round, so one
    // scheduler hiccup cannot fake (or mask) the speedup.
    let mut off_ns = u128::MAX;
    let mut on_ns = u128::MAX;
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..samples {
            let run = backend.run(&loaded, LaunchMode::Run).expect("cold launch");
            std::hint::black_box(run.result.instructions);
        }
        off_ns = off_ns.min((t0.elapsed() / samples).as_nanos());

        let t0 = std::time::Instant::now();
        for _ in 0..samples {
            let (run, warnings) = run_checkpointed(
                backend.as_ref(),
                &loaded,
                LaunchMode::Run,
                Some(&store),
                "bench",
                &rec,
            )
            .expect("restored launch");
            assert!(warnings.is_empty(), "unexpected warnings: {warnings:?}");
            std::hint::black_box(run.result.instructions);
        }
        on_ns = on_ns.min((t0.elapsed() / samples).as_nanos());
    }

    let speedup = off_ns as f64 / on_ns as f64;
    let mode = if smoke() { "smoke" } else { "full" };
    println!("== launch hot loop, boot checkpoint off vs on (fedora-base.json, qemu, {mode}) ==");
    println!("  checkpoint off  mean {off_ns:>9} ns/launch");
    println!("  checkpoint on   mean {on_ns:>9} ns/launch  ({speedup:.1}x)");
    assert!(
        speedup >= floor,
        "checkpoint speedup {speedup:.1}x is below the {floor}x floor"
    );
    append_bench_json(off_ns, on_ns, speedup);

    let mut group = c.benchmark_group("launch_hot");
    group.sample_size(10);
    group.bench_function("checkpoint_off", |b| {
        b.iter(|| {
            let run = backend.run(&loaded, LaunchMode::Run).expect("launch");
            run.result.instructions
        })
    });
    group.bench_function("checkpoint_on", |b| {
        b.iter(|| {
            let (run, _) = run_checkpointed(
                backend.as_ref(),
                &loaded,
                LaunchMode::Run,
                Some(&store),
                "bench",
                &rec,
            )
            .expect("launch");
            run.result.instructions
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

/// Appends this run's checkpoint-off and checkpoint-on rows to
/// `BENCH_backends.json` (same accumulating array as the other launch
/// benches). Hand-rolled JSON: the build environment is offline, so no
/// serde.
fn append_bench_json(off_ns: u128, on_ns: u128, speedup: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_backends.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    for (variant, mean_ns) in [("checkpoint-off", off_ns), ("checkpoint-on", on_ns)] {
        let per_sec = 1e9 / mean_ns as f64;
        entries.push(format!(
            "{{\"unix_time\": {stamp}, \"bench\": \"launch_hot\", \
             \"variant\": \"{variant}\", \"mean_ns\": {mean_ns}, \
             \"launches_per_sec\": {per_sec:.1}, \"speedup\": {speedup:.2}}}"
        ));
    }
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_launch_hot);
criterion_main!(benches);
