//! Recorder overhead on the launch hot path: the same built artifacts
//! launched with the run journal off and on, head to head. The journal's
//! cost budget is <5% of launch throughput (an mpsc send plus timestamp
//! per event, with the file I/O on a separate writer thread); the bench
//! asserts that budget and appends a `trace_overhead` record to
//! `BENCH_backends.json` alongside the `backend_launch` rows.

use marshal_bench::{builder_in, criterion_group, criterion_main, scratch, Criterion};
use marshal_core::launch::launch_job;
use marshal_core::{BuildOptions, LaunchOptions};
use marshal_trace::Recorder;

const SAMPLES: usize = 150;

fn bench_trace_overhead(c: &mut Criterion) {
    let root = scratch("trace-overhead");
    let mut builder = builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello workload");
    let opts = LaunchOptions::default();

    // One timed launch, in nanoseconds.
    let launch_ns = |builder: &marshal_core::Builder| -> u128 {
        let t0 = std::time::Instant::now();
        let out = launch_job(builder, &products, 0, &opts).expect("launch");
        std::hint::black_box(out.instructions);
        t0.elapsed().as_nanos()
    };

    // Warm both configurations, then interleave off/on launches pairwise
    // and compare the medians. The launch path is filesystem-bound, so
    // per-launch times have heavy right tails; a min- or mean-of-rounds
    // comparison lets one round's I/O spikes land on one side and has
    // historically produced nonsense ("journal on is 10% faster"). Pairing
    // cancels drift, the median ignores the tail.
    let recorder = Recorder::create(&root.join("work"), "bench", &[("workload", "hello.json")])
        .expect("create journal");
    builder.set_recorder(Recorder::disabled());
    let warm = launch_job(&builder, &products, 0, &opts).expect("launch");
    assert_eq!(warm.exit_code, 0, "payload runs clean");
    let mut off = Vec::with_capacity(SAMPLES);
    let mut on = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        builder.set_recorder(Recorder::disabled());
        off.push(launch_ns(&builder));
        builder.set_recorder(recorder.clone());
        on.push(launch_ns(&builder));
    }
    builder.set_recorder(Recorder::disabled());
    let finished = recorder.finish().expect("journal written");
    assert!(
        finished.events > SAMPLES as u64,
        "recorder-on launches must actually journal sim spans"
    );
    let median = |v: &mut Vec<u128>| -> u128 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    let off_ns = median(&mut off);
    let on_ns = median(&mut on);

    let delta_pct = (on_ns as f64 - off_ns as f64) * 100.0 / off_ns as f64;
    println!("== run-journal overhead on launch (hello.json, qemu) ==");
    println!("  recorder off  median {off_ns:>9} ns/launch");
    println!("  recorder on   median {on_ns:>9} ns/launch  (delta {delta_pct:+.2}%)");
    // Two-sided: a large negative delta means the measurement itself is
    // unstable (the recorder cannot make launches faster), and has in the
    // past produced a nonsense "journal on is 10% faster" record.
    assert!(
        delta_pct.abs() < 5.0,
        "recorder overhead {delta_pct:+.2}% is outside the ±5% budget \
         (negative deltas beyond noise mean the measurement is unstable)"
    );
    append_bench_json(off_ns, on_ns, delta_pct);

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for (label, rec) in [
        ("recorder_off", Recorder::disabled()),
        (
            "recorder_on",
            Recorder::create(&root.join("work"), "bench", &[]).expect("create journal"),
        ),
    ] {
        builder.set_recorder(rec);
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = launch_job(&builder, &products, 0, &opts).expect("launch");
                out.instructions
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

/// Appends this run's record to `BENCH_backends.json` (same accumulating
/// array as the `backend_launch` bench). Hand-rolled JSON: the build
/// environment is offline, so no serde.
fn append_bench_json(off_ns: u128, on_ns: u128, delta_pct: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_backends.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    entries.push(format!(
        "{{\"unix_time\": {stamp}, \"bench\": \"trace_overhead\", \
         \"recorder_off_ns\": {off_ns}, \"recorder_on_ns\": {on_ns}, \
         \"delta_pct\": {delta_pct:.2}}}"
    ));
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
