//! Recorder overhead on the launch hot path: the same built artifacts
//! launched with the run journal off and on, head to head. The journal's
//! cost budget is <5% of launch throughput (an mpsc send plus timestamp
//! per event, with the file I/O on a separate writer thread); the bench
//! asserts that budget and appends a `trace_overhead` record to
//! `BENCH_backends.json` alongside the `backend_launch` rows.

use marshal_bench::{builder_in, criterion_group, criterion_main, scratch, Criterion};
use marshal_core::launch::launch_job;
use marshal_core::{BuildOptions, LaunchOptions};
use marshal_trace::Recorder;

const SAMPLES: u32 = 60;
const ROUNDS: usize = 3;

fn bench_trace_overhead(c: &mut Criterion) {
    let root = scratch("trace-overhead");
    let mut builder = builder_in(&root);
    let products = builder
        .build("hello.json", &BuildOptions::default())
        .expect("build hello workload");
    let opts = LaunchOptions::default();

    // One timed round: mean nanoseconds per launch over SAMPLES launches.
    let round = |builder: &marshal_core::Builder| -> u128 {
        let warm = launch_job(builder, &products, 0, &opts).expect("launch");
        assert_eq!(warm.exit_code, 0, "payload runs clean");
        let t0 = std::time::Instant::now();
        for _ in 0..SAMPLES {
            let out = launch_job(builder, &products, 0, &opts).expect("launch");
            std::hint::black_box(out.instructions);
        }
        (t0.elapsed() / SAMPLES).as_nanos()
    };

    // Interleave off/on rounds and keep each configuration's best round,
    // so a scheduler hiccup in one round cannot fake (or mask) overhead.
    let recorder = Recorder::create(&root.join("work"), "bench", &[("workload", "hello.json")])
        .expect("create journal");
    let mut off_ns = u128::MAX;
    let mut on_ns = u128::MAX;
    for _ in 0..ROUNDS {
        builder.set_recorder(Recorder::disabled());
        off_ns = off_ns.min(round(&builder));
        builder.set_recorder(recorder.clone());
        on_ns = on_ns.min(round(&builder));
    }
    builder.set_recorder(Recorder::disabled());
    let finished = recorder.finish().expect("journal written");
    assert!(
        finished.events > u64::from(SAMPLES),
        "recorder-on rounds must actually journal sim spans"
    );

    let delta_pct = (on_ns as f64 - off_ns as f64) * 100.0 / off_ns as f64;
    println!("== run-journal overhead on launch (hello.json, qemu) ==");
    println!("  recorder off  mean {off_ns:>9} ns/launch");
    println!("  recorder on   mean {on_ns:>9} ns/launch  (delta {delta_pct:+.2}%)");
    assert!(
        delta_pct < 5.0,
        "recorder overhead {delta_pct:.2}% exceeds the 5% budget"
    );
    append_bench_json(off_ns, on_ns, delta_pct);

    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    for (label, rec) in [
        ("recorder_off", Recorder::disabled()),
        (
            "recorder_on",
            Recorder::create(&root.join("work"), "bench", &[]).expect("create journal"),
        ),
    ] {
        builder.set_recorder(rec);
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = launch_job(&builder, &products, 0, &opts).expect("launch");
                out.instructions
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

/// Appends this run's record to `BENCH_backends.json` (same accumulating
/// array as the `backend_launch` bench). Hand-rolled JSON: the build
/// environment is offline, so no serde.
fn append_bench_json(off_ns: u128, on_ns: u128, delta_pct: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_backends.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    entries.push(format!(
        "{{\"unix_time\": {stamp}, \"bench\": \"trace_overhead\", \
         \"recorder_off_ns\": {off_ns}, \"recorder_on_ns\": {on_ns}, \
         \"delta_pct\": {delta_pct:.2}}}"
    ));
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
