//! Image-store throughput over a deep inheritance chain: a large base image
//! extended by eight single-file levels, persisted level by level the way
//! `marshal build` does. Compares the flat baseline (serialize + hash +
//! rewrite the whole image per level) against the content-addressed store
//! (memoized Merkle fingerprints, blob dedup, manifest per level), cold and
//! after a leaf-only incremental change. Appends one record per phase per
//! strategy to `BENCH_image.json` at the workspace root.

use marshal_bench::{criterion_group, criterion_main, scratch, Criterion};
use marshal_depgraph::Fingerprint;
use marshal_image::{BlobStore, FsImage};
use marshal_qcheck::Rng;

/// Inheritance depth beyond the base; the acceptance bar is measured here.
const DEPTH: usize = 8;
/// Base payload: 24 x 256 KiB files, ~6 MiB — a small rootfs.
const BASE_FILES: usize = 24;
const BASE_FILE_SIZE: usize = 256 * 1024;
/// Each level adds ~1 KiB, the shape of a config-tweak child workload.
const LEVEL_FILE_SIZE: usize = 1024;

/// One measured (phase, strategy) cell: bytes hashed + bytes written, and
/// wall-clock for the persist pass.
struct Measured {
    phase: &'static str,
    strategy: &'static str,
    bytes: u64,
    nanos: u128,
}

fn base_image(rng: &mut Rng) -> FsImage {
    let mut img = FsImage::new();
    for i in 0..BASE_FILES {
        img.write_file(
            &format!("/usr/lib/base{i:02}.so"),
            &rng.bytes(BASE_FILE_SIZE),
        )
        .expect("write base file");
    }
    img.write_exec("/sbin/init", &rng.bytes(64 * 1024))
        .expect("write init");
    img
}

/// The chain: level 0 is the base; each deeper level clones its parent and
/// adds one small file, exactly like a child workload's overlay.
fn build_chain(base: &FsImage, rng: &mut Rng) -> Vec<FsImage> {
    let mut levels = Vec::with_capacity(DEPTH + 1);
    levels.push(base.clone());
    for d in 1..=DEPTH {
        let mut img = levels[d - 1].clone();
        img.write_file(
            &format!("/opt/level{d}/payload.bin"),
            &rng.bytes(LEVEL_FILE_SIZE),
        )
        .expect("write level file");
        levels.push(img);
    }
    levels
}

/// Flat baseline: each level is serialized in full, hashed in full for the
/// input-hash, and rewritten in full. Returns bytes hashed + bytes written.
fn persist_flat(levels: &[FsImage], dir: &std::path::Path) -> u64 {
    std::fs::create_dir_all(dir).expect("flat dir");
    let mut bytes = 0u64;
    for (i, img) in levels.iter().enumerate() {
        let flat = img.to_bytes();
        std::hint::black_box(Fingerprint::of(&flat));
        bytes += flat.len() as u64; // hashed
        std::fs::write(dir.join(format!("level{i}.img")), &flat).expect("write flat level");
        bytes += flat.len() as u64; // written
    }
    bytes
}

/// CAS store: each level becomes a manifest over deduped blobs; memoized
/// fingerprints mean only payloads new to the store are hashed. Returns
/// bytes hashed + bytes written (new blobs count for both, manifests for
/// both, shared blobs for neither).
fn persist_cas(levels: &[FsImage], store: &BlobStore, dir: &std::path::Path) -> u64 {
    std::fs::create_dir_all(dir).expect("cas dir");
    let mut bytes = 0u64;
    for (i, img) in levels.iter().enumerate() {
        std::hint::black_box(img.fingerprint());
        let (manifest, stats) = store.write_manifest(img).expect("write manifest");
        std::fs::write(dir.join(format!("level{i}.img")), &manifest).expect("write manifest file");
        bytes += 2 * stats.bytes_written + 2 * manifest.len() as u64;
    }
    bytes
}

fn bench_image_chain(c: &mut Criterion) {
    let root = scratch("image-chain");
    let mut rng = Rng::new(0x0131_a9e5);
    let base = base_image(&mut rng);
    let levels = build_chain(&base, &mut rng);

    println!(
        "== image chain persist (base ~{} MiB, depth {DEPTH}, +{LEVEL_FILE_SIZE} B per level) ==",
        (BASE_FILES * BASE_FILE_SIZE) >> 20
    );
    let store = BlobStore::new(root.join("objects"));
    let mut measured = Vec::new();
    let mut run = |phase: &'static str, strategy: &'static str, bytes: u64, nanos: u128| {
        println!(
            "  {phase:<12} {strategy:<5} {:>10.2} MiB hashed+written  {:>10.2} ms",
            bytes as f64 / (1024.0 * 1024.0),
            nanos as f64 / 1e6
        );
        measured.push(Measured {
            phase,
            strategy,
            bytes,
            nanos,
        });
    };

    // Cold: the whole chain persisted into empty directories.
    let t0 = std::time::Instant::now();
    let flat_cold = persist_flat(&levels, &root.join("flat"));
    run("cold", "flat", flat_cold, t0.elapsed().as_nanos());
    let t0 = std::time::Instant::now();
    let cas_cold = persist_cas(&levels, &store, &root.join("levels"));
    run("cold", "cas", cas_cold, t0.elapsed().as_nanos());

    // Incremental: one leaf-level file changes; only the leaf level's task
    // reruns, so only the leaf level is re-persisted.
    let mut leaf = levels[DEPTH].clone();
    leaf.write_file(
        &format!("/opt/level{DEPTH}/payload.bin"),
        &rng.bytes(LEVEL_FILE_SIZE),
    )
    .expect("mutate leaf");
    let leaf_only = std::slice::from_ref(&leaf);
    let t0 = std::time::Instant::now();
    let flat_inc = persist_flat(leaf_only, &root.join("flat"));
    run("incremental", "flat", flat_inc, t0.elapsed().as_nanos());
    let t0 = std::time::Instant::now();
    let cas_inc = persist_cas(leaf_only, &store, &root.join("levels"));
    run("incremental", "cas", cas_inc, t0.elapsed().as_nanos());

    let ratio = flat_inc as f64 / cas_inc as f64;
    println!("  incremental flat/cas byte ratio at depth {DEPTH}: {ratio:.1}x");
    assert!(
        ratio >= 5.0,
        "CAS must move >=5x fewer bytes than flat on a leaf change \
         (flat {flat_inc} B, cas {cas_inc} B, ratio {ratio:.1}x)"
    );
    append_bench_json(&measured, ratio);

    // Sampled timings: the hard_img input-hash site (memoized Merkle
    // fingerprint vs full serialize+hash) and the leaf-level persist.
    let mut group = c.benchmark_group("image_chain");
    group.sample_size(10);
    let leaf_img = &levels[DEPTH];
    group.bench_function("fingerprint_memoized", |b| {
        b.iter(|| leaf_img.fingerprint())
    });
    group.bench_function("fingerprint_serialize_hash", |b| {
        b.iter(|| Fingerprint::of(&leaf_img.to_bytes()))
    });
    group.bench_function("persist_leaf_flat", |b| {
        b.iter(|| persist_flat(leaf_only, &root.join("flat")))
    });
    group.bench_function("persist_leaf_cas", |b| {
        b.iter(|| persist_cas(leaf_only, &store, &root.join("levels")))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

/// Appends this run's records to `BENCH_image.json` (a JSON array) at the
/// workspace root, creating it on first run. Hand-rolled JSON: the build
/// environment is offline, so no serde.
fn append_bench_json(measured: &[Measured], incremental_ratio: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_image.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    for m in measured {
        entries.push(format!(
            "{{\"unix_time\": {stamp}, \"bench\": \"image_chain\", \
             \"phase\": \"{}\", \"strategy\": \"{}\", \"depth\": {DEPTH}, \
             \"bytes_hashed_written\": {}, \"wall_ns\": {}, \
             \"incremental_ratio\": {incremental_ratio:.1}}}",
            m.phase, m.strategy, m.bytes, m.nanos
        ));
    }
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_image_chain);
criterion_main!(benches);
