//! E9 (§III-B): the dependency tracking system "to avoid unnecessary
//! rebuilding" — full build vs. no-op rebuild vs. leaf-change rebuild.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_core::BuildOptions;

fn bench_incremental(c: &mut Criterion) {
    let root = marshal_bench::scratch("incr");
    let mut builder = marshal_bench::builder_in(&root);

    // Print the §III-B data: task counts per scenario.
    let full = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let noop = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    let src = root.join("workloads/coremark/src/coremark.s");
    let original = std::fs::read_to_string(&src).unwrap();
    std::fs::write(&src, original.replace("li      s4, 40", "li      s4, 41")).unwrap();
    let leaf = builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    std::fs::write(&src, &original).unwrap();
    builder
        .build("coremark.json", &BuildOptions::default())
        .unwrap();
    println!("== §III-B dependency tracking (tasks executed / total) ==");
    println!(
        "  full build:        {:>2} / {}",
        full.report.executed.len(),
        full.report.total()
    );
    println!(
        "  no-op rebuild:     {:>2} / {}",
        noop.report.executed.len(),
        noop.report.total()
    );
    println!(
        "  leaf-change:       {:>2} / {}",
        leaf.report.executed.len(),
        leaf.report.total()
    );

    let mut group = c.benchmark_group("incremental_build");
    group.sample_size(10);
    group.bench_function("noop_rebuild", |b| {
        b.iter(|| {
            let products = builder
                .build("coremark.json", &BuildOptions::default())
                .unwrap();
            assert!(products.report.executed.is_empty());
            products.jobs.len()
        })
    });
    group.bench_function("full_rebuild", |b| {
        b.iter(|| {
            let products = builder
                .build(
                    "coremark.json",
                    &BuildOptions {
                        force: true,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert!(!products.report.executed.is_empty());
            products.jobs.len()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(root);
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
