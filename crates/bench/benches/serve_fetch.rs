//! Artifact-distribution benchmark: cold vs. warm delta fetch of a
//! depth-8 inheritance chain from a `marshal serve` root.
//!
//! Cold: an empty client pool fetches every level — all manifests plus
//! every blob. Warm: after one leaf-level change on the server, the same
//! client fetches the new leaf — and because blobs are content-addressed
//! and batched by what the client is missing, only the changed leaf blob
//! crosses the wire. The delta ratio is the whole point of distributing
//! manifests instead of flat images.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_core::ImageStore;
use marshal_depgraph::Fingerprint;
use marshal_image::FsImage;
use marshal_netstore::server::ServeRoot;
use marshal_netstore::{LoopbackTransport, RemoteStore, RetryPolicy, Transport};

const DEPTH: usize = 8;
const FILE_BYTES: usize = 32 * 1024;

struct Measured {
    phase: &'static str,
    levels: u64,
    blobs: u64,
    bytes: u64,
    nanos: u128,
}

/// Synthetic but stable per-level input fingerprints, standing in for the
/// build's level-task input hashes.
fn input_fp(tag: &str) -> Fingerprint {
    Fingerprint::of(format!("serve-fetch-input:{tag}").as_bytes())
}

/// Populates a depth-8 chain in `workdir`: each level inherits the parent
/// image and adds one 32 KiB payload file, exactly like an inheritance
/// chain of workloads layering content.
fn populate_chain(workdir: &Path) -> FsImage {
    let store = ImageStore::new(workdir);
    let mut img = FsImage::new();
    img.mkdir_p("/data").unwrap();
    for level in 0..DEPTH {
        let payload = vec![level as u8 ^ 0xA5; FILE_BYTES];
        img.write_file(&format!("/data/level{level}.bin"), &payload)
            .unwrap();
        store
            .store_with_input(
                &format!("chain/l{level}"),
                Some(input_fp(&format!("l{level}"))),
                img.clone(),
            )
            .unwrap();
    }
    img
}

/// A client over an in-process loopback to `root` (the daemon's request
/// handler without sockets — the protocol work with zero network noise).
fn loopback_client(root: &Arc<ServeRoot>) -> RemoteStore {
    let root = Arc::clone(root);
    let factory: marshal_netstore::client::TransportFactory = Box::new(move || {
        Ok(Box::new(LoopbackTransport::new(Arc::clone(&root))) as Box<dyn Transport>)
    });
    RemoteStore::with_factory("loopback", factory, RetryPolicy::fast())
}

/// Fetches every chain level (plus `extra` leaf tags) into `client_work`,
/// returning what moved.
fn fetch_chain(
    root: &Arc<ServeRoot>,
    client_work: &Path,
    tags: &[String],
    phase: &'static str,
) -> Measured {
    let store = ImageStore::new(client_work);
    let client = loopback_client(root);
    let start = Instant::now();
    let mut levels = 0u64;
    for tag in tags {
        let manifest = client
            .fetch_level(store.blobs(), input_fp(tag))
            .expect("fetch")
            .expect("remote has the level");
        assert!(marshal_image::sniff_manifest(&manifest));
        levels += 1;
    }
    let nanos = start.elapsed().as_nanos();
    let s = client.summary();
    Measured {
        phase,
        levels,
        blobs: s.blobs_fetched,
        bytes: s.bytes_fetched,
        nanos,
    }
}

fn bench_serve_fetch(c: &mut Criterion) {
    let root_dir = marshal_bench::scratch("serve-fetch");
    let server_work = root_dir.join("server");
    let leaf = populate_chain(&server_work);
    let serve_root = Arc::new(ServeRoot::new(&server_work));

    let all_tags: Vec<String> = (0..DEPTH).map(|l| format!("l{l}")).collect();

    // Cold: empty pool, everything crosses the wire.
    let client_work = root_dir.join("client");
    let cold = fetch_chain(&serve_root, &client_work, &all_tags, "cold");
    assert_eq!(cold.levels, DEPTH as u64);
    assert!(cold.blobs >= DEPTH as u64, "one payload blob per level");

    // Change one leaf file on the server and publish the new leaf level.
    {
        let store = ImageStore::new(&server_work);
        let mut changed = leaf;
        changed
            .write_file("/data/level7.bin", &vec![0x3Cu8; FILE_BYTES])
            .unwrap();
        store
            .store_with_input("chain/l7b", Some(input_fp("l7b")), changed)
            .unwrap();
    }

    // Warm: the client pool already holds everything except the changed
    // leaf payload — only that blob (plus the manifest) should move.
    let warm = fetch_chain(&serve_root, &client_work, &[String::from("l7b")], "warm");
    assert_eq!(
        warm.blobs, 1,
        "a one-file leaf change transfers exactly one blob"
    );
    assert!(
        warm.bytes < cold.bytes / 4,
        "delta fetch moves a fraction of the cold transfer \
         (warm {} vs cold {} bytes)",
        warm.bytes,
        cold.bytes
    );

    let delta_ratio = cold.bytes as f64 / warm.bytes.max(1) as f64;
    println!("== serve_fetch: cold vs warm delta (depth-{DEPTH} chain) ==");
    println!("  phase   levels  blobs      bytes        wall");
    for m in [&cold, &warm] {
        println!(
            "  {:<7} {:>6} {:>6} {:>10} {:>9.3} ms",
            m.phase,
            m.levels,
            m.blobs,
            m.bytes,
            m.nanos as f64 / 1e6
        );
    }
    println!("  cold/warm byte ratio: {delta_ratio:.1}x");
    append_bench_json(&[cold, warm], delta_ratio);

    let mut group = c.benchmark_group("serve_fetch");
    group.sample_size(10);
    let mut fresh = 0u32;
    group.bench_function("cold_fetch_depth8", |b| {
        b.iter(|| {
            fresh += 1;
            let work = root_dir.join(format!("client-iter-{fresh}"));
            let m = fetch_chain(&serve_root, &work, &all_tags, "cold");
            let _ = std::fs::remove_dir_all(&work);
            m.bytes
        })
    });
    group.bench_function("warm_noop_fetch", |b| {
        b.iter(|| {
            // Pool already complete: manifests move, zero blobs.
            fetch_chain(&serve_root, &client_work, &all_tags, "warm").bytes
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(root_dir);
}

/// Appends this run's records to `BENCH_serve.json` (a JSON array) at the
/// workspace root, creating it on first run. Hand-rolled JSON: the build
/// environment is offline, so no serde.
fn append_bench_json(measured: &[Measured], delta_ratio: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_serve.json");
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entries: Vec<String> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(&path) {
        entries.extend(
            existing
                .lines()
                .map(str::trim)
                .filter(|l| l.starts_with('{'))
                .map(|l| l.trim_end_matches(',').to_owned()),
        );
    }
    for m in measured {
        entries.push(format!(
            "{{\"unix_time\": {stamp}, \"bench\": \"serve_fetch\", \
             \"phase\": \"{}\", \"depth\": {DEPTH}, \"levels_fetched\": {}, \
             \"blobs_fetched\": {}, \"bytes_fetched\": {}, \"wall_ns\": {}, \
             \"cold_warm_ratio\": {delta_ratio:.1}}}",
            m.phase, m.levels, m.blobs, m.bytes, m.nanos
        ));
    }
    let body = format!("[\n  {}\n]\n", entries.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("note: could not record {}: {e}", path.display());
    } else {
        println!("  recorded {} entries in {}", entries.len(), path.display());
    }
}

criterion_group!(benches, bench_serve_fetch);
criterion_main!(benches);
