//! E6 (Fig. 6): the branch-predictor comparison — the same benchmark
//! binaries timed under Gshare and TAGE (plus static baselines for
//! context), as in the paper's BOOM v2 vs. TAGE study.

use marshal_bench::{criterion_group, criterion_main, Criterion};
use marshal_isa::abi;
use marshal_isa::asm::assemble;
use marshal_sim_rtl::{BpredConfig, FireSim, HardwareConfig};
use marshal_workloads::intspeed;

fn bench_bpred(c: &mut Criterion) {
    // Print the Fig. 6 underlying data: cycles per predictor for a
    // predictor-sensitive subset of the suite.
    let subset = [
        "600.perlbench_s",
        "620.omnetpp_s",
        "641.leela_s",
        "648.exchange2_s",
    ];
    let predictors = [
        ("never", BpredConfig::NeverTaken),
        ("bimodal", BpredConfig::Bimodal { table_bits: 12 }),
        ("gshare", BpredConfig::default_gshare()),
        ("tage", BpredConfig::default_tage()),
    ];
    println!("== Fig. 6 data: cycles by predictor (same binaries) ==");
    print!("{:>18}", "benchmark");
    for (name, _) in &predictors {
        print!(" {name:>10}");
    }
    println!(" {:>12}", "tage/gshare");
    let sources = intspeed::benchmarks();
    for bench in subset {
        let source = &sources.iter().find(|(n, _)| *n == bench).unwrap().1;
        let exe = assemble(source, abi::USER_BASE).unwrap();
        let mut cycles = Vec::new();
        for (_, bp) in &predictors {
            let hw = HardwareConfig::boom_gshare().with_bpred(bp.clone());
            let (_, report) = FireSim::new(hw).launch_bare(&exe.to_bytes()).unwrap();
            cycles.push(report.counters.cycles);
        }
        print!("{bench:>18}");
        for cyc in &cycles {
            print!(" {cyc:>10}");
        }
        println!(" {:>12.4}", cycles[3] as f64 / cycles[2] as f64);
    }

    // Criterion: simulation throughput per predictor on one benchmark.
    let source = &sources.iter().find(|(n, _)| *n == "641.leela_s").unwrap().1;
    let exe = assemble(source, abi::USER_BASE).unwrap();
    let bin = exe.to_bytes();
    let mut group = c.benchmark_group("bpred_sweep");
    group.sample_size(10);
    for (name, bp) in predictors {
        let hw = HardwareConfig::boom_gshare().with_bpred(bp);
        group.bench_function(format!("leela_{name}"), |b| {
            b.iter(|| {
                let (_, report) = FireSim::new(hw.clone()).launch_bare(&bin).unwrap();
                report.counters.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bpred);
criterion_main!(benches);
