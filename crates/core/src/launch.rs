//! The `launch` command (§III-C): run a built workload in functional
//! simulation, collect its outputs, and run the post-run hook.

use std::path::PathBuf;

use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::{LaunchMode, Qemu, SimResult, Spike};

use crate::build::{BuildProducts, Builder, JobArtifacts, JobKind};
use crate::error::MarshalError;
use crate::output::{collect_outputs, load_hook_script, run_post_hook};
use crate::warnings::Warning;

/// Options for the `launch` command.
#[derive(Debug, Clone, Default)]
pub struct LaunchOptions {
    /// Guest watchdog budget (`--timeout-insts`): maximum guest
    /// instructions before a hung payload is terminated. `None` keeps the
    /// simulator default.
    pub timeout_insts: Option<u64>,
}

/// The result of launching one job.
#[derive(Debug, Clone)]
pub struct LaunchOutput {
    /// The job's qualified name.
    pub job: String,
    /// The full serial log.
    pub serial: String,
    /// The payload's exit code.
    pub exit_code: i64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Whether the guest watchdog terminated a hung payload. The serial
    /// log and whatever outputs the guest produced are still collected.
    pub timed_out: bool,
    /// Directory holding `uartlog` and collected outputs.
    pub job_dir: PathBuf,
    /// Non-fatal diagnostics (e.g. declared outputs a timed-out guest never
    /// wrote), in order. The CLI prints each once; the library itself never
    /// writes to stderr.
    pub warnings: Vec<Warning>,
}

/// Reads a job's built artifacts back from disk, verifying each against
/// its checksum sidecar (see [`crate::integrity`]).
///
/// # Errors
///
/// [`MarshalError::Other`] when artifacts are missing or malformed (run
/// `build` first); [`MarshalError::Corrupt`] when an artifact no longer
/// matches its recorded checksum (run `build --force` to rebuild).
pub fn load_artifacts(job: &JobArtifacts) -> Result<LoadedJob, MarshalError> {
    match &job.kind {
        JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot_bytes = crate::integrity::read_verified(boot_path)?;
            let boot = BootBinary::from_bytes(&boot_bytes)
                .map_err(|e| MarshalError::Other(format!("boot binary: {e}")))?;
            let disk = match disk_path {
                Some(p) => {
                    let bytes = crate::integrity::read_verified(p)?;
                    Some(
                        FsImage::from_bytes(&bytes)
                            .map_err(|e| MarshalError::Other(format!("disk image: {e}")))?,
                    )
                }
                None => None,
            };
            Ok(LoadedJob::Linux { boot, disk })
        }
        JobKind::Bare { bin_path } => {
            let bin = crate::integrity::read_verified(bin_path)?;
            Ok(LoadedJob::Bare { bin })
        }
    }
}

/// In-memory artifacts of a built job.
///
/// The `Linux` variant dominates in size and in frequency — boxing it would
/// add an allocation per job for no saving in the common case.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LoadedJob {
    /// Linux: boot binary + optional disk.
    Linux {
        /// The boot binary.
        boot: BootBinary,
        /// The disk image (None for diskless builds).
        disk: Option<FsImage>,
    },
    /// Bare-metal binary.
    Bare {
        /// MEXE bytes.
        bin: Vec<u8>,
    },
}

/// Runs one job in the functional simulator the workload selects: a custom
/// Spike when the `spike` option is set, QEMU otherwise. `opts.timeout_insts`
/// overrides the guest watchdog's instruction budget.
///
/// # Errors
///
/// Simulation and artifact errors.
pub fn simulate_job(job: &JobArtifacts, opts: &LaunchOptions) -> Result<SimResult, MarshalError> {
    let loaded = load_artifacts(job)?;
    let budget = opts.timeout_insts;
    let spike = |bin: &str| {
        let mut s = Spike::with_binary(bin).with_args(&job.spec.spike_args);
        if let Some(n) = budget {
            s = s.with_budget(n);
        }
        s
    };
    let qemu = || {
        let mut q = Qemu::new().with_args(&job.spec.qemu_args);
        if let Some(n) = budget {
            q = q.with_budget(n);
        }
        q
    };
    let result = match (&loaded, &job.spec.spike) {
        (LoadedJob::Linux { boot, disk }, Some(spike_bin)) => {
            spike(spike_bin).launch(boot, disk.as_ref(), LaunchMode::Run)?
        }
        (LoadedJob::Linux { boot, disk }, None) => {
            qemu().launch(boot, disk.as_ref(), LaunchMode::Run)?
        }
        (LoadedJob::Bare { bin }, Some(spike_bin)) => spike(spike_bin).launch_bare(bin)?,
        (LoadedJob::Bare { bin }, None) => qemu().launch_bare(bin)?,
    };
    Ok(result)
}

/// Launches one job of a built workload and collects its outputs.
///
/// # Errors
///
/// Simulation, collection, and I/O errors; bad `index`.
pub fn launch_job(
    builder: &Builder,
    products: &BuildProducts,
    index: usize,
    opts: &LaunchOptions,
) -> Result<LaunchOutput, MarshalError> {
    let job = products.jobs.get(index).ok_or_else(|| {
        MarshalError::Other(format!(
            "workload `{}` has no job index {index}",
            products.workload
        ))
    })?;
    let result = simulate_job(job, opts)?;
    let job_dir = builder.run_dir(&products.workload).join(&job.name);
    let mut warnings = Vec::new();
    if result.timed_out {
        // The watchdog killed the guest mid-run: salvage what it produced
        // (uartlog always, declared outputs when they exist) instead of
        // failing collection on outputs it never got to write.
        let missed = crate::output::salvage_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
        for path in &missed {
            warnings.push(Warning::new(
                job.name.clone(),
                format!("output `{path}` missing after watchdog timeout"),
            ));
        }
    } else {
        collect_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
    }
    // Functional simulation has no timing model: report instruction counts
    // as pseudo-cycles (like wall-clock on QEMU, only roughly meaningful).
    crate::output::write_stats(
        &job_dir,
        result.instructions,
        result.instructions,
        0,
        result.instructions,
        1000,
    )?;
    Ok(LaunchOutput {
        job: job.name.clone(),
        serial: result.serial,
        exit_code: result.exit_code,
        instructions: result.instructions,
        timed_out: result.timed_out,
        job_dir,
        warnings,
    })
}

/// The result of launching a whole workload (every job) plus the post-run
/// hook.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Per-job outputs, in job order.
    pub jobs: Vec<LaunchOutput>,
    /// The run's root directory.
    pub run_root: PathBuf,
    /// Lines printed by the post-run hook, if one ran.
    pub hook_log: Vec<String>,
}

/// Launches every job of a built workload, then runs the `post-run-hook`.
///
/// # Errors
///
/// First failing job's error, or hook errors.
pub fn launch_workload(
    builder: &Builder,
    products: &BuildProducts,
    opts: &LaunchOptions,
) -> Result<WorkloadRun, MarshalError> {
    let run_root = builder.run_dir(&products.workload);
    let mut jobs = Vec::with_capacity(products.jobs.len());
    for i in 0..products.jobs.len() {
        jobs.push(launch_job(builder, products, i, opts)?);
    }
    let hook_log = match &products.top_spec.post_run_hook {
        Some(hook) => {
            let (source, mut extra_args) = load_hook_script(hook, products.source_dir.as_deref())?;
            let mut args: Vec<String> = jobs.iter().map(|j| j.job.clone()).collect();
            args.append(&mut extra_args);
            run_post_hook(&source, &run_root, &args)?
        }
        None => Vec::new(),
    };
    Ok(WorkloadRun {
        jobs,
        run_root,
        hook_log,
    })
}
