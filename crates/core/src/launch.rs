//! The `launch` command (§III-C): run a built workload in functional
//! simulation, collect its outputs, and run the post-run hook.

use std::path::PathBuf;

use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::{LaunchMode, Qemu, SimResult, Spike};

use crate::build::{BuildProducts, Builder, JobArtifacts, JobKind};
use crate::error::MarshalError;
use crate::output::{collect_outputs, load_hook_script, run_post_hook};

/// The result of launching one job.
#[derive(Debug, Clone)]
pub struct LaunchOutput {
    /// The job's qualified name.
    pub job: String,
    /// The full serial log.
    pub serial: String,
    /// The payload's exit code.
    pub exit_code: i64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Directory holding `uartlog` and collected outputs.
    pub job_dir: PathBuf,
}

/// Reads a job's built artifacts back from disk.
///
/// # Errors
///
/// [`MarshalError::Other`] when artifacts are missing or malformed (run
/// `build` first).
pub fn load_artifacts(job: &JobArtifacts) -> Result<LoadedJob, MarshalError> {
    match &job.kind {
        JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot_bytes = std::fs::read(boot_path)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", boot_path.display())))?;
            let boot = BootBinary::from_bytes(&boot_bytes)
                .map_err(|e| MarshalError::Other(format!("boot binary: {e}")))?;
            let disk = match disk_path {
                Some(p) => {
                    let bytes = std::fs::read(p)
                        .map_err(|e| MarshalError::Io(format!("read {}: {e}", p.display())))?;
                    Some(
                        FsImage::from_bytes(&bytes)
                            .map_err(|e| MarshalError::Other(format!("disk image: {e}")))?,
                    )
                }
                None => None,
            };
            Ok(LoadedJob::Linux { boot, disk })
        }
        JobKind::Bare { bin_path } => {
            let bin = std::fs::read(bin_path)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", bin_path.display())))?;
            Ok(LoadedJob::Bare { bin })
        }
    }
}

/// In-memory artifacts of a built job.
#[derive(Debug, Clone)]
pub enum LoadedJob {
    /// Linux: boot binary + optional disk.
    Linux {
        /// The boot binary.
        boot: BootBinary,
        /// The disk image (None for diskless builds).
        disk: Option<FsImage>,
    },
    /// Bare-metal binary.
    Bare {
        /// MEXE bytes.
        bin: Vec<u8>,
    },
}

/// Runs one job in the functional simulator the workload selects: a custom
/// Spike when the `spike` option is set, QEMU otherwise.
///
/// # Errors
///
/// Simulation and artifact errors.
pub fn simulate_job(job: &JobArtifacts) -> Result<SimResult, MarshalError> {
    let loaded = load_artifacts(job)?;
    let result = match (&loaded, &job.spec.spike) {
        (LoadedJob::Linux { boot, disk }, Some(spike_bin)) => {
            Spike::with_binary(spike_bin)
                .with_args(&job.spec.spike_args)
                .launch(boot, disk.as_ref(), LaunchMode::Run)?
        }
        (LoadedJob::Linux { boot, disk }, None) => Qemu::new()
            .with_args(&job.spec.qemu_args)
            .launch(boot, disk.as_ref(), LaunchMode::Run)?,
        (LoadedJob::Bare { bin }, Some(spike_bin)) => {
            Spike::with_binary(spike_bin)
                .with_args(&job.spec.spike_args)
                .launch_bare(bin)?
        }
        (LoadedJob::Bare { bin }, None) => Qemu::new().launch_bare(bin)?,
    };
    Ok(result)
}

/// Launches one job of a built workload and collects its outputs.
///
/// # Errors
///
/// Simulation, collection, and I/O errors; bad `index`.
pub fn launch_job(
    builder: &Builder,
    products: &BuildProducts,
    index: usize,
) -> Result<LaunchOutput, MarshalError> {
    let job = products.jobs.get(index).ok_or_else(|| {
        MarshalError::Other(format!(
            "workload `{}` has no job index {index}",
            products.workload
        ))
    })?;
    let result = simulate_job(job)?;
    let job_dir = builder.run_dir(&products.workload).join(&job.name);
    collect_outputs(
        &job_dir,
        &result.serial,
        result.image.as_ref(),
        &job.spec.outputs,
    )?;
    // Functional simulation has no timing model: report instruction counts
    // as pseudo-cycles (like wall-clock on QEMU, only roughly meaningful).
    crate::output::write_stats(
        &job_dir,
        result.instructions,
        result.instructions,
        0,
        result.instructions,
        1000,
    )?;
    Ok(LaunchOutput {
        job: job.name.clone(),
        serial: result.serial,
        exit_code: result.exit_code,
        instructions: result.instructions,
        job_dir,
    })
}

/// The result of launching a whole workload (every job) plus the post-run
/// hook.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Per-job outputs, in job order.
    pub jobs: Vec<LaunchOutput>,
    /// The run's root directory.
    pub run_root: PathBuf,
    /// Lines printed by the post-run hook, if one ran.
    pub hook_log: Vec<String>,
}

/// Launches every job of a built workload, then runs the `post-run-hook`.
///
/// # Errors
///
/// First failing job's error, or hook errors.
pub fn launch_workload(
    builder: &Builder,
    products: &BuildProducts,
) -> Result<WorkloadRun, MarshalError> {
    let run_root = builder.run_dir(&products.workload);
    let mut jobs = Vec::with_capacity(products.jobs.len());
    for i in 0..products.jobs.len() {
        jobs.push(launch_job(builder, products, i)?);
    }
    let hook_log = match &products.top_spec.post_run_hook {
        Some(hook) => {
            let (source, mut extra_args) =
                load_hook_script(hook, products.source_dir.as_deref())?;
            let mut args: Vec<String> = jobs.iter().map(|j| j.job.clone()).collect();
            args.append(&mut extra_args);
            run_post_hook(&source, &run_root, &args)?
        }
        None => Vec::new(),
    };
    Ok(WorkloadRun {
        jobs,
        run_root,
        hook_log,
    })
}
