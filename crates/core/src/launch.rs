//! The `launch` command (§III-C): run a built workload on a simulator
//! backend, collect its outputs, and run the post-run hook.
//!
//! Backend selection goes through the [`crate::simulator`] registry:
//! `--sim <backend>` picks any registered backend, and the default is the
//! workload's own choice (custom Spike when the `spike` option is set,
//! QEMU otherwise).

use std::path::PathBuf;

use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_rtl::HardwareConfig;

use crate::build::{BuildProducts, Builder, JobArtifacts, JobKind};
use crate::error::MarshalError;
use crate::output::{collect_outputs, load_hook_script, run_post_hook};
use crate::simulator::{default_backend, simulator_for, BackendOptions, SimRun};
use crate::warnings::Warning;

/// Options for the `launch` command.
#[derive(Debug, Clone, Default)]
pub struct LaunchOptions {
    /// Guest watchdog budget (`--timeout-insts`): maximum guest
    /// instructions before a hung payload is terminated. `None` keeps the
    /// simulator default.
    pub timeout_insts: Option<u64>,
    /// Simulator backend (`--sim`): a name the [`crate::simulator`]
    /// registry resolves. `None` uses the workload's default backend.
    pub sim: Option<String>,
    /// Hardware configuration for the cycle-exact backend (`--hw`).
    pub hw: Option<HardwareConfig>,
}

impl LaunchOptions {
    /// The backend-construction options this launch implies.
    pub fn backend_options(&self) -> BackendOptions {
        BackendOptions {
            timeout_insts: self.timeout_insts,
            hw: self.hw.clone(),
        }
    }
}

/// The result of launching one job.
#[derive(Debug, Clone)]
pub struct LaunchOutput {
    /// The job's qualified name.
    pub job: String,
    /// The full serial log.
    pub serial: String,
    /// The payload's exit code.
    pub exit_code: i64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Whether the guest watchdog terminated a hung payload. The serial
    /// log and whatever outputs the guest produced are still collected.
    pub timed_out: bool,
    /// Directory holding `uartlog` and collected outputs.
    pub job_dir: PathBuf,
    /// Non-fatal diagnostics (e.g. declared outputs a timed-out guest never
    /// wrote), in order. The CLI prints each once; the library itself never
    /// writes to stderr.
    pub warnings: Vec<Warning>,
}

/// Reads a job's built artifacts back from disk, verifying each against
/// its checksum sidecar (see [`crate::integrity`]).
///
/// # Errors
///
/// [`MarshalError::Other`] when artifacts are missing or malformed (run
/// `build` first); [`MarshalError::Corrupt`] when an artifact no longer
/// matches its recorded checksum (run `build --force` to rebuild).
pub fn load_artifacts(job: &JobArtifacts) -> Result<LoadedJob, MarshalError> {
    match &job.kind {
        JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot_bytes = crate::integrity::read_verified(boot_path)?;
            let boot = BootBinary::from_bytes(&boot_bytes)
                .map_err(|e| MarshalError::Other(format!("boot binary: {e}")))?;
            let disk = match disk_path {
                Some(p) => {
                    let bytes = crate::integrity::read_verified(p)?;
                    Some(
                        FsImage::from_bytes(&bytes)
                            .map_err(|e| MarshalError::Other(format!("disk image: {e}")))?,
                    )
                }
                None => None,
            };
            Ok(LoadedJob::Linux { boot, disk })
        }
        JobKind::Bare { bin_path } => {
            let bin = crate::integrity::read_verified(bin_path)?;
            Ok(LoadedJob::Bare { bin })
        }
    }
}

/// In-memory artifacts of a built job.
///
/// The `Linux` variant dominates in size and in frequency — boxing it would
/// add an allocation per job for no saving in the common case.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LoadedJob {
    /// Linux: boot binary + optional disk.
    Linux {
        /// The boot binary.
        boot: BootBinary,
        /// The disk image (None for diskless builds).
        disk: Option<FsImage>,
    },
    /// Bare-metal binary.
    Bare {
        /// MEXE bytes.
        bin: Vec<u8>,
    },
}

/// Runs one job on the backend `opts.sim` names (the workload's default
/// backend when unset), with `opts.timeout_insts` overriding the guest
/// watchdog's instruction budget.
///
/// # Errors
///
/// Unknown backend names, simulation errors, and artifact errors.
pub fn simulate_job(job: &JobArtifacts, opts: &LaunchOptions) -> Result<SimRun, MarshalError> {
    let loaded = load_artifacts(job)?;
    let backend_name = opts
        .sim
        .as_deref()
        .unwrap_or_else(|| default_backend(&job.spec));
    let backend = simulator_for(backend_name, &job.spec, &opts.backend_options())?;
    backend.run(&loaded, marshal_sim_functional::LaunchMode::Run)
}

/// Launches one job of a built workload and collects its outputs.
///
/// # Errors
///
/// Simulation, collection, and I/O errors; bad `index`.
pub fn launch_job(
    builder: &Builder,
    products: &BuildProducts,
    index: usize,
    opts: &LaunchOptions,
) -> Result<LaunchOutput, MarshalError> {
    let job = products.jobs.get(index).ok_or_else(|| {
        MarshalError::Other(format!(
            "workload `{}` has no job index {index}",
            products.workload
        ))
    })?;
    let rec = builder.recorder();
    let backend_name = opts
        .sim
        .as_deref()
        .unwrap_or_else(|| default_backend(&job.spec))
        .to_owned();
    let span = rec.sim_span(&backend_name, &job.name);
    let run = simulate_job(job, opts);
    match &run {
        Ok(r) => span.end_with(&[
            ("outcome", if r.result.timed_out { "timeout" } else { "ok" }),
            ("exit_code", &r.result.exit_code.to_string()),
            ("instructions", &r.result.instructions.to_string()),
            ("uartlog_bytes", &r.result.serial.len().to_string()),
        ]),
        Err(_) => span.end_with(&[("outcome", "error")]),
    }
    let run = run?;
    let result = run.result;
    if result.timed_out {
        rec.watchdog_fired(&job.name, result.instructions);
    }
    let job_dir = builder.run_dir(&products.workload).join(&job.name);
    let mut warnings = Vec::new();
    if result.timed_out {
        // The watchdog killed the guest mid-run: salvage what it produced
        // (uartlog always, declared outputs when they exist) instead of
        // failing collection on outputs it never got to write.
        let missed = crate::output::salvage_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
        for path in &missed {
            warnings.push(Warning::with_code(
                job.name.clone(),
                format!("output `{path}` missing after watchdog timeout"),
                "watchdog-missing-output",
            ));
        }
    } else {
        collect_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
    }
    match &run.report {
        // The cycle-exact backend reports real timing.
        Some(report) => crate::output::write_stats(
            &job_dir,
            report.counters.cycles,
            report.counters.user_cycles,
            report.counters.kernel_cycles,
            report.counters.instructions,
            report.freq_mhz,
        )?,
        // Functional simulation has no timing model: report instruction
        // counts as pseudo-cycles (like wall-clock on QEMU, only roughly
        // meaningful).
        None => crate::output::write_stats(
            &job_dir,
            result.instructions,
            result.instructions,
            0,
            result.instructions,
            1000,
        )?,
    }
    Ok(LaunchOutput {
        job: job.name.clone(),
        serial: result.serial,
        exit_code: result.exit_code,
        instructions: result.instructions,
        timed_out: result.timed_out,
        job_dir,
        warnings,
    })
}

/// The result of launching a whole workload (every job) plus the post-run
/// hook.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Per-job outputs, in job order.
    pub jobs: Vec<LaunchOutput>,
    /// The run's root directory.
    pub run_root: PathBuf,
    /// Lines printed by the post-run hook, if one ran.
    pub hook_log: Vec<String>,
}

/// Launches every job of a built workload, then runs the `post-run-hook`.
///
/// # Errors
///
/// First failing job's error, or hook errors.
pub fn launch_workload(
    builder: &Builder,
    products: &BuildProducts,
    opts: &LaunchOptions,
) -> Result<WorkloadRun, MarshalError> {
    let run_root = builder.run_dir(&products.workload);
    let mut jobs = Vec::with_capacity(products.jobs.len());
    for i in 0..products.jobs.len() {
        jobs.push(launch_job(builder, products, i, opts)?);
    }
    let hook_log = match &products.top_spec.post_run_hook {
        Some(hook) => {
            let (source, mut extra_args) = load_hook_script(hook, products.source_dir.as_deref())?;
            let mut args: Vec<String> = jobs.iter().map(|j| j.job.clone()).collect();
            args.append(&mut extra_args);
            run_post_hook(&source, &run_root, &args)?
        }
        None => Vec::new(),
    };
    Ok(WorkloadRun {
        jobs,
        run_root,
        hook_log,
    })
}
