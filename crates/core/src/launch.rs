//! The `launch` command (§III-C): run a built workload on a simulator
//! backend, collect its outputs, and run the post-run hook.
//!
//! Backend selection goes through the [`crate::simulator`] registry:
//! `--sim <backend>` picks any registered backend, and the default is the
//! workload's own choice (custom Spike when the `spike` option is set,
//! QEMU otherwise).

use std::path::PathBuf;

use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_sim_functional::LaunchMode;
use marshal_sim_rtl::HardwareConfig;
use marshal_trace::Recorder;

use crate::build::{BuildProducts, Builder, JobArtifacts, JobKind};
use crate::checkpoint::{checkpoint_key, CheckpointLoad, CheckpointStore};
use crate::error::MarshalError;
use crate::imagestore::PoolPin;
use crate::output::{collect_outputs, load_hook_script, run_post_hook};
use crate::simulator::{default_backend, simulator_for, BackendOptions, SimRun, Simulator};
use crate::warnings::{Severity, Warning};

/// Options for the `launch` command.
#[derive(Debug, Clone, Default)]
pub struct LaunchOptions {
    /// Guest watchdog budget (`--timeout-insts`): maximum guest
    /// instructions before a hung payload is terminated. `None` keeps the
    /// simulator default.
    pub timeout_insts: Option<u64>,
    /// Simulator backend (`--sim`): a name the [`crate::simulator`]
    /// registry resolves. `None` uses the workload's default backend.
    pub sim: Option<String>,
    /// Hardware configuration for the cycle-exact backend (`--hw`).
    pub hw: Option<HardwareConfig>,
    /// Disable boot checkpointing (`--no-checkpoint`): always boot cold
    /// and never write a snapshot. The escape hatch when a checkpoint is
    /// suspected of masking a boot-path change.
    pub no_checkpoint: bool,
}

impl LaunchOptions {
    /// The backend-construction options this launch implies.
    pub fn backend_options(&self) -> BackendOptions {
        BackendOptions {
            timeout_insts: self.timeout_insts,
            hw: self.hw.clone(),
        }
    }
}

/// The result of launching one job.
#[derive(Debug, Clone)]
pub struct LaunchOutput {
    /// The job's qualified name.
    pub job: String,
    /// The full serial log.
    pub serial: String,
    /// The payload's exit code.
    pub exit_code: i64,
    /// Guest instructions executed.
    pub instructions: u64,
    /// Whether the guest watchdog terminated a hung payload. The serial
    /// log and whatever outputs the guest produced are still collected.
    pub timed_out: bool,
    /// Directory holding `uartlog` and collected outputs.
    pub job_dir: PathBuf,
    /// Non-fatal diagnostics (e.g. declared outputs a timed-out guest never
    /// wrote), in order. The CLI prints each once; the library itself never
    /// writes to stderr.
    pub warnings: Vec<Warning>,
}

/// Reads a job's built artifacts back from disk, verifying each against
/// its checksum sidecar (see [`crate::integrity`]).
///
/// # Errors
///
/// [`MarshalError::Other`] when artifacts are missing or malformed (run
/// `build` first); [`MarshalError::Corrupt`] when an artifact no longer
/// matches its recorded checksum (run `build --force` to rebuild).
pub fn load_artifacts(job: &JobArtifacts) -> Result<LoadedJob, MarshalError> {
    match &job.kind {
        JobKind::Linux {
            boot_path,
            disk_path,
        } => {
            let boot_bytes = crate::integrity::read_verified(boot_path)?;
            let boot = BootBinary::from_bytes(&boot_bytes)
                .map_err(|e| MarshalError::Other(format!("boot binary: {e}")))?;
            let disk = match disk_path {
                Some(p) => {
                    let bytes = crate::integrity::read_verified(p)?;
                    Some(
                        FsImage::from_bytes(&bytes)
                            .map_err(|e| MarshalError::Other(format!("disk image: {e}")))?,
                    )
                }
                None => None,
            };
            Ok(LoadedJob::Linux { boot, disk })
        }
        JobKind::Bare { bin_path } => {
            let bin = crate::integrity::read_verified(bin_path)?;
            Ok(LoadedJob::Bare { bin })
        }
    }
}

/// In-memory artifacts of a built job.
///
/// The `Linux` variant dominates in size and in frequency — boxing it would
/// add an allocation per job for no saving in the common case.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum LoadedJob {
    /// Linux: boot binary + optional disk.
    Linux {
        /// The boot binary.
        boot: BootBinary,
        /// The disk image (None for diskless builds).
        disk: Option<FsImage>,
    },
    /// Bare-metal binary.
    Bare {
        /// MEXE bytes.
        bin: Vec<u8>,
    },
}

/// Runs loaded artifacts through a backend with boot checkpointing: a
/// verified checkpoint for the (backend config, boot, disk) key skips the
/// boot phase; an eligible cold boot writes a fresh checkpoint for later
/// launches. With `store` = `None` (or for bare jobs) this is exactly
/// [`Simulator::run`].
///
/// Checkpoint damage is never fatal — a corrupt file is quarantined, the
/// boot runs cold, and the returned warnings say so. At worst a checkpoint
/// costs one cold boot; it can never change an answer.
///
/// # Errors
///
/// Simulation errors ([`MarshalError::Sim`]), exactly as an uncheckpointed
/// run would report them.
pub fn run_checkpointed(
    backend: &dyn Simulator,
    loaded: &LoadedJob,
    mode: LaunchMode,
    store: Option<&CheckpointStore>,
    context: &str,
    rec: &Recorder,
) -> Result<(SimRun, Vec<Warning>), MarshalError> {
    let (Some(store), LoadedJob::Linux { boot, disk }, LaunchMode::Run) = (store, loaded, mode)
    else {
        return Ok((backend.run(loaded, mode)?, Vec::new()));
    };
    let boot_fp = boot.fingerprint();
    let disk_fp = disk.as_ref().map(FsImage::fingerprint);
    let key = checkpoint_key(backend.config_fingerprint(), boot_fp, disk_fp);
    let key_text = key.to_string();
    let mut warnings = Vec::new();
    let span = rec.span(
        "checkpoint-restore",
        &[("key", &key_text), ("job", context)],
    );
    let (resume, outcome) = match store.load(key) {
        CheckpointLoad::Hit(snap) => (Some(snap), "hit"),
        CheckpointLoad::Miss => (None, "miss"),
        CheckpointLoad::Corrupt {
            quarantined,
            detail,
        } => {
            warnings.push(
                Warning::with_code(
                    context.to_owned(),
                    format!(
                        "boot checkpoint failed verification ({detail}); quarantined to {} \
                         and booting cold",
                        quarantined.display()
                    ),
                    "checkpoint-corrupt",
                )
                .severity(Severity::Degraded),
            );
            (None, "corrupt")
        }
    };
    span.end_with(&[("outcome", outcome)]);
    rec.instant(
        &format!("checkpoint-{outcome}"),
        &[("key", &key_text), ("job", context)],
    );
    let (run, captured) = backend.run_resumed(loaded, mode, resume.as_ref())?;
    if let Some(snap) = &captured {
        match store.save(key, boot_fp, disk_fp, snap) {
            Ok(()) => rec.instant("checkpoint-saved", &[("key", &key_text), ("job", context)]),
            Err(e) => warnings.push(Warning::with_code(
                context.to_owned(),
                format!("boot checkpoint not saved: {e}"),
                "checkpoint-write-failed",
            )),
        }
    }
    Ok((run, warnings))
}

/// Runs one job on the backend `opts.sim` names (the workload's default
/// backend when unset), with `opts.timeout_insts` overriding the guest
/// watchdog's instruction budget.
///
/// # Errors
///
/// Unknown backend names, simulation errors, and artifact errors.
pub fn simulate_job(job: &JobArtifacts, opts: &LaunchOptions) -> Result<SimRun, MarshalError> {
    simulate_job_with(job, opts, None, &Recorder::disabled()).map(|(run, _)| run)
}

/// [`simulate_job`] with an optional checkpoint store and a recorder for
/// checkpoint hit/miss instants.
///
/// # Errors
///
/// See [`simulate_job`].
pub fn simulate_job_with(
    job: &JobArtifacts,
    opts: &LaunchOptions,
    store: Option<&CheckpointStore>,
    rec: &Recorder,
) -> Result<(SimRun, Vec<Warning>), MarshalError> {
    let loaded = load_artifacts(job)?;
    let backend_name = opts
        .sim
        .as_deref()
        .unwrap_or_else(|| default_backend(&job.spec));
    let backend = simulator_for(backend_name, &job.spec, &opts.backend_options())?;
    run_checkpointed(
        backend.as_ref(),
        &loaded,
        LaunchMode::Run,
        store,
        &job.name,
        rec,
    )
}

/// Launches one job of a built workload and collects its outputs.
///
/// # Errors
///
/// Simulation, collection, and I/O errors; bad `index`.
pub fn launch_job(
    builder: &Builder,
    products: &BuildProducts,
    index: usize,
    opts: &LaunchOptions,
) -> Result<LaunchOutput, MarshalError> {
    let job = products.jobs.get(index).ok_or_else(|| {
        MarshalError::Other(format!(
            "workload `{}` has no job index {index}",
            products.workload
        ))
    })?;
    let rec = builder.recorder();
    let backend_name = opts
        .sim
        .as_deref()
        .unwrap_or_else(|| default_backend(&job.spec))
        .to_owned();
    let store = (!opts.no_checkpoint).then(|| CheckpointStore::new(builder.workdir()));
    // Pin the checkpoint directory while this launch may read or write it,
    // so a concurrent `marshal clean` defers pruning (blob-pool semantics).
    let _pin = store.as_ref().and_then(|s| PoolPin::acquire(s.dir()).ok());
    let span = rec.sim_span(&backend_name, &job.name);
    let run = simulate_job_with(job, opts, store.as_ref(), rec);
    match &run {
        Ok((r, _)) => span.end_with(&[
            ("outcome", if r.result.timed_out { "timeout" } else { "ok" }),
            ("exit_code", &r.result.exit_code.to_string()),
            ("instructions", &r.result.instructions.to_string()),
            ("uartlog_bytes", &r.result.serial.len().to_string()),
        ]),
        Err(_) => span.end_with(&[("outcome", "error")]),
    }
    let (run, mut warnings) = run?;
    let result = run.result;
    if result.timed_out {
        rec.watchdog_fired(&job.name, result.instructions);
    }
    let job_dir = builder.run_dir(&products.workload).join(&job.name);
    if result.timed_out {
        // The watchdog killed the guest mid-run: salvage what it produced
        // (uartlog always, declared outputs when they exist) instead of
        // failing collection on outputs it never got to write.
        let missed = crate::output::salvage_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
        for path in &missed {
            warnings.push(Warning::with_code(
                job.name.clone(),
                format!("output `{path}` missing after watchdog timeout"),
                "watchdog-missing-output",
            ));
        }
    } else {
        collect_outputs(
            &job_dir,
            &result.serial,
            result.image.as_ref(),
            &job.spec.outputs,
        )?;
    }
    match &run.report {
        // The cycle-exact backend reports real timing.
        Some(report) => crate::output::write_stats(
            &job_dir,
            report.counters.cycles,
            report.counters.user_cycles,
            report.counters.kernel_cycles,
            report.counters.instructions,
            report.freq_mhz,
        )?,
        // Functional simulation has no timing model: report instruction
        // counts as pseudo-cycles (like wall-clock on QEMU, only roughly
        // meaningful).
        None => crate::output::write_stats(
            &job_dir,
            result.instructions,
            result.instructions,
            0,
            result.instructions,
            1000,
        )?,
    }
    Ok(LaunchOutput {
        job: job.name.clone(),
        serial: result.serial,
        exit_code: result.exit_code,
        instructions: result.instructions,
        timed_out: result.timed_out,
        job_dir,
        warnings,
    })
}

/// The result of launching a whole workload (every job) plus the post-run
/// hook.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// Per-job outputs, in job order.
    pub jobs: Vec<LaunchOutput>,
    /// The run's root directory.
    pub run_root: PathBuf,
    /// Lines printed by the post-run hook, if one ran.
    pub hook_log: Vec<String>,
}

/// Launches every job of a built workload, then runs the `post-run-hook`.
///
/// # Errors
///
/// First failing job's error, or hook errors.
pub fn launch_workload(
    builder: &Builder,
    products: &BuildProducts,
    opts: &LaunchOptions,
) -> Result<WorkloadRun, MarshalError> {
    let run_root = builder.run_dir(&products.workload);
    let mut jobs = Vec::with_capacity(products.jobs.len());
    for i in 0..products.jobs.len() {
        jobs.push(launch_job(builder, products, i, opts)?);
    }
    let hook_log = match &products.top_spec.post_run_hook {
        Some(hook) => {
            let (source, mut extra_args) = load_hook_script(hook, products.source_dir.as_deref())?;
            let mut args: Vec<String> = jobs.iter().map(|j| j.job.clone()).collect();
            args.append(&mut extra_args);
            run_post_hook(&source, &run_root, &args)?
        }
        None => Vec::new(),
    };
    Ok(WorkloadRun {
        jobs,
        run_root,
        hook_log,
    })
}
