//! The `scrub` command: verify the blob pool and level manifests,
//! quarantine corruption, and self-heal from a remote daemon.
//!
//! Blobs are content-addressed, so verification is just re-hashing: a blob
//! whose bytes no longer hash to its file name has rotted on disk. Scrub
//! moves such blobs into `objects/.quarantine/` (never deletes — the bytes
//! are evidence), re-fetches live ones from a configured `marshal serve`
//! remote, and removes any manifest left pointing at an unrecoverable blob
//! so the owning level rebuilds instead of wedging its consumers.

use std::collections::BTreeSet;
use std::path::Path;

use marshal_depgraph::Fingerprint;
use marshal_netstore::RemoteStore;

use crate::clean::{live_refs, pool_blobs, sweep_by_input};
use crate::error::MarshalError;
use crate::imagestore::ImageStore;
use crate::warnings::{Severity, Warning};
use marshal_trace::Recorder;

/// What a pool scrub found and fixed.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Blobs whose hashes were verified.
    pub blobs_checked: u64,
    /// Total payload bytes hashed.
    pub bytes_checked: u64,
    /// Blobs whose bytes no longer matched their fingerprint.
    pub corrupt: u64,
    /// Bytes moved into `objects/.quarantine/`.
    pub quarantined_bytes: u64,
    /// Corrupt blobs restored from the remote.
    pub healed: u64,
    /// Corrupt blobs that could not be restored (no remote, or the remote
    /// lacked them); their manifests were invalidated.
    pub unrecoverable: u64,
    /// Level manifests parsed (both `levels/` and `levels/by-input/`).
    pub manifests_checked: u64,
    /// Manifests removed: torn/malformed ones, plus manifests left
    /// referencing an unrecoverable blob.
    pub manifests_removed: u64,
    /// One warning per problem found, in discovery order.
    pub warnings: Vec<Warning>,
}

/// Scrubs the pool under `workdir`: every blob is re-hashed, every level
/// manifest re-parsed. Corrupt blobs are quarantined and — when `remote`
/// is given — re-fetched; manifests that end up unsatisfiable are removed
/// so their levels rebuild.
///
/// # Errors
///
/// [`MarshalError::Io`] when the workdir itself is unreadable. Individual
/// damaged files are never errors — finding them is the job.
pub fn scrub_pool(
    workdir: &Path,
    remote: Option<&RemoteStore>,
) -> Result<ScrubReport, MarshalError> {
    scrub_pool_with(workdir, remote, &Recorder::disabled())
}

/// [`scrub_pool`] with a run-journal recorder: the scrub runs under a
/// `scrub` span whose closing args carry the damage counts.
///
/// # Errors
///
/// Same as [`scrub_pool`].
pub fn scrub_pool_with(
    workdir: &Path,
    remote: Option<&RemoteStore>,
    recorder: &Recorder,
) -> Result<ScrubReport, MarshalError> {
    let span = recorder.span("scrub", &[]);
    let report = scrub_pool_inner(workdir, remote);
    match &report {
        Ok(r) => span.end_with(&[
            ("outcome", "ok"),
            ("blobs_checked", &r.blobs_checked.to_string()),
            ("corrupt", &r.corrupt.to_string()),
            ("healed", &r.healed.to_string()),
            ("manifests_removed", &r.manifests_removed.to_string()),
        ]),
        Err(_) => span.end_with(&[("outcome", "error")]),
    }
    report
}

fn scrub_pool_inner(
    workdir: &Path,
    remote: Option<&RemoteStore>,
) -> Result<ScrubReport, MarshalError> {
    let store = ImageStore::new(workdir);
    let mut report = ScrubReport::default();

    // --- manifests: parse both indexes, removing torn ones ---------------
    let mut dirs = vec![store.levels_dir().to_path_buf()];
    dirs.push(store.by_input_dir());
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if !marshal_image::sniff_manifest(&bytes) {
                // Legacy flat image files carry their own payload; blob
                // verification does not apply to them.
                continue;
            }
            report.manifests_checked += 1;
            if let Err(e) = marshal_image::manifest_refs(&bytes) {
                if std::fs::remove_file(&path).is_ok() {
                    report.manifests_removed += 1;
                    report.warnings.push(Warning::with_code(
                        "scrub",
                        format!(
                            "torn or malformed manifest {} removed ({e}); \
                             its level will rebuild",
                            path.display()
                        ),
                        "scrub-torn-manifest",
                    ));
                }
            }
        }
    }

    // --- blobs: re-hash everything, quarantine + heal mismatches ---------
    let live = live_refs(&store);
    let mut lost: BTreeSet<Fingerprint> = BTreeSet::new();
    for (path, fp) in pool_blobs(&store) {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        report.blobs_checked += 1;
        report.bytes_checked += bytes.len() as u64;
        if Fingerprint::of(&bytes) == fp {
            continue;
        }
        report.corrupt += 1;
        match store.blobs().quarantine(fp) {
            Ok((to, size)) => {
                report.quarantined_bytes += size;
                report.warnings.push(Warning::with_code(
                    "scrub",
                    format!(
                        "blob {fp} failed verification; quarantined to {}",
                        to.display()
                    ),
                    "scrub-corrupt-blob",
                ));
            }
            Err(e) => report.warnings.push(Warning::with_code(
                "scrub",
                format!("blob {fp} failed verification but could not be quarantined: {e}"),
                "scrub-corrupt-blob",
            )),
        }
        // Dead blobs (nothing references them) need no healing; a live one
        // is worth a round-trip when a remote is configured.
        let healed = live.contains(&fp)
            && remote
                .map(|r| r.fetch_blob(store.blobs(), fp).unwrap_or(false))
                .unwrap_or(false);
        if healed {
            report.healed += 1;
            report.warnings.push(
                Warning::with_code(
                    "scrub",
                    format!("blob {fp} re-fetched from remote"),
                    "scrub-healed",
                )
                .severity(Severity::Info),
            );
        } else if live.contains(&fp) {
            report.unrecoverable += 1;
            lost.insert(fp);
        }
    }

    // --- consequence pass: drop manifests referencing lost blobs ---------
    if !lost.is_empty() {
        if let Ok(entries) = std::fs::read_dir(store.levels_dir()) {
            for entry in entries.filter_map(Result::ok) {
                let path = entry.path();
                let Ok(bytes) = std::fs::read(&path) else {
                    continue;
                };
                let Ok(refs) = marshal_image::manifest_refs(&bytes) else {
                    continue;
                };
                if refs.iter().any(|fp| lost.contains(fp)) && std::fs::remove_file(&path).is_ok() {
                    report.manifests_removed += 1;
                    report.warnings.push(Warning::with_code(
                        "scrub",
                        format!(
                            "manifest {} references an unrecoverable blob; removed so \
                             the level rebuilds",
                            path.display()
                        ),
                        "scrub-lost-manifest",
                    ));
                }
            }
        }
    }
    // Keep the distribution index consistent with whatever survived.
    report.manifests_removed += sweep_by_input(&store) as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_image::FsImage;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-scrub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_pool_scrubs_clean() {
        let dir = tmpdir("clean");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/a", b"alpha").unwrap();
        img.write_file("/b", b"beta").unwrap();
        store.store("lvl", img).unwrap();
        let report = scrub_pool(&dir, None).unwrap();
        assert!(report.blobs_checked > 0);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.manifests_removed, 0);
        assert!(report.warnings.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_blob_quarantined_and_manifest_invalidated() {
        let dir = tmpdir("corrupt");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/a", b"precious payload bytes").unwrap();
        store.store("lvl", img).unwrap();
        let refs =
            marshal_image::manifest_refs(&std::fs::read(store.path_for("lvl")).unwrap()).unwrap();
        std::fs::write(store.blobs().blob_path(refs[0]), b"bitrot").unwrap();

        let report = scrub_pool(&dir, None).unwrap();
        assert_eq!(report.corrupt, 1);
        assert!(report.quarantined_bytes > 0, "quarantined bytes reported");
        assert_eq!(report.unrecoverable, 1, "no remote to heal from");
        assert!(
            report.manifests_removed >= 1,
            "referencing manifest removed"
        );
        assert!(!store.path_for("lvl").exists());
        assert!(store.blobs().quarantine_dir().is_dir());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_manifest_removed() {
        let dir = tmpdir("torn");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/a", b"payload").unwrap();
        store.store("lvl", img).unwrap();
        let path = store.path_for("lvl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let report = scrub_pool(&dir, None).unwrap();
        assert!(report.manifests_removed >= 1);
        assert!(!path.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
