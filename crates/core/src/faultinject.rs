//! Deterministic fault injection for robustness testing.
//!
//! Reproducibility is FireMarshal's core promise, and it must extend to
//! failure behaviour: a crash that depends on who corrupted what, when, is
//! not debuggable. This module corrupts build artifacts — boot binaries,
//! disk images, state databases — under a seeded PRNG, so every fault a
//! test (or `examples/bringup.rs`) injects replays bit-for-bit from its
//! seed.
//!
//! ```rust,no_run
//! use marshal_core::faultinject::{FaultKind, Injector};
//! let mut inj = Injector::new(0xdeadbeef);
//! inj.corrupt_file("work/images/hello/boot.bin".as_ref(), FaultKind::BitFlip)
//!     .unwrap();
//! ```

use std::path::Path;

use marshal_qcheck::Rng;

pub use marshal_netstore::{FaultPlan, FaultTransport, NetFaultKind};

/// What kind of damage to inflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one random bit.
    BitFlip,
    /// Cut the file at a random offset (a torn write).
    Truncate,
    /// Overwrite a random 16-byte window with random bytes.
    Garbage,
    /// Duplicate a random line (state-database style duplicate-entry
    /// corruption; on binary data this still just inserts bytes).
    DuplicateLine,
    /// A torn mid-run write: the file keeps its intact header but loses a
    /// random amount of its tail — what a crash during a guest-init image
    /// flush leaves behind. Unlike [`FaultKind::Truncate`], the cut always
    /// lands in the second half, modelling a write that got partway.
    TornWrite,
}

/// A record of one injected fault, for test diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was done.
    pub kind: FaultKind,
    /// Byte offset the fault was applied at.
    pub offset: usize,
    /// Size of the file before injection.
    pub original_len: usize,
}

/// A seeded fault injector: the same seed and call sequence injects the
/// same faults.
#[derive(Debug)]
pub struct Injector {
    rng: Rng,
}

impl Injector {
    /// Creates an injector from a seed.
    pub fn new(seed: u64) -> Injector {
        Injector {
            rng: Rng::new(seed),
        }
    }

    /// A network [`FaultPlan`] seeded from this injector's stream, so
    /// wire-level chaos replays from the same master seed as on-disk
    /// corruption.
    pub fn net_plan(&mut self, kind: NetFaultKind, skip_first: u64, max_faults: u64) -> FaultPlan {
        FaultPlan::new(kind, skip_first, max_faults, self.rng.next_u64())
    }

    /// Corrupts bytes in memory, returning what was done.
    ///
    /// Empty inputs gain garbage bytes instead (every fault kind must
    /// change the data — "no fault" would silently weaken tests).
    pub fn corrupt_bytes(&mut self, data: &mut Vec<u8>, kind: FaultKind) -> InjectedFault {
        let original_len = data.len();
        if data.is_empty() {
            data.extend_from_slice(&self.rng.bytes(8));
            return InjectedFault {
                kind,
                offset: 0,
                original_len,
            };
        }
        let offset = self.rng.range_usize(0, data.len());
        match kind {
            FaultKind::BitFlip => {
                let bit = 1u8 << self.rng.range_u64(0, 8);
                data[offset] ^= bit;
            }
            FaultKind::Truncate => {
                data.truncate(offset);
            }
            FaultKind::Garbage => {
                let window = self.rng.bytes(16);
                for (i, b) in window.iter().enumerate() {
                    if offset + i < data.len() {
                        data[offset + i] = *b;
                    }
                }
            }
            FaultKind::TornWrite => {
                // Keep at least half the file but drop at least one byte:
                // header intact, tail torn. (A 1-byte file just loses its
                // byte — every kind must change the data.)
                let lo = (data.len() / 2).max(1);
                let cut = if lo >= data.len() {
                    data.len() - 1
                } else {
                    self.rng.range_usize(lo, data.len())
                };
                data.truncate(cut);
                return InjectedFault {
                    kind,
                    offset: cut,
                    original_len,
                };
            }
            FaultKind::DuplicateLine => {
                // Duplicate the line containing `offset` (or a byte window
                // when the data has no newlines).
                let start = data[..offset]
                    .iter()
                    .rposition(|b| *b == b'\n')
                    .map_or(0, |p| p + 1);
                let end = data[offset..]
                    .iter()
                    .position(|b| *b == b'\n')
                    .map_or(data.len(), |p| offset + p + 1);
                let line: Vec<u8> = data[start..end].to_vec();
                let mut out = data[..end].to_vec();
                out.extend_from_slice(&line);
                out.extend_from_slice(&data[end..]);
                *data = out;
            }
        }
        InjectedFault {
            kind,
            offset,
            original_len,
        }
    }

    /// Corrupts a file on disk in place.
    ///
    /// # Errors
    ///
    /// Describes the failing path on I/O errors.
    pub fn corrupt_file(&mut self, path: &Path, kind: FaultKind) -> Result<InjectedFault, String> {
        let mut data = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let fault = self.corrupt_bytes(&mut data, kind);
        std::fs::write(path, data).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(fault)
    }

    /// Picks a fault kind at random (seeded, deterministic).
    pub fn any_kind(&mut self) -> FaultKind {
        *self.rng.pick(&[
            FaultKind::BitFlip,
            FaultKind::Truncate,
            FaultKind::Garbage,
            FaultKind::DuplicateLine,
            FaultKind::TornWrite,
        ])
    }

    /// Tears a serialized image (or any artifact) mid-write: the crash-
    /// during-`guest-init` scenario the init-system idempotency path must
    /// recover from.
    ///
    /// # Errors
    ///
    /// Describes the failing path on I/O errors.
    pub fn tear_image_write(&mut self, path: &Path) -> Result<InjectedFault, String> {
        self.corrupt_file(path, FaultKind::TornWrite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_is_deterministic() {
        let run = |seed: u64| {
            let mut inj = Injector::new(seed);
            let mut data = (0u8..200).collect::<Vec<u8>>();
            let faults = vec![
                inj.corrupt_bytes(&mut data, FaultKind::BitFlip),
                inj.corrupt_bytes(&mut data, FaultKind::Garbage),
                inj.corrupt_bytes(&mut data, FaultKind::Truncate),
            ];
            (data, faults)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn every_kind_changes_the_data() {
        let mut inj = Injector::new(7);
        for kind in [
            FaultKind::BitFlip,
            FaultKind::Truncate,
            FaultKind::Garbage,
            FaultKind::DuplicateLine,
            FaultKind::TornWrite,
        ] {
            for _ in 0..32 {
                let original: Vec<u8> = inj.rng.bytes_in(1, 64);
                let mut data = original.clone();
                inj.corrupt_bytes(&mut data, kind);
                assert_ne!(data, original, "{kind:?} must alter the bytes");
            }
        }
    }

    #[test]
    fn empty_input_still_faulted() {
        let mut inj = Injector::new(1);
        let mut data = Vec::new();
        inj.corrupt_bytes(&mut data, FaultKind::Truncate);
        assert!(!data.is_empty());
    }

    #[test]
    fn duplicate_line_duplicates_a_line() {
        let mut inj = Injector::new(3);
        let mut data = b"alpha\nbravo\ncharlie\n".to_vec();
        inj.corrupt_bytes(&mut data, FaultKind::DuplicateLine);
        let text = String::from_utf8(data).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        lines.dedup();
        assert_eq!(lines.len(), 3, "one line appears twice: {text:?}");
    }

    #[test]
    fn torn_write_keeps_header_loses_tail() {
        let mut inj = Injector::new(5);
        for _ in 0..64 {
            let original: Vec<u8> = inj.rng.bytes_in(2, 256);
            let mut data = original.clone();
            let fault = inj.corrupt_bytes(&mut data, FaultKind::TornWrite);
            assert!(data.len() < original.len(), "tail torn off");
            assert!(
                data.len() >= original.len() / 2,
                "header (first half) survives"
            );
            assert_eq!(data[..], original[..data.len()], "prefix is intact");
            assert_eq!(fault.offset, data.len());
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("marshal-fi-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("artifact");
        std::fs::write(&p, b"some artifact bytes").unwrap();
        let mut inj = Injector::new(11);
        let fault = inj.corrupt_file(&p, FaultKind::BitFlip).unwrap();
        assert_eq!(fault.original_len, 19);
        assert_ne!(std::fs::read(&p).unwrap(), b"some artifact bytes");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
