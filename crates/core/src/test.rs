//! The `test` command (§III-D): build, launch, and compare outputs against
//! a reference.
//!
//! "A complete comparison of outputs is not typically appropriate as there
//! may be irrelevant or non-deterministic output (e.g., time stamps).
//! Instead, FireMarshal is able to clean outputs and allows the reference
//! to contain only a subset of the expected output. A test that produces
//! that subset somewhere in its output is considered a success."

use std::path::Path;

use crate::build::{BuildOptions, BuildProducts, Builder};
use crate::error::MarshalError;
use crate::launch::{launch_workload, LaunchOptions};

/// The outcome of testing one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// The cleaned output contains the cleaned reference as an in-order
    /// subsequence.
    Pass,
    /// A reference line was not found; carries the first missing line.
    Fail {
        /// The job that failed.
        job: String,
        /// The first reference line that was not matched.
        missing: String,
    },
    /// The guest watchdog terminated a hung payload — a test failure with
    /// its own diagnostic, since the output is incomplete by construction.
    TimedOut {
        /// The job that hung.
        job: String,
        /// Instructions executed before the watchdog fired.
        instructions: u64,
    },
    /// The workload declares no `testing.refDir`.
    NoReference,
}

impl TestOutcome {
    /// Whether this outcome counts as success (passing or vacuous).
    pub fn passed(&self) -> bool {
        !matches!(
            self,
            TestOutcome::Fail { .. } | TestOutcome::TimedOut { .. }
        )
    }
}

/// Cleans a serial log for comparison: strips kernel timestamps
/// (`[ 12.345678] `), simulator banners, and trailing whitespace; drops
/// lines that are volatile across simulators (machine model, cycle
/// counts).
///
/// Banner prefixes come from the [`crate::simulator`] registry — every
/// backend declares the prefixes its banner lines carry, so adding a
/// backend can't silently break reference-output matching.
pub fn clean_output(log: &str) -> Vec<String> {
    clean_output_with(log, &crate::simulator::all_log_prefixes())
}

/// [`clean_output`] against an explicit banner-prefix set (the registry's
/// set in normal use; callers comparing against a single known backend can
/// pass just that backend's [`crate::simulator::Simulator::log_prefixes`]).
pub fn clean_output_with(log: &str, prefixes: &[&str]) -> Vec<String> {
    log.lines()
        .map(|line| {
            // Strip a dmesg timestamp prefix.
            if line.starts_with('[') {
                if let Some(end) = line.find("] ") {
                    if line[1..end]
                        .chars()
                        .all(|c| c.is_ascii_digit() || c == '.' || c == ' ')
                    {
                        return line[end + 2..].trim_end().to_owned();
                    }
                }
            }
            line.trim_end().to_owned()
        })
        .filter(|line| {
            !line.is_empty()
                && !prefixes.iter().any(|p| line.starts_with(p))
                && !line.starts_with("Machine model")
                && !volatile(line)
        })
        .collect()
}

/// Lines containing measurement values that legitimately differ between
/// functional and cycle-exact simulation.
fn volatile(line: &str) -> bool {
    [
        "cycles=",
        "cycles:",
        "instret=",
        "RealTime",
        "UserTime",
        "KernelTime",
    ]
    .iter()
    .any(|p| line.contains(p))
}

/// Whether `reference` appears as an in-order subsequence of `output`.
pub fn subset_match(reference: &[String], output: &[String]) -> Result<(), String> {
    let mut out_iter = output.iter();
    for needle in reference {
        if !out_iter.any(|line| line == needle) {
            return Err(needle.clone());
        }
    }
    Ok(())
}

/// Compares one job's serial log against a reference file.
///
/// # Errors
///
/// I/O failures reading the reference.
pub fn compare_with_reference(
    job: &str,
    serial: &str,
    reference_path: &Path,
) -> Result<TestOutcome, MarshalError> {
    let reference = std::fs::read_to_string(reference_path)
        .map_err(|e| MarshalError::Io(format!("reference {}: {e}", reference_path.display())))?;
    let cleaned_ref = clean_output(&reference);
    let cleaned_out = clean_output(serial);
    match subset_match(&cleaned_ref, &cleaned_out) {
        Ok(()) => Ok(TestOutcome::Pass),
        Err(missing) => Ok(TestOutcome::Fail {
            job: job.to_owned(),
            missing,
        }),
    }
}

/// Locates the reference log for a job inside `refDir`: prefers
/// `<refDir>/<job>/uartlog`, then `<refDir>/uartlog`.
pub fn reference_for_job(ref_dir: &Path, job: &str) -> Option<std::path::PathBuf> {
    let per_job = ref_dir.join(job).join(crate::output::SERIAL_LOG);
    if per_job.exists() {
        return Some(per_job);
    }
    let shared = ref_dir.join(crate::output::SERIAL_LOG);
    if shared.exists() {
        return Some(shared);
    }
    None
}

/// A full `test` run: per-job outcomes plus every non-fatal diagnostic the
/// build and launch phases produced.
///
/// Warnings arrive through two channels — whole-build warnings on
/// [`BuildProducts`] and per-job warnings on each launch output — and the
/// same condition can surface on both. The CLI renders them through one
/// deduplicating boundary (see [`crate::cli`]) so each is printed once.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// Per-job outcomes, in job order.
    pub outcomes: Vec<TestOutcome>,
    /// Build-phase warnings, in production order.
    pub build_warnings: Vec<crate::warnings::Warning>,
    /// Launch-phase warnings across all jobs, in production order.
    pub launch_warnings: Vec<crate::warnings::Warning>,
}

/// The `test` command: build + launch + compare every job.
///
/// # Errors
///
/// Build/launch errors. Comparison failures are reported in the outcomes,
/// not as errors.
pub fn test_workload(
    builder: &mut Builder,
    name: &str,
    options: &BuildOptions,
    launch_opts: &LaunchOptions,
) -> Result<Vec<TestOutcome>, MarshalError> {
    test_workload_report(builder, name, options, launch_opts).map(|r| r.outcomes)
}

/// [`test_workload`], keeping the build- and launch-phase warnings
/// alongside the outcomes.
///
/// # Errors
///
/// Same as [`test_workload`].
pub fn test_workload_report(
    builder: &mut Builder,
    name: &str,
    options: &BuildOptions,
    launch_opts: &LaunchOptions,
) -> Result<TestReport, MarshalError> {
    let products = builder.build(name, options)?;
    let run = launch_workload(builder, &products, launch_opts)?;
    let serials: Vec<(String, String)> = run
        .jobs
        .iter()
        .map(|j| (j.job.clone(), j.serial.clone()))
        .collect();
    let mut outcomes = compare_run(&products, &serials)?;
    // A watchdog-terminated job can never legitimately pass: its output is
    // incomplete no matter what the reference happens to match.
    for (outcome, job) in outcomes.iter_mut().zip(&run.jobs) {
        if job.timed_out {
            *outcome = TestOutcome::TimedOut {
                job: job.job.clone(),
                instructions: job.instructions,
            };
        }
    }
    Ok(TestReport {
        outcomes,
        build_warnings: products.warnings.clone(),
        launch_warnings: run.jobs.iter().flat_map(|j| j.warnings.clone()).collect(),
    })
}

/// Compares already-produced serial logs against the workload's reference —
/// also the implementation of `test --manual` for outputs that came from
/// the cycle-exact simulator (§III-E).
///
/// # Errors
///
/// I/O failures reading references.
pub fn compare_run(
    products: &BuildProducts,
    serials: &[(String, String)],
) -> Result<Vec<TestOutcome>, MarshalError> {
    let Some(testing) = &products.top_spec.testing else {
        return Ok(vec![TestOutcome::NoReference; serials.len()]);
    };
    let Some(ref_dir_name) = &testing.ref_dir else {
        return Ok(vec![TestOutcome::NoReference; serials.len()]);
    };
    let ref_dir = match &products.source_dir {
        Some(dir) => dir.join(ref_dir_name),
        None => {
            return Err(MarshalError::Other(
                "testing.refDir needs a workload source directory".to_owned(),
            ))
        }
    };
    serials
        .iter()
        .map(|(job, serial)| match reference_for_job(&ref_dir, job) {
            Some(path) => compare_with_reference(job, serial, &path),
            None => Ok(TestOutcome::NoReference),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_strips_timestamps_and_banners() {
        let log = "[    0.001234] Linux version 5.7\nqemu-system-riscv64: starting\npayload ran\nRealTime: 1.23\n[   12.999999] reboot: Power down\n";
        let cleaned = clean_output(log);
        assert_eq!(
            cleaned,
            vec!["Linux version 5.7", "payload ran", "reboot: Power down"]
        );
    }

    #[test]
    fn cleaning_keeps_bracketed_non_timestamps() {
        let log = "[trace] marker 3\n[ERROR] bad\n";
        let cleaned = clean_output(log);
        assert_eq!(cleaned, vec!["[trace] marker 3", "[ERROR] bad"]);
    }

    #[test]
    fn subset_matching_in_order() {
        let output: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let good: Vec<String> = ["a", "c"].iter().map(|s| s.to_string()).collect();
        let bad_order: Vec<String> = ["c", "a"].iter().map(|s| s.to_string()).collect();
        let missing: Vec<String> = ["a", "z"].iter().map(|s| s.to_string()).collect();
        assert!(subset_match(&good, &output).is_ok());
        assert_eq!(subset_match(&bad_order, &output), Err("a".to_owned()));
        assert_eq!(subset_match(&missing, &output), Err("z".to_owned()));
        assert!(subset_match(&[], &output).is_ok());
    }

    /// A unique, self-cleaning temp directory. Uniqueness comes from a
    /// process-wide counter on top of the pid, so concurrently running
    /// tests (and stale dirs from a crashed run) can never collide; the
    /// Drop guard cleans up even when an assertion panics mid-test.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let d =
                std::env::temp_dir().join(format!("marshal-test-{tag}-{}-{n}", std::process::id()));
            std::fs::create_dir_all(&d).unwrap();
            TempDir(d)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn compare_against_reference_file() {
        let dir = TempDir::new("compare");
        let ref_path = dir.0.join("uartlog");
        std::fs::write(&ref_path, "payload ran\n").unwrap();
        let sim_log = "[    0.000001] boot\npayload ran\n[    0.000002] reboot: Power down\n";
        assert_eq!(
            compare_with_reference("j", sim_log, &ref_path).unwrap(),
            TestOutcome::Pass
        );
        let bad_log = "[    0.000001] boot\nsomething else\n";
        assert!(matches!(
            compare_with_reference("j", bad_log, &ref_path).unwrap(),
            TestOutcome::Fail { .. }
        ));
    }

    #[test]
    fn outcome_helpers() {
        assert!(TestOutcome::Pass.passed());
        assert!(TestOutcome::NoReference.passed());
        assert!(!TestOutcome::Fail {
            job: "x".into(),
            missing: "y".into()
        }
        .passed());
        assert!(!TestOutcome::TimedOut {
            job: "x".into(),
            instructions: 9
        }
        .passed());
    }
}
