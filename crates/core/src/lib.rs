//! # marshal-core
//!
//! The FireMarshal tool itself: the paper's primary contribution.
//!
//! Implements the five lifecycle phases of §II with Table I's command
//! surface:
//!
//! | command | module | paper section |
//! |---|---|---|
//! | `build` | [`build`] | §III-B: recursive parent builds, kernel/firmware, disk image, `--no-disk` |
//! | `launch` | [`launch`] | §III-C: functional simulation, output collection, post-run hooks |
//! | `test` | [`test`] | §III-D: reference-output matching with output cleaning |
//! | `install` | [`install`] | §III-E: cycle-exact simulator configuration generation |
//! | `clean` | [`clean`] | artifact/state removal |
//! | `serve` / `scrub` | [`scrub`], marshal-netstore | resilient artifact distribution |
//!
//! The [`cli`] module is the `marshal` command-line front-end.
//!
//! ## Example
//!
//! ```rust,no_run
//! use marshal_core::{Builder, Board};
//! use marshal_config::SearchPath;
//!
//! # fn main() -> Result<(), marshal_core::MarshalError> {
//! let board = Board::minimal("demo");
//! let mut search = SearchPath::new();
//! search.add_builtin("hello.json",
//!     r#"{"name":"hello","distro":"buildroot","command":"/bin/hello"}"#);
//! let mut builder = Builder::new(board, search, "./marshal-workdir")?;
//! let products = builder.build("hello.json", &Default::default())?;
//! let output = marshal_core::launch::launch_job(&builder, &products, 0, &Default::default())?;
//! println!("{}", output.serial);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod board;
pub mod build;
pub mod checkpoint;
pub mod clean;
pub mod cli;
pub mod connector;
pub mod cosim;
pub mod error;
pub mod faultinject;
pub mod imagestore;
pub mod install;
pub mod integrity;
pub mod launch;
pub mod output;
pub mod runners;
pub mod scrub;
pub mod simulator;
pub mod test;
pub mod warnings;

pub use board::Board;
pub use build::{BuildOptions, BuildProducts, Builder, JobArtifacts, JobKind};
pub use checkpoint::{checkpoint_key, CheckpointLoad, CheckpointStore};
pub use clean::{prune_runs, CleanReport, DEFAULT_KEEP_RUNS};
pub use cosim::{CosimOptions, CosimReport, Divergence};
pub use error::MarshalError;
pub use imagestore::{ImageStore, PoolPin};
pub use install::InstallManifest;
pub use launch::{LaunchOptions, LaunchOutput};
pub use runners::{
    level_spec, make_runners, parse_level_spec, parse_runner_specs, serve_exec_handler, RunnerSpec,
};
pub use scrub::{scrub_pool, scrub_pool_with, ScrubReport};
pub use simulator::{simulator_for, simulator_names, BackendOptions, SimRun, Simulator};
pub use test::{clean_output, clean_output_with, TestOutcome, TestReport};
pub use warnings::{Severity, Warning};
