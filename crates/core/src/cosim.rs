//! Lockstep co-simulation (`marshal cosim`): run two backends on the
//! identical built artifacts and diff their behaviour.
//!
//! The paper's portability claim (§III-C/E) is that the *exact same
//! artifacts* produce the same workload behaviour on functional and
//! cycle-exact simulation. This module turns that claim into an
//! executable check: both backends get the same loaded artifacts, and
//! their canonical uartlogs, exit codes, and extracted `outputs` files
//! are compared line by line, reporting the first divergence with
//! surrounding context.
//!
//! Instruction counts are deliberately *not* compared — they legitimately
//! differ across backends (e.g. digit loops printing cycle counters run
//! different iteration counts), which is exactly why the uartlog
//! canonicalization in [`crate::test`] filters volatile lines.

use std::collections::BTreeMap;
use std::fmt;

use marshal_image::{FsImage, Node};
use marshal_sim_functional::LaunchMode;
use marshal_sim_rtl::HardwareConfig;
use marshal_trace::Recorder;

use crate::build::{BuildProducts, JobArtifacts};
use crate::checkpoint::CheckpointStore;
use crate::error::MarshalError;
use crate::launch::{load_artifacts, run_checkpointed};
use crate::simulator::{simulator_for, BackendOptions};
use crate::test::clean_output;
use crate::warnings::Warning;

/// Options for `cosim`.
#[derive(Debug, Clone)]
pub struct CosimOptions {
    /// The two backends to run in lockstep (`--sim a,b`).
    pub backends: (String, String),
    /// Guest watchdog budget override, applied to both backends.
    pub timeout_insts: Option<u64>,
    /// Hardware configuration when a cycle-exact backend participates.
    pub hw: Option<HardwareConfig>,
    /// Self-test (`--inject-divergence`): flip one bit in one serial byte
    /// of the second backend's output before comparing, to prove the
    /// checker detects single-byte divergence.
    pub inject_divergence: bool,
    /// Run-journal recorder; each backend observation records a `sim` span.
    pub recorder: Recorder,
    /// Boot-checkpoint store. When set, each backend restores (or writes)
    /// its own boot checkpoint — keyed per backend configuration, so the
    /// two sides never share a snapshot. `None` always boots cold.
    pub checkpoints: Option<CheckpointStore>,
}

impl Default for CosimOptions {
    fn default() -> CosimOptions {
        CosimOptions {
            // Functional vs cycle-exact: the pairing the paper's claim is
            // actually about.
            backends: ("qemu".to_owned(), "rtl".to_owned()),
            timeout_insts: None,
            hw: None,
            inject_divergence: false,
            recorder: Recorder::disabled(),
            checkpoints: None,
        }
    }
}

/// What one backend did with a job's artifacts: everything the lockstep
/// comparison looks at.
#[derive(Debug, Clone)]
pub struct BackendBehaviour {
    /// The backend's registry name.
    pub backend: String,
    /// Raw serial log.
    pub serial: String,
    /// Canonicalized serial log ([`crate::test::clean_output`]).
    pub canonical: Vec<String>,
    /// Payload exit code.
    pub exit_code: i64,
    /// Guest instructions executed (reported, never compared).
    pub instructions: u64,
    /// Whether the watchdog terminated the run.
    pub timed_out: bool,
    /// Declared `outputs` files extracted from the final image,
    /// path → contents.
    pub outputs: BTreeMap<String, Vec<u8>>,
    /// Non-fatal diagnostics from this observation (e.g. a corrupt boot
    /// checkpoint that forced a cold boot).
    pub warnings: Vec<Warning>,
}

/// The first point where two backends' behaviour differs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// Canonical serial logs differ.
    Serial {
        /// Zero-based canonical line index of the first difference.
        line: usize,
        /// First backend's line (`None` when its log ended first).
        a: Option<String>,
        /// Second backend's line (`None` when its log ended first).
        b: Option<String>,
        /// The shared canonical lines immediately before the divergence.
        context: Vec<String>,
    },
    /// Exit codes differ.
    ExitCode {
        /// First backend's exit code.
        a: i64,
        /// Second backend's exit code.
        b: i64,
    },
    /// An extracted output file differs or exists on only one backend.
    Output {
        /// Guest path of the diverging output.
        path: String,
        /// Human-readable description of the difference.
        detail: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Serial {
                line,
                a,
                b,
                context,
            } => {
                writeln!(f, "serial logs diverge at canonical line {line}:")?;
                for c in context {
                    writeln!(f, "      {c}")?;
                }
                match a {
                    Some(line) => writeln!(f, "    a>{line}")?,
                    None => writeln!(f, "    a> <log ends>")?,
                }
                match b {
                    Some(line) => write!(f, "    b>{line}"),
                    None => write!(f, "    b> <log ends>"),
                }
            }
            Divergence::ExitCode { a, b } => {
                write!(f, "exit codes diverge: {a} vs {b}")
            }
            Divergence::Output { path, detail } => {
                write!(f, "output `{path}` diverges: {detail}")
            }
        }
    }
}

/// One job's lockstep comparison.
#[derive(Debug, Clone)]
pub struct JobCosim {
    /// The job's qualified name.
    pub job: String,
    /// The two backends compared.
    pub backends: (String, String),
    /// Per-backend instruction counts (informational only).
    pub instructions: (u64, u64),
    /// The first divergence, if any.
    pub divergence: Option<Divergence>,
    /// Non-fatal diagnostics from both backends, in observation order.
    pub warnings: Vec<Warning>,
}

impl JobCosim {
    /// Whether both backends behaved identically.
    pub fn agreed(&self) -> bool {
        self.divergence.is_none()
    }
}

/// A whole workload's lockstep comparison.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// Workload name.
    pub workload: String,
    /// The two backends compared.
    pub backends: (String, String),
    /// Per-job results, in job order.
    pub jobs: Vec<JobCosim>,
}

impl CosimReport {
    /// Whether every job agreed on both backends.
    pub fn agreed(&self) -> bool {
        self.jobs.iter().all(JobCosim::agreed)
    }
}

/// Runs one backend over a job's artifacts and captures the behaviour the
/// comparison looks at.
///
/// # Errors
///
/// Unknown backends, artifact errors, simulation errors.
pub fn observe_backend(
    backend_name: &str,
    job: &JobArtifacts,
    opts: &CosimOptions,
) -> Result<BackendBehaviour, MarshalError> {
    let backend_opts = BackendOptions {
        timeout_insts: opts.timeout_insts,
        hw: opts.hw.clone(),
    };
    let backend = simulator_for(backend_name, &job.spec, &backend_opts)?;
    let loaded = load_artifacts(job)?;
    let span = opts.recorder.sim_span(backend.name(), &job.name);
    let run = run_checkpointed(
        backend.as_ref(),
        &loaded,
        LaunchMode::Run,
        opts.checkpoints.as_ref(),
        &job.name,
        &opts.recorder,
    );
    match &run {
        Ok((r, _)) => span.end_with(&[
            ("outcome", if r.result.timed_out { "timeout" } else { "ok" }),
            ("instructions", &r.result.instructions.to_string()),
        ]),
        Err(_) => span.end_with(&[("outcome", "error")]),
    }
    let (run, warnings) = run?;
    let outputs = gather_outputs(run.result.image.as_ref(), &job.spec.outputs);
    Ok(BackendBehaviour {
        backend: backend.name().to_owned(),
        canonical: clean_output(&run.result.serial),
        serial: run.result.serial,
        exit_code: run.result.exit_code,
        instructions: run.result.instructions,
        timed_out: run.result.timed_out,
        outputs,
        warnings,
    })
}

/// Extracts a job's declared `outputs` paths from its final image as
/// path → contents. A declared directory contributes every file under it;
/// paths the guest never wrote are simply absent (the comparison flags
/// them when the other backend wrote them).
fn gather_outputs(image: Option<&FsImage>, outputs: &[String]) -> BTreeMap<String, Vec<u8>> {
    let mut found = BTreeMap::new();
    let Some(image) = image else {
        return found;
    };
    for declared in outputs {
        let declared = declared.trim_end_matches('/');
        for (path, node) in image.walk() {
            let under = path == declared || path.starts_with(&format!("{declared}/"));
            if !under {
                continue;
            }
            if let Node::File { data, .. } = node {
                found.insert(path, data.to_vec());
            }
        }
    }
    found
}

/// How many shared lines to show before a serial divergence.
const CONTEXT_LINES: usize = 3;

/// Compares two backends' observed behaviour, returning the first
/// divergence: canonical serial first (the paper's behaviour criterion),
/// then exit code, then extracted outputs.
pub fn compare_behaviour(a: &BackendBehaviour, b: &BackendBehaviour) -> Option<Divergence> {
    let len = a.canonical.len().max(b.canonical.len());
    for i in 0..len {
        let la = a.canonical.get(i);
        let lb = b.canonical.get(i);
        if la != lb {
            let start = i.saturating_sub(CONTEXT_LINES);
            return Some(Divergence::Serial {
                line: i,
                a: la.cloned(),
                b: lb.cloned(),
                context: a.canonical[start..i].to_vec(),
            });
        }
    }
    if a.exit_code != b.exit_code {
        return Some(Divergence::ExitCode {
            a: a.exit_code,
            b: b.exit_code,
        });
    }
    for path in a.outputs.keys().chain(b.outputs.keys()) {
        match (a.outputs.get(path), b.outputs.get(path)) {
            (Some(da), Some(db)) if da != db => {
                let detail = first_byte_difference(da, db);
                return Some(Divergence::Output {
                    path: path.clone(),
                    detail,
                });
            }
            (Some(_), None) => {
                return Some(Divergence::Output {
                    path: path.clone(),
                    detail: format!("present on {} only", a.backend),
                });
            }
            (None, Some(_)) => {
                return Some(Divergence::Output {
                    path: path.clone(),
                    detail: format!("present on {} only", b.backend),
                });
            }
            _ => {}
        }
    }
    None
}

/// Describes where two byte strings first differ.
fn first_byte_difference(a: &[u8], b: &[u8]) -> String {
    match a.iter().zip(b.iter()).position(|(x, y)| x != y) {
        Some(i) => format!(
            "first differing byte at offset {i} ({:#04x} vs {:#04x})",
            a[i], b[i]
        ),
        None => format!("lengths differ ({} vs {} bytes)", a.len(), b.len()),
    }
}

/// Flips the low bit of the last byte of the last canonical-surviving
/// serial line — the single-byte fault the acceptance criteria require the
/// checker to catch. Canonical output is recomputed afterwards, so the
/// flip cannot hide behind log cleaning.
pub fn inject_single_byte_divergence(behaviour: &mut BackendBehaviour) {
    // Pick the last serial line that survives canonicalization: flipping a
    // banner or volatile line would (correctly) go undetected.
    if let Some(target) = behaviour.canonical.last().cloned() {
        if let Some(pos) = behaviour.serial.rfind(&target) {
            let mut bytes = behaviour.serial.clone().into_bytes();
            let idx = pos + target.len() - 1;
            // ASCII-safe single-bit flip keeps the log valid UTF-8.
            bytes[idx] ^= 0x01;
            behaviour.serial = String::from_utf8(bytes).expect("bit flip stays ASCII");
            behaviour.canonical = clean_output(&behaviour.serial);
        }
    }
}

/// Runs one job on both backends and compares.
///
/// # Errors
///
/// Backend resolution, artifact, and simulation errors from either side.
pub fn cosim_job(job: &JobArtifacts, opts: &CosimOptions) -> Result<JobCosim, MarshalError> {
    let a = observe_backend(&opts.backends.0, job, opts)?;
    let mut b = observe_backend(&opts.backends.1, job, opts)?;
    if opts.inject_divergence {
        inject_single_byte_divergence(&mut b);
    }
    let mut warnings = a.warnings.clone();
    warnings.extend(b.warnings.iter().cloned());
    Ok(JobCosim {
        job: job.name.clone(),
        backends: (a.backend.clone(), b.backend.clone()),
        instructions: (a.instructions, b.instructions),
        divergence: compare_behaviour(&a, &b),
        warnings,
    })
}

/// Runs every job of a built workload on both backends in lockstep.
///
/// # Errors
///
/// First failing job's error.
pub fn cosim_workload(
    products: &BuildProducts,
    opts: &CosimOptions,
) -> Result<CosimReport, MarshalError> {
    let mut jobs = Vec::with_capacity(products.jobs.len());
    for job in &products.jobs {
        jobs.push(cosim_job(job, opts)?);
    }
    Ok(CosimReport {
        workload: products.workload.clone(),
        backends: opts.backends.clone(),
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behaviour(backend: &str, serial: &str, exit_code: i64) -> BackendBehaviour {
        BackendBehaviour {
            backend: backend.to_owned(),
            serial: serial.to_owned(),
            canonical: clean_output(serial),
            exit_code,
            instructions: 0,
            timed_out: false,
            outputs: BTreeMap::new(),
            warnings: Vec::new(),
        }
    }

    #[test]
    fn identical_behaviour_agrees() {
        let a = behaviour("qemu", "hello\nworld\n", 0);
        let b = behaviour("rtl", "firesim: banner\nhello\nworld\n", 0);
        // Banner lines are canonicalized away: only payload behaviour counts.
        assert_eq!(compare_behaviour(&a, &b), None);
    }

    #[test]
    fn serial_divergence_reports_line_and_context() {
        let a = behaviour("qemu", "one\ntwo\nthree\nfour\nfive\n", 0);
        let b = behaviour("spike", "one\ntwo\nthree\nfour\nFIVE\n", 0);
        match compare_behaviour(&a, &b) {
            Some(Divergence::Serial {
                line,
                a,
                b,
                context,
            }) => {
                assert_eq!(line, 4);
                assert_eq!(a.as_deref(), Some("five"));
                assert_eq!(b.as_deref(), Some("FIVE"));
                assert_eq!(context, vec!["two", "three", "four"]);
            }
            other => panic!("expected serial divergence, got {other:?}"),
        }
    }

    #[test]
    fn truncated_log_diverges() {
        let a = behaviour("qemu", "one\ntwo\n", 0);
        let b = behaviour("spike", "one\n", 0);
        match compare_behaviour(&a, &b) {
            Some(Divergence::Serial { line, a, b, .. }) => {
                assert_eq!(line, 1);
                assert_eq!(a.as_deref(), Some("two"));
                assert_eq!(b, None);
            }
            other => panic!("expected serial divergence, got {other:?}"),
        }
    }

    #[test]
    fn exit_code_divergence() {
        let a = behaviour("qemu", "same\n", 0);
        let b = behaviour("spike", "same\n", 1);
        assert_eq!(
            compare_behaviour(&a, &b),
            Some(Divergence::ExitCode { a: 0, b: 1 })
        );
    }

    #[test]
    fn output_divergence() {
        let mut a = behaviour("qemu", "same\n", 0);
        let mut b = behaviour("spike", "same\n", 0);
        a.outputs
            .insert("/output/results.csv".to_owned(), b"x,1\n".to_vec());
        b.outputs
            .insert("/output/results.csv".to_owned(), b"x,2\n".to_vec());
        match compare_behaviour(&a, &b) {
            Some(Divergence::Output { path, detail }) => {
                assert_eq!(path, "/output/results.csv");
                assert!(detail.contains("offset 2"), "{detail}");
            }
            other => panic!("expected output divergence, got {other:?}"),
        }
        b.outputs.remove("/output/results.csv");
        match compare_behaviour(&a, &b) {
            Some(Divergence::Output { detail, .. }) => {
                assert!(detail.contains("qemu only"), "{detail}");
            }
            other => panic!("expected output divergence, got {other:?}"),
        }
    }

    #[test]
    fn injected_divergence_survives_canonicalization() {
        let clean = behaviour("qemu", "qemu: banner\npayload done\n", 0);
        let mut injected = clean.clone();
        inject_single_byte_divergence(&mut injected);
        assert_ne!(clean.canonical, injected.canonical);
        assert!(compare_behaviour(&clean, &injected).is_some());
    }

    #[test]
    fn gathers_declared_outputs() {
        let mut img = FsImage::new();
        img.write_file("/output/a.csv", b"a\n").unwrap();
        img.write_file("/output/sub/b.csv", b"b\n").unwrap();
        img.write_file("/etc/hostname", b"host\n").unwrap();
        let got = gather_outputs(Some(&img), &["/output".to_owned()]);
        assert_eq!(got.len(), 2);
        assert_eq!(got["/output/a.csv"], b"a\n");
        assert_eq!(got["/output/sub/b.csv"], b"b\n");
        assert!(gather_outputs(None, &["/output".to_owned()]).is_empty());
    }

    #[test]
    fn divergence_display_is_readable() {
        let d = Divergence::Serial {
            line: 7,
            a: Some("lhs".to_owned()),
            b: None,
            context: vec!["ctx".to_owned()],
        };
        let text = d.to_string();
        assert!(text.contains("line 7"));
        assert!(text.contains("ctx"));
        assert!(text.contains("<log ends>"));
        assert!(Divergence::ExitCode { a: 0, b: 124 }
            .to_string()
            .contains("0 vs 124"));
    }
}
