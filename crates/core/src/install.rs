//! The `install` command (§III-E): convert a built workload into a
//! configuration for the cycle-exact RTL simulator.
//!
//! "FireMarshal provides the install command to convert the workload
//! specification into a valid configuration for the RTL-level simulator.
//! From there, users interact with the simulator normally... the exact same
//! artifacts are run on both simulators."

use std::path::{Path, PathBuf};

use marshal_config::Value;
use marshal_sim_rtl::{HardwareConfig, NodePayload, NodeResult};

use crate::build::{BuildProducts, Builder, JobKind};
use crate::error::MarshalError;
use crate::launch::load_artifacts;
use crate::simulator::RtlSim;

/// The manifest `install` writes for the RTL simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct InstallManifest {
    /// Workload name.
    pub workload: String,
    /// Per-job entries: `(qualified name, artifact kind, artifact paths)`.
    pub jobs: Vec<InstalledJob>,
}

/// One installed job.
#[derive(Debug, Clone, PartialEq)]
pub struct InstalledJob {
    /// Qualified job name (one simulated node).
    pub name: String,
    /// `linux` or `bare`.
    pub kind: String,
    /// Path to the boot binary or bare binary.
    pub primary: PathBuf,
    /// Path to the disk image, if any.
    pub disk: Option<PathBuf>,
}

impl InstallManifest {
    /// Serialises to the JSON the RTL simulator consumes.
    pub fn to_json(&self) -> String {
        let jobs: Value = self
            .jobs
            .iter()
            .map(|j| {
                let mut m = std::collections::BTreeMap::new();
                m.insert("name".to_owned(), Value::Str(j.name.clone()));
                m.insert("kind".to_owned(), Value::Str(j.kind.clone()));
                m.insert(
                    "primary".to_owned(),
                    Value::Str(j.primary.to_string_lossy().into_owned()),
                );
                m.insert(
                    "disk".to_owned(),
                    match &j.disk {
                        Some(d) => Value::Str(d.to_string_lossy().into_owned()),
                        None => Value::Null,
                    },
                );
                Value::Object(m)
            })
            .collect();
        let mut root = std::collections::BTreeMap::new();
        root.insert("workload".to_owned(), Value::Str(self.workload.clone()));
        root.insert("jobs".to_owned(), jobs);
        Value::Object(root).to_json()
    }

    /// Parses a manifest back from JSON.
    ///
    /// # Errors
    ///
    /// [`MarshalError::Other`] on malformed manifests.
    pub fn from_json(text: &str) -> Result<InstallManifest, MarshalError> {
        let v = marshal_config::json::parse(text)
            .map_err(|e| MarshalError::Other(format!("install manifest: {e}")))?;
        let workload = v
            .get("workload")
            .and_then(Value::as_str)
            .ok_or_else(|| MarshalError::Other("manifest missing `workload`".to_owned()))?
            .to_owned();
        let jobs = v
            .get("jobs")
            .and_then(Value::as_array)
            .ok_or_else(|| MarshalError::Other("manifest missing `jobs`".to_owned()))?
            .iter()
            .map(|j| {
                Ok(InstalledJob {
                    name: j
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| MarshalError::Other("job missing `name`".to_owned()))?
                        .to_owned(),
                    kind: j
                        .get("kind")
                        .and_then(Value::as_str)
                        .unwrap_or("linux")
                        .to_owned(),
                    primary: PathBuf::from(
                        j.get("primary").and_then(Value::as_str).ok_or_else(|| {
                            MarshalError::Other("job missing `primary`".to_owned())
                        })?,
                    ),
                    disk: j.get("disk").and_then(Value::as_str).map(PathBuf::from),
                })
            })
            .collect::<Result<Vec<_>, MarshalError>>()?;
        Ok(InstallManifest { workload, jobs })
    }
}

/// Builds the manifest describing a built workload's artifacts.
pub fn manifest_for(products: &BuildProducts) -> InstallManifest {
    let jobs = products
        .jobs
        .iter()
        .map(|j| match &j.kind {
            JobKind::Linux {
                boot_path,
                disk_path,
            } => InstalledJob {
                name: j.name.clone(),
                kind: "linux".to_owned(),
                primary: boot_path.clone(),
                disk: disk_path.clone(),
            },
            JobKind::Bare { bin_path } => InstalledJob {
                name: j.name.clone(),
                kind: "bare".to_owned(),
                primary: bin_path.clone(),
                disk: None,
            },
        })
        .collect();
    InstallManifest {
        workload: products.workload.clone(),
        jobs,
    }
}

/// Installs a built workload: writes the RTL simulator manifest.
///
/// # Errors
///
/// I/O failures.
pub fn install_workload(
    builder: &Builder,
    products: &BuildProducts,
) -> Result<(InstallManifest, PathBuf), MarshalError> {
    let manifest = manifest_for(products);
    let dir = builder.install_dir(&products.workload);
    std::fs::create_dir_all(&dir)
        .map_err(|e| MarshalError::Io(format!("mkdir {}: {e}", dir.display())))?;
    let path = dir.join("firesim_config.json");
    std::fs::write(&path, manifest.to_json())
        .map_err(|e| MarshalError::Io(format!("write {}: {e}", path.display())))?;
    Ok((manifest, path))
}

/// Runs an installed workload on the cycle-exact backend — "users
/// interact with the simulator normally", which for this reproduction means
/// handing the manifest to the registry's [`RtlSim`]. Jobs become cluster
/// nodes and run in parallel when `parallel` is set (the paper's
/// two-weeks-to-two-days optimisation).
///
/// # Errors
///
/// Artifact and simulation errors.
pub fn run_installed(
    manifest: &InstallManifest,
    hw: HardwareConfig,
    parallel: bool,
) -> Result<Vec<NodeResult>, MarshalError> {
    let mut nodes = Vec::with_capacity(manifest.jobs.len());
    for job in &manifest.jobs {
        let payload = if job.kind == "bare" {
            let bin = std::fs::read(&job.primary)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", job.primary.display())))?;
            NodePayload::Bare { bin }
        } else {
            let boot_bytes = std::fs::read(&job.primary)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", job.primary.display())))?;
            let boot = marshal_firmware::BootBinary::from_bytes(&boot_bytes)
                .map_err(|e| MarshalError::Other(format!("boot binary: {e}")))?;
            let disk = match &job.disk {
                Some(p) => {
                    let bytes = std::fs::read(p)
                        .map_err(|e| MarshalError::Io(format!("read {}: {e}", p.display())))?;
                    Some(
                        marshal_image::FsImage::from_bytes(&bytes)
                            .map_err(|e| MarshalError::Other(format!("disk image: {e}")))?,
                    )
                }
                None => None,
            };
            NodePayload::Linux { boot, disk }
        };
        nodes.push((job.name.clone(), payload));
    }
    let sim = RtlSim::new(hw, None);
    Ok(sim.fire_sim().launch_cluster(&nodes, parallel)?)
}

/// Convenience: runs a job's artifacts directly on the cycle-exact
/// backend without writing a manifest (used by tests and benches).
///
/// # Errors
///
/// Artifact and simulation errors.
pub fn run_job_cycle_exact(
    job: &crate::build::JobArtifacts,
    hw: HardwareConfig,
) -> Result<NodeResult, MarshalError> {
    use crate::simulator::Simulator;
    let loaded = load_artifacts(job)?;
    let sim = RtlSim::new(hw, None);
    let run = sim.run(&loaded, marshal_sim_functional::LaunchMode::Run)?;
    let report = run
        .report
        .expect("the cycle-exact backend always produces a report");
    Ok(NodeResult {
        name: job.name.clone(),
        result: run.result,
        report,
    })
}

/// Loads a previously written manifest.
///
/// # Errors
///
/// I/O and parse failures.
pub fn load_manifest(path: &Path) -> Result<InstallManifest, MarshalError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| MarshalError::Io(format!("read {}: {e}", path.display())))?;
    InstallManifest::from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_roundtrip() {
        let m = InstallManifest {
            workload: "intspeed".to_owned(),
            jobs: vec![
                InstalledJob {
                    name: "intspeed.600.perlbench_s".to_owned(),
                    kind: "linux".to_owned(),
                    primary: PathBuf::from("/w/images/a/boot.bin"),
                    disk: Some(PathBuf::from("/w/images/a/rootfs.img")),
                },
                InstalledJob {
                    name: "server".to_owned(),
                    kind: "bare".to_owned(),
                    primary: PathBuf::from("/w/images/s/bin.mexe"),
                    disk: None,
                },
            ],
        };
        let json = m.to_json();
        let back = InstallManifest::from_json(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn malformed_manifest_rejected() {
        assert!(InstallManifest::from_json("{}").is_err());
        assert!(InstallManifest::from_json("not json").is_err());
        assert!(
            InstallManifest::from_json(r#"{"workload":"x","jobs":[{"kind":"linux"}]}"#).is_err()
        );
    }
}
