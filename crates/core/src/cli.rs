//! The `marshal` command-line interface (Table I).
//!
//! ```text
//! marshal [-d DIR]... [--workdir DIR] [-v] <command> [options] <workload>
//!
//! Commands:
//!   build   [--no-disk] [--force]    Construct the filesystem image and boot-binary
//!   launch  [--job NAME] [--sim B]   Launch this workload on a simulator backend
//!   cosim   [--sim A,B]              Run two backends in lockstep and diff behaviour
//!   test    [--manual DIR]           Build, launch, and compare against a reference
//!   install [--hw CONFIG] [--sim C]  Set up an RTL simulator (firesim/vcs/verilator)
//!   clean   [--keep-runs N]          Remove built artifacts and state
//!   serve   [--port N]               Export this workdir's built levels to the network
//!   scrub   [--remote HOST:PORT]     Verify the blob pool; quarantine and heal damage
//!   trace   [RUN] [--summary]        Inspect recorded run journals
//! ```

use std::collections::HashSet;
use std::path::Path;

use marshal_config::SearchPath;
use marshal_sim_rtl::HardwareConfig;
use marshal_trace::Recorder;

use crate::board::Board;
use crate::build::{BuildOptions, Builder};
use crate::clean::{clean_workload_with, DEFAULT_KEEP_RUNS};
use crate::cosim::{cosim_workload, CosimOptions};
use crate::error::MarshalError;
use crate::install::install_workload;
use crate::launch::{launch_workload, LaunchOptions};
use crate::simulator::{resolve_backend, simulator_names};
use crate::test::{test_workload_report, TestOutcome};
use crate::warnings::Warning;

/// Process exit code for a watchdog-terminated launch (`timeout(1)`'s
/// convention, distinct from ordinary failure).
pub const EXIT_TIMED_OUT: i32 = 124;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// Extra workload search directories (`-d`).
    pub search_dirs: Vec<String>,
    /// Working directory (`--workdir`, default `./marshal-workdir`).
    pub workdir: String,
    /// Verbose output (`-v`).
    pub verbose: bool,
    /// The command to run.
    pub command: Command,
}

/// One of Table I's commands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `build [--no-disk] [--force] [--keep-going] [-j N] [--runners LIST]
    /// [--dry-run] [--progress] <workload>`.
    Build {
        /// Target workload file.
        workload: String,
        /// Embed rootfs in the initramfs.
        no_disk: bool,
        /// Rebuild everything.
        force: bool,
        /// Keep building independent subtrees past a task failure.
        keep_going: bool,
        /// Worker threads (`-j N`); `None` = available parallelism.
        jobs: Option<usize>,
        /// `marshal serve` daemon to fetch pre-built levels from
        /// (`--remote HOST:PORT`, or the `MARSHAL_REMOTE` environment
        /// variable when the flag is absent).
        remote: Option<String>,
        /// Runner pool (`--runners local[:N],remote:HOST:PORT`); `None`
        /// builds on a single local thread pool.
        runners: Option<String>,
        /// Plan without executing (`--dry-run`).
        dry_run: bool,
        /// Live single-line progress on stderr (`--progress`).
        progress: bool,
    },
    /// `launch [--job NAME] [--sim BACKEND] [--hw CONFIG] [--timeout-insts N] <workload>`.
    Launch {
        /// Target workload file.
        workload: String,
        /// Launch only the named job.
        job: Option<String>,
        /// Guest watchdog budget in instructions.
        timeout_insts: Option<u64>,
        /// Simulator backend name (`qemu`, `spike`, `rtl`); `None` uses the
        /// workload's default.
        sim: Option<String>,
        /// Hardware configuration name for the cycle-exact backend.
        hw: Option<String>,
        /// Disable boot checkpointing (`--no-checkpoint`).
        no_checkpoint: bool,
    },
    /// `cosim [--sim A,B] [--hw CONFIG] [--timeout-insts N] [--inject-divergence] <workload>`.
    Cosim {
        /// Target workload file.
        workload: String,
        /// Backend pair `a,b`; `None` compares `qemu,rtl`.
        sim: Option<String>,
        /// Guest watchdog budget in instructions, applied to both backends.
        timeout_insts: Option<u64>,
        /// Hardware configuration name for a cycle-exact participant.
        hw: Option<String>,
        /// Self-test: corrupt one byte of the second backend's serial
        /// output to prove the checker catches it.
        inject_divergence: bool,
        /// Disable boot checkpointing (`--no-checkpoint`).
        no_checkpoint: bool,
    },
    /// `test [--manual DIR] [--timeout-insts N] [-j N] <workload>`.
    Test {
        /// Target workload file.
        workload: String,
        /// Compare pre-existing outputs in this run directory instead of
        /// launching (the paper's `test --manual` for RTL-simulator runs).
        manual: Option<String>,
        /// Guest watchdog budget in instructions.
        timeout_insts: Option<u64>,
        /// Worker threads for the build phase (`-j N`).
        jobs: Option<usize>,
        /// Runner pool for the build phase (`--runners`).
        runners: Option<String>,
        /// Disable boot checkpointing (`--no-checkpoint`).
        no_checkpoint: bool,
    },
    /// `install [--hw CONFIG] [--sim CONNECTOR] <workload>`.
    Install {
        /// Target workload file.
        workload: String,
        /// Hardware configuration name for documentation purposes.
        hw: String,
        /// Simulator connector (`firesim`, `vcs`, `verilator`); `--sim` is
        /// contextual — for `install` it names a connector, for
        /// `launch`/`cosim` a backend.
        connector: String,
        /// `marshal serve` daemon to fetch pre-built levels from during
        /// the build phase (`--remote` / `MARSHAL_REMOTE`).
        remote: Option<String>,
        /// Runner pool for the build phase (`--runners`).
        runners: Option<String>,
    },
    /// `clean [--keep-runs N] <workload>`.
    Clean {
        /// Target workload file.
        workload: String,
        /// Journal runs to retain under `workdir/runs/` (`--keep-runs`,
        /// default 20); older journals are pruned, live runs never.
        keep_runs: Option<usize>,
    },
    /// `serve [--port N]`: export this workdir's built levels and blobs
    /// over the wire for other builders to fetch.
    Serve {
        /// TCP port to listen on (`--port`, default 9300; 0 picks a free
        /// port and prints it).
        port: u16,
        /// Accept remote-execution requests (`--exec`): build levels on
        /// behalf of `--runners remote:...` clients.
        exec: bool,
    },
    /// `scrub [--remote HOST:PORT]`: verify every pool blob and level
    /// manifest, quarantine corruption, and self-heal from a remote.
    Scrub {
        /// Daemon to re-fetch damaged blobs from (`--remote` /
        /// `MARSHAL_REMOTE`).
        remote: Option<String>,
    },
    /// `trace [RUN] [--last] [--summary] [--export chrome|json]`: inspect
    /// recorded run journals.
    Trace {
        /// Run id to inspect; `None` lists recorded runs (unless
        /// `--last`).
        run: Option<String>,
        /// Export format (`chrome` for `chrome://tracing` / Perfetto JSON,
        /// `json` for the raw verified journal lines).
        export: Option<String>,
        /// Print the time/cache breakdown table (the default when no
        /// export format is given).
        summary: bool,
        /// Inspect the most recent run — crash forensics after a run died
        /// mid-build.
        last: bool,
    },
    /// `help`.
    Help,
}

/// Usage text.
pub const USAGE: &str = "usage: marshal [-d DIR]... [--workdir DIR] [-v] <build|launch|cosim|test|install|clean|serve|scrub|trace> [options] <workload>
  build   [--no-disk] [--force] [--keep-going] [-j N] [--remote HOST:PORT]
          [--runners LIST] [--dry-run] [--progress]
                                  construct the filesystem image and boot-binary;
                                  --keep-going builds past failures (only dependents
                                  of a failed task are skipped) and reports them all;
                                  -j runs up to N independent tasks in parallel
                                  (default: available CPUs; -j 1 builds serially);
                                  --remote (or MARSHAL_REMOTE) fetches pre-built
                                  levels from a marshal serve daemon before building
                                  them locally — fetch failures degrade to a normal
                                  local build, never fail it;
                                  --runners local[:N],remote:HOST:PORT executes
                                  tasks on a runner pool: remote entries dispatch
                                  level builds to marshal serve --exec daemons
                                  (a local fallback is always present; a dead
                                  remote degrades to local, never fails or hangs);
                                  --dry-run plans without executing or writing;
                                  --progress renders a live one-line status on
                                  stderr while the build runs
  launch  [--job NAME] [--sim BACKEND] [--hw CONFIG] [--timeout-insts N]
          [--no-checkpoint]
                                  launch the workload on a simulator backend
                                  (qemu/spike/rtl; default: the workload's own choice);
                                  --hw picks the rtl hardware config;
                                  --timeout-insts bounds guest instructions before the
                                  watchdog kills a hung payload (exit code 124);
                                  repeated launches restore a verified boot checkpoint
                                  instead of re-running the boot; --no-checkpoint
                                  always boots cold and writes no snapshot
  cosim   [--sim A,B] [--hw CONFIG] [--timeout-insts N] [--inject-divergence]
          [--no-checkpoint]
                                  run two backends on the identical artifacts in
                                  lockstep and diff canonical uartlogs, exit codes,
                                  and outputs (default pair: qemu,rtl);
                                  --inject-divergence corrupts one output byte as a
                                  checker self-test (must exit nonzero)
  test    [--manual DIR] [--timeout-insts N] [-j N] [--runners LIST]
          [--no-checkpoint]
                                  compare outputs against a reference (build+launch, or a prior run dir)
  install [--hw CONFIG] [--sim C] [--remote HOST:PORT] [--runners LIST]
                                  generate RTL simulator configuration (firesim/vcs/verilator)
  clean   [--keep-runs N]         remove built artifacts and state; also prunes
                                  recorded run journals beyond the newest N
                                  (default 20; journals of live runs are kept)
  serve   [--port N] [--exec]     export this workdir's built levels and blobs to
                                  other builders (default port 9300; Ctrl-C drains
                                  in-flight connections before exiting); --exec
                                  additionally accepts remote-execution requests
                                  from --runners clients, building levels here
  scrub   [--remote HOST:PORT]    verify every pool blob and level manifest,
                                  quarantine corruption, and re-fetch damaged blobs
                                  from a remote when one is configured
  trace   [RUN] [--last] [--summary] [--export chrome|json]
                                  inspect recorded run journals: with no RUN, list
                                  them; with a RUN (or --last for the newest, e.g.
                                  after a crash) print the per-task/per-level time
                                  and cache breakdown, or --export chrome for
                                  chrome://tracing- and Perfetto-loadable JSON
                                  (--export json prints the verified journal lines)";

/// Parses command-line arguments (excluding `argv[0]`).
///
/// # Errors
///
/// [`MarshalError::Other`] with a usage hint for malformed invocations.
pub fn parse_args(args: &[String]) -> Result<CliArgs, MarshalError> {
    let mut search_dirs = Vec::new();
    let mut workdir = "./marshal-workdir".to_owned();
    let mut verbose = false;
    let mut it = args.iter().peekable();
    let err = |m: &str| MarshalError::Other(format!("{m}\n{USAGE}"));

    // Global options.
    let command_word = loop {
        match it.next() {
            None => return Err(err("missing command")),
            Some(a) if a == "-d" || a == "--dir" => {
                search_dirs.push(
                    it.next()
                        .ok_or_else(|| err("-d needs a directory"))?
                        .clone(),
                );
            }
            Some(a) if a == "--workdir" => {
                workdir = it
                    .next()
                    .ok_or_else(|| err("--workdir needs a path"))?
                    .clone();
            }
            Some(a) if a == "-v" || a == "--verbose" => verbose = true,
            Some(a) if a == "help" || a == "--help" || a == "-h" => {
                return Ok(CliArgs {
                    search_dirs,
                    workdir,
                    verbose,
                    command: Command::Help,
                });
            }
            Some(a) if a.starts_with('-') => return Err(err(&format!("unknown option `{a}`"))),
            Some(a) => break a.clone(),
        }
    };

    // Per-command options and the workload argument.
    let mut no_disk = false;
    let mut force = false;
    let mut keep_going = false;
    let mut jobs = None;
    let mut job = None;
    let mut manual = None;
    let mut timeout_insts = None;
    let mut hw: Option<String> = None;
    let mut sim: Option<String> = None;
    let mut inject_divergence = false;
    let mut remote: Option<String> = None;
    let mut runners: Option<String> = None;
    let mut dry_run = false;
    let mut progress = false;
    let mut exec = false;
    let mut port: Option<u16> = None;
    let mut keep_runs: Option<usize> = None;
    let mut export: Option<String> = None;
    let mut summary = false;
    let mut last = false;
    let mut no_checkpoint = false;
    let mut workload = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-disk" => no_disk = true,
            "--no-checkpoint" => no_checkpoint = true,
            "--force" => force = true,
            "--keep-going" => keep_going = true,
            "--dry-run" => dry_run = true,
            "--progress" => progress = true,
            "--exec" => exec = true,
            "--inject-divergence" => inject_divergence = true,
            "--summary" => summary = true,
            "--last" => last = true,
            "--export" => {
                export = Some(
                    it.next()
                        .ok_or_else(|| err("--export needs a format (chrome, json)"))?
                        .clone(),
                )
            }
            "--keep-runs" => {
                let n = it
                    .next()
                    .ok_or_else(|| err("--keep-runs needs a run count"))?;
                keep_runs = Some(
                    n.parse::<usize>()
                        .map_err(|_| err(&format!("--keep-runs: `{n}` is not a run count")))?,
                );
            }
            "--timeout-insts" => {
                let n = it
                    .next()
                    .ok_or_else(|| err("--timeout-insts needs an instruction count"))?;
                timeout_insts = Some(n.parse::<u64>().map_err(|_| {
                    err(&format!(
                        "--timeout-insts: `{n}` is not an instruction count"
                    ))
                })?);
            }
            "-j" | "--jobs" => {
                let n = it.next().ok_or_else(|| err("-j needs a thread count"))?;
                let parsed = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err(&format!("-j: `{n}` is not a positive thread count")))?;
                jobs = Some(parsed);
            }
            "--job" => job = Some(it.next().ok_or_else(|| err("--job needs a name"))?.clone()),
            "--manual" => {
                manual = Some(
                    it.next()
                        .ok_or_else(|| err("--manual needs a directory"))?
                        .clone(),
                )
            }
            "--hw" => {
                hw = Some(
                    it.next()
                        .ok_or_else(|| err("--hw needs a config name"))?
                        .clone(),
                )
            }
            "--sim" => {
                sim = Some(
                    it.next()
                        .ok_or_else(|| err("--sim needs a backend/connector name"))?
                        .clone(),
                )
            }
            "--remote" => {
                remote = Some(
                    it.next()
                        .ok_or_else(|| err("--remote needs a HOST:PORT address"))?
                        .clone(),
                )
            }
            "--runners" => {
                let list = it
                    .next()
                    .ok_or_else(|| err("--runners needs a list (local[:N],remote:HOST:PORT)"))?;
                // Validate eagerly so a typo fails with usage, not mid-build.
                crate::runners::parse_runner_specs(list)
                    .map_err(|e| err(&format!("--runners: {e}")))?;
                runners = Some(list.clone());
            }
            "--port" => {
                let n = it.next().ok_or_else(|| err("--port needs a port number"))?;
                port = Some(
                    n.parse::<u16>()
                        .map_err(|_| err(&format!("--port: `{n}` is not a port number")))?,
                );
            }
            other if other.starts_with('-') => {
                return Err(err(&format!("unknown option `{other}`")))
            }
            other => {
                if workload.replace(other.to_owned()).is_some() {
                    return Err(err("multiple workloads given"));
                }
            }
        }
    }
    let need_workload = || {
        workload
            .clone()
            .ok_or_else(|| err("missing workload argument"))
    };

    let command = match command_word.as_str() {
        "build" => Command::Build {
            workload: need_workload()?,
            no_disk,
            force,
            keep_going,
            jobs,
            remote,
            runners,
            dry_run,
            progress,
        },
        "launch" => Command::Launch {
            workload: need_workload()?,
            job,
            timeout_insts,
            sim,
            hw,
            no_checkpoint,
        },
        "cosim" => Command::Cosim {
            workload: need_workload()?,
            sim,
            timeout_insts,
            hw,
            inject_divergence,
            no_checkpoint,
        },
        "test" => Command::Test {
            workload: need_workload()?,
            manual,
            timeout_insts,
            jobs,
            runners,
            no_checkpoint,
        },
        "install" => Command::Install {
            workload: need_workload()?,
            hw: hw.unwrap_or_else(|| "boom-tage".to_owned()),
            connector: sim.unwrap_or_else(|| "firesim".to_owned()),
            remote,
            runners,
        },
        "clean" => Command::Clean {
            workload: need_workload()?,
            keep_runs,
        },
        "serve" => {
            if workload.is_some() {
                return Err(err("serve takes no workload argument"));
            }
            Command::Serve {
                port: port.unwrap_or(9300),
                exec,
            }
        }
        "scrub" => {
            if workload.is_some() {
                return Err(err("scrub takes no workload argument"));
            }
            Command::Scrub { remote }
        }
        "trace" => {
            if last && workload.is_some() {
                return Err(err("trace takes a RUN id or --last, not both"));
            }
            Command::Trace {
                run: workload.clone(),
                export,
                summary,
                last,
            }
        }
        other => return Err(err(&format!("unknown command `{other}`"))),
    };
    Ok(CliArgs {
        search_dirs,
        workdir,
        verbose,
        command,
    })
}

/// Looks up a named hardware configuration.
pub fn hardware_by_name(name: &str) -> Option<HardwareConfig> {
    match name {
        "rocket" => Some(HardwareConfig::rocket()),
        "boom-gshare" | "gshare" => Some(HardwareConfig::boom_gshare()),
        "boom-tage" | "tage" => Some(HardwareConfig::boom_tage()),
        _ => None,
    }
}

/// The journal header a command records, when it records one: the command
/// name and the workload argument. `trace`, `clean`, `serve`, and `help`
/// run untraced — inspection and retention must not mint the very
/// journals they manage, and the serve daemon is long-lived.
fn trace_target(command: &Command) -> Option<(&'static str, Option<&str>)> {
    match command {
        Command::Build { workload, .. } => Some(("build", Some(workload))),
        Command::Launch { workload, .. } => Some(("launch", Some(workload))),
        Command::Cosim { workload, .. } => Some(("cosim", Some(workload))),
        Command::Test { workload, .. } => Some(("test", Some(workload))),
        Command::Install { workload, .. } => Some(("install", Some(workload))),
        Command::Scrub { .. } => Some(("scrub", None)),
        _ => None,
    }
}

/// Renders warnings at the CLI boundary. Every warning is mirrored into
/// the run journal; duplicates — the same `(context, code)` arriving
/// through two channels, e.g. a build warning re-surfaced by each launch
/// job — are printed once, in first-arrival order. Warnings still carrying
/// the `generic` code have no classification, so their messages must also
/// match before two are considered the same.
fn render_warnings(
    log: &mut Vec<String>,
    rec: &Recorder,
    seen: &mut HashSet<(String, String, String)>,
    warnings: &[Warning],
) {
    for w in warnings {
        rec.warning(w.severity.as_str(), w.code, &w.context, &w.message);
        let msg_key = if w.code == "generic" {
            w.message.clone()
        } else {
            String::new()
        };
        if seen.insert((w.context.clone(), w.code.to_owned(), msg_key)) {
            log.push(w.to_string());
        }
    }
}

/// Runs a parsed command; returns `(exit code, human-readable output)`.
///
/// The caller provides the board and the base search path (normally from
/// `marshal-workloads`).
///
/// Traced commands (see [`trace_target`]) record a journal under
/// `workdir/runs/<run-id>/` and report the run id on success; a journal
/// that cannot be created degrades to an untraced run rather than failing
/// the command.
pub fn run_command(args: &CliArgs, board: Board, mut search: SearchPath) -> (i32, Vec<String>) {
    for d in &args.search_dirs {
        search.add_dir(d);
    }
    let mut builder = match Builder::new(board, search, &args.workdir) {
        Ok(b) => b,
        Err(e) => return (1, vec![format!("error: {e}")]),
    };
    let recorder = match trace_target(&args.command) {
        Some((command, workload)) => {
            let mut meta: Vec<(&str, &str)> = Vec::new();
            if let Some(w) = workload {
                meta.push(("workload", w));
            }
            Recorder::create(Path::new(&args.workdir), command, &meta).unwrap_or_default()
        }
        None => Recorder::disabled(),
    };
    builder.set_recorder(recorder.clone());
    let (code, mut log) = dispatch(args, &mut builder, &recorder);
    if let Some(done) = recorder.finish() {
        log.push(format!(
            "run journal: {} ({} event(s); inspect with `marshal trace {}`)",
            done.run_id, done.events, done.run_id
        ));
    }
    (code, log)
}

/// [`run_command`]'s per-command body, with the recorder already installed
/// on `builder` and finished by the caller.
#[allow(clippy::too_many_lines)]
fn dispatch(args: &CliArgs, builder: &mut Builder, rec: &Recorder) -> (i32, Vec<String>) {
    let mut log = Vec::new();
    let mut seen = HashSet::new();
    macro_rules! fail {
        ($e:expr) => {{
            log.push(format!("error: {}", $e));
            return (1, log);
        }};
    }
    match &args.command {
        Command::Help => {
            log.push(USAGE.to_owned());
            (0, log)
        }
        Command::Build {
            workload,
            no_disk,
            force,
            keep_going,
            jobs,
            remote,
            runners,
            dry_run,
            progress,
        } => {
            let opts = BuildOptions {
                no_disk: *no_disk,
                force: *force,
                keep_going: *keep_going,
                jobs: *jobs,
                remote: effective_remote(remote),
                runners: runners.clone(),
                dry_run: *dry_run,
                progress: progress_renderer(*progress),
            };
            let result = builder.build(workload, &opts);
            if *progress {
                // Clear the status line before anything else prints, so
                // warnings and the summary never interleave with it.
                eprint!("\r\x1b[2K");
                let _ = std::io::Write::flush(&mut std::io::stderr());
            }
            match result {
                Ok(products) => {
                    render_warnings(&mut log, rec, &mut seen, &products.warnings);
                    if let Some(plan) = &products.dry_run {
                        log.push(format!(
                            "dry run: {} task(s) would execute, {} up to date",
                            plan.len(),
                            products.report.skipped.len()
                        ));
                        for t in plan {
                            log.push(format!("  would run {}", t.id));
                        }
                        return (0, log);
                    }
                    if let Some(summary) = &products.remote {
                        log.push(summary.describe());
                    }
                    log.push(format!(
                        "built `{}`: {} job(s), {} task(s) run, {} up to date",
                        products.workload,
                        products.jobs.len(),
                        products.report.executed.len(),
                        products.report.skipped.len()
                    ));
                    for j in &products.jobs {
                        log.push(format!("  {}", j.name));
                    }
                    // Under --keep-going a failed build still returns its
                    // report: summarise exactly what failed and what was
                    // skipped as a dependent, and exit nonzero.
                    if !products.report.success() {
                        for (id, why) in &products.report.failed {
                            log.push(format!("FAILED {id}: {why}"));
                        }
                        for id in &products.report.poisoned {
                            log.push(format!("skipped {id}: depends on a failed task"));
                        }
                        log.push(format!(
                            "build finished with {} failure(s); {} dependent task(s) skipped",
                            products.report.failed.len(),
                            products.report.poisoned.len()
                        ));
                        return (1, log);
                    }
                    (0, log)
                }
                Err(e) => fail!(e),
            }
        }
        Command::Launch {
            workload,
            job,
            timeout_insts,
            sim,
            hw,
            no_checkpoint,
        } => {
            if let Some(name) = sim {
                if resolve_backend(name).is_none() {
                    fail!(format!(
                        "unknown simulator backend `{name}` (try {})",
                        simulator_names().join(", ")
                    ));
                }
            }
            let hw_config = match hw {
                Some(name) => match hardware_by_name(name) {
                    Some(c) => Some(c),
                    None => fail!(format!(
                        "unknown hardware config `{name}` (try rocket, boom-gshare, boom-tage)"
                    )),
                },
                None => None,
            };
            let products = match builder.build(workload, &BuildOptions::default()) {
                Ok(p) => p,
                Err(e) => fail!(e),
            };
            render_warnings(&mut log, rec, &mut seen, &products.warnings);
            let launch_opts = LaunchOptions {
                timeout_insts: *timeout_insts,
                sim: sim.clone(),
                hw: hw_config,
                no_checkpoint: *no_checkpoint,
            };
            match job {
                Some(job_name) => {
                    let Some(index) = products
                        .jobs
                        .iter()
                        .position(|j| j.name.ends_with(job_name.as_str()))
                    else {
                        fail!(format!("no job named `{job_name}`"));
                    };
                    match crate::launch::launch_job(builder, &products, index, &launch_opts) {
                        Ok(out) => {
                            if args.verbose {
                                log.extend(out.serial.lines().map(str::to_owned));
                            }
                            render_warnings(&mut log, rec, &mut seen, &out.warnings);
                            if out.timed_out {
                                log.push(format!(
                                    "job `{}` TIMED OUT after {} instructions; partial \
                                     uartlog and outputs salvaged in {}",
                                    out.job,
                                    out.instructions,
                                    out.job_dir.display()
                                ));
                                return (EXIT_TIMED_OUT, log);
                            }
                            log.push(format!(
                                "job `{}` exited {} ({} instructions), outputs in {}",
                                out.job,
                                out.exit_code,
                                out.instructions,
                                out.job_dir.display()
                            ));
                            (if out.exit_code == 0 { 0 } else { 1 }, log)
                        }
                        Err(e) => fail!(e),
                    }
                }
                None => match launch_workload(builder, &products, &launch_opts) {
                    Ok(run) => {
                        for j in &run.jobs {
                            if args.verbose {
                                log.extend(j.serial.lines().map(str::to_owned));
                            }
                            render_warnings(&mut log, rec, &mut seen, &j.warnings);
                            if j.timed_out {
                                log.push(format!(
                                    "job `{}` TIMED OUT after {} instructions (partial \
                                     outputs salvaged)",
                                    j.job, j.instructions
                                ));
                            } else {
                                log.push(format!("job `{}` exited {}", j.job, j.exit_code));
                            }
                        }
                        log.extend(run.hook_log.iter().cloned());
                        log.push(format!("outputs in {}", run.run_root.display()));
                        if run.jobs.iter().any(|j| j.timed_out) {
                            return (EXIT_TIMED_OUT, log);
                        }
                        let ok = run.jobs.iter().all(|j| j.exit_code == 0);
                        (if ok { 0 } else { 1 }, log)
                    }
                    Err(e) => fail!(e),
                },
            }
        }
        Command::Cosim {
            workload,
            sim,
            timeout_insts,
            hw,
            inject_divergence,
            no_checkpoint,
        } => {
            let mut opts = CosimOptions {
                timeout_insts: *timeout_insts,
                inject_divergence: *inject_divergence,
                recorder: rec.clone(),
                checkpoints: (!*no_checkpoint)
                    .then(|| crate::checkpoint::CheckpointStore::new(builder.workdir())),
                ..CosimOptions::default()
            };
            if let Some(pair) = sim {
                let parts: Vec<&str> = pair.split(',').map(str::trim).collect();
                let [a, b] = parts.as_slice() else {
                    fail!(format!(
                        "cosim needs two backends: --sim a,b (try {})",
                        simulator_names().join(", ")
                    ));
                };
                opts.backends = ((*a).to_owned(), (*b).to_owned());
            }
            for name in [&opts.backends.0, &opts.backends.1] {
                if resolve_backend(name).is_none() {
                    fail!(format!(
                        "unknown simulator backend `{name}` (try {})",
                        simulator_names().join(", ")
                    ));
                }
            }
            if let Some(name) = hw {
                match hardware_by_name(name) {
                    Some(c) => opts.hw = Some(c),
                    None => fail!(format!(
                        "unknown hardware config `{name}` (try rocket, boom-gshare, boom-tage)"
                    )),
                }
            }
            let products = match builder.build(workload, &BuildOptions::default()) {
                Ok(p) => p,
                Err(e) => fail!(e),
            };
            render_warnings(&mut log, rec, &mut seen, &products.warnings);
            match cosim_workload(&products, &opts) {
                Ok(report) => {
                    for job in &report.jobs {
                        render_warnings(&mut log, rec, &mut seen, &job.warnings);
                        match &job.divergence {
                            None => log.push(format!(
                                "job `{}`: {} and {} agree ({} vs {} instructions)",
                                job.job,
                                job.backends.0,
                                job.backends.1,
                                job.instructions.0,
                                job.instructions.1
                            )),
                            Some(d) => {
                                log.push(format!(
                                    "job `{}`: DIVERGENCE between {} and {}",
                                    job.job, job.backends.0, job.backends.1
                                ));
                                log.extend(d.to_string().lines().map(|l| format!("  {l}")));
                            }
                        }
                    }
                    if report.agreed() {
                        log.push(format!(
                            "cosim `{}`: {} job(s) agree on {} vs {}",
                            report.workload,
                            report.jobs.len(),
                            report.backends.0,
                            report.backends.1
                        ));
                        (0, log)
                    } else {
                        log.push(format!(
                            "cosim `{}`: behaviour diverges between {} and {}",
                            report.workload, report.backends.0, report.backends.1
                        ));
                        (1, log)
                    }
                }
                Err(e) => fail!(e),
            }
        }
        Command::Test {
            workload,
            manual,
            timeout_insts,
            jobs,
            runners,
            no_checkpoint,
        } => {
            let build_opts = BuildOptions {
                jobs: *jobs,
                runners: runners.clone(),
                ..BuildOptions::default()
            };
            let outcomes_result = match manual {
                Some(dir) => {
                    // `test --manual`: compare outputs a simulator already
                    // produced, without re-running anything.
                    match builder.build(workload, &build_opts) {
                        Ok(products) => {
                            render_warnings(&mut log, rec, &mut seen, &products.warnings);
                            let dir = Path::new(dir);
                            let serials: Result<Vec<(String, String)>, MarshalError> = products
                                .jobs
                                .iter()
                                .map(|j| {
                                    let log = dir.join(&j.name).join(crate::output::SERIAL_LOG);
                                    let log = if log.exists() {
                                        log
                                    } else {
                                        dir.join(crate::output::SERIAL_LOG)
                                    };
                                    std::fs::read_to_string(&log)
                                        .map(|s| (j.name.clone(), s))
                                        .map_err(|e| {
                                            MarshalError::Io(format!("read {}: {e}", log.display()))
                                        })
                                })
                                .collect();
                            serials.and_then(|s| crate::test::compare_run(&products, &s))
                        }
                        Err(e) => Err(e),
                    }
                }
                None => test_workload_report(
                    builder,
                    workload,
                    &build_opts,
                    &LaunchOptions {
                        timeout_insts: *timeout_insts,
                        no_checkpoint: *no_checkpoint,
                        ..LaunchOptions::default()
                    },
                )
                .map(|report| {
                    // The same condition can surface both as a build
                    // warning and per launch job: one deduping boundary
                    // renders each once.
                    render_warnings(&mut log, rec, &mut seen, &report.build_warnings);
                    render_warnings(&mut log, rec, &mut seen, &report.launch_warnings);
                    report.outcomes
                }),
            };
            match outcomes_result {
                Ok(outcomes) => {
                    let mut code = 0;
                    for outcome in &outcomes {
                        match outcome {
                            TestOutcome::Pass => log.push("PASS".to_owned()),
                            TestOutcome::NoReference => {
                                log.push("PASS (no reference output)".to_owned())
                            }
                            TestOutcome::Fail { job, missing } => {
                                log.push(format!("FAIL {job}: missing `{missing}`"));
                                code = 1;
                            }
                            TestOutcome::TimedOut { job, instructions } => {
                                log.push(format!(
                                    "FAIL {job}: watchdog timeout after {instructions} \
                                     instructions (hung payload; partial uartlog salvaged)"
                                ));
                                code = 1;
                            }
                        }
                    }
                    (code, log)
                }
                Err(e) => fail!(e),
            }
        }
        Command::Install {
            workload,
            hw,
            connector,
            remote,
            runners,
        } => {
            if hardware_by_name(hw).is_none() {
                fail!(format!(
                    "unknown hardware config `{hw}` (try rocket, boom-gshare, boom-tage)"
                ));
            }
            let Some(conn) = crate::connector::connector_by_name(connector) else {
                fail!(format!(
                    "unknown simulator connector `{connector}` (try {})",
                    crate::connector::connector_names().join(", ")
                ));
            };
            let build_opts = BuildOptions {
                remote: effective_remote(remote),
                runners: runners.clone(),
                ..BuildOptions::default()
            };
            let products = match builder.build(workload, &build_opts) {
                Ok(p) => p,
                Err(e) => fail!(e),
            };
            render_warnings(&mut log, rec, &mut seen, &products.warnings);
            if let Some(summary) = &products.remote {
                log.push(summary.describe());
            }
            // The firesim connector keeps the classic manifest path; all
            // connectors write into the workload's install dir.
            let _ = install_workload(builder, &products);
            let dir = builder.install_dir(&products.workload);
            match conn.install(&products, &dir) {
                Ok(path) => {
                    log.push(format!(
                        "installed `{}` ({} node(s), {} connector) -> {}",
                        products.workload,
                        products.jobs.len(),
                        conn.name(),
                        path.display()
                    ));
                    (0, log)
                }
                Err(e) => fail!(e),
            }
        }
        Command::Clean {
            workload,
            keep_runs,
        } => match clean_workload_with(builder, workload, keep_runs.unwrap_or(DEFAULT_KEEP_RUNS)) {
            Ok(report) => {
                log.push(format!(
                    "cleaned `{workload}` ({} state entries forgotten, \
                         {} level manifests removed, {} unreferenced blobs pruned, \
                         {} bytes reclaimed)",
                    report.state_entries,
                    report.levels_removed,
                    report.blobs_pruned,
                    report.bytes_reclaimed
                ));
                if let Some(reason) = &report.prune_skipped {
                    log.push(format!("note: blob pruning deferred: {reason}"));
                }
                if report.runs_pruned > 0 {
                    log.push(format!(
                        "pruned {} old run journal(s) ({} bytes reclaimed)",
                        report.runs_pruned, report.run_bytes_reclaimed
                    ));
                }
                if report.checkpoints_pruned > 0 {
                    log.push(format!(
                        "pruned {} stale boot checkpoint(s) ({} bytes reclaimed)",
                        report.checkpoints_pruned, report.checkpoint_bytes_reclaimed
                    ));
                }
                if let Some(reason) = &report.checkpoint_prune_skipped {
                    log.push(format!("note: checkpoint pruning deferred: {reason}"));
                }
                (0, log)
            }
            Err(e) => fail!(e),
        },
        Command::Serve { port, exec } => {
            marshal_netstore::server::install_sigint_handler();
            let addr = format!("0.0.0.0:{port}");
            let mut server = match marshal_netstore::Server::bind(
                &addr,
                std::path::Path::new(&args.workdir),
                std::time::Duration::from_secs(10),
            ) {
                Ok(s) => s,
                Err(e) => fail!(e),
            };
            if *exec {
                let handler = match crate::runners::serve_exec_handler(
                    builder.board().clone(),
                    builder.search().clone(),
                    &args.workdir,
                ) {
                    Ok(h) => h,
                    Err(e) => fail!(e),
                };
                server.set_exec_handler(handler);
            }
            // The daemon blocks until drained, so announce readiness now
            // rather than in the post-run log.
            match server.local_addr() {
                Ok(a) => println!(
                    "marshal serve: exporting {} on {a}{} (Ctrl-C to drain and exit)",
                    args.workdir,
                    if *exec { " with remote execution" } else { "" }
                ),
                Err(e) => fail!(e),
            }
            let summary = server.run();
            log.push(format!(
                "serve drained: {} connection(s), {} request(s), \
                 {} malformed frame(s) rejected",
                summary.connections, summary.requests, summary.bad_frames
            ));
            (0, log)
        }
        Command::Scrub { remote } => {
            let client = effective_remote(remote).map(|addr| {
                marshal_netstore::RemoteStore::tcp(&addr, marshal_netstore::RetryPolicy::default())
            });
            if let Some(client) = &client {
                client.set_recorder(rec.clone());
            }
            match crate::scrub::scrub_pool_with(Path::new(&args.workdir), client.as_ref(), rec) {
                Ok(report) => {
                    render_warnings(&mut log, rec, &mut seen, &report.warnings);
                    log.push(format!(
                        "scrubbed pool: {} blob(s) ({} bytes) verified, {} corrupt \
                         ({} bytes quarantined), {} healed from remote, {} unrecoverable; \
                         {} manifest(s) checked, {} torn or orphaned removed",
                        report.blobs_checked,
                        report.bytes_checked,
                        report.corrupt,
                        report.quarantined_bytes,
                        report.healed,
                        report.unrecoverable,
                        report.manifests_checked,
                        report.manifests_removed
                    ));
                    (if report.unrecoverable > 0 { 1 } else { 0 }, log)
                }
                Err(e) => fail!(e),
            }
        }
        Command::Trace {
            run,
            export,
            summary,
            last,
        } => {
            let workdir = Path::new(&args.workdir);
            let selected = match (run, *last) {
                (Some(id), _) => Some(id.clone()),
                (None, true) => {
                    let runs = marshal_trace::list_runs(workdir);
                    match runs.last() {
                        Some(info) => Some(info.run_id.clone()),
                        None => fail!("no recorded runs to inspect (run a build first)"),
                    }
                }
                (None, false) => None,
            };
            let Some(run_id) = selected else {
                // No run named: list what the workdir has.
                let runs = marshal_trace::list_runs(workdir);
                if runs.is_empty() {
                    log.push("no recorded runs (build, launch, test, cosim, and scrub record journals under workdir/runs/)".to_owned());
                    return (0, log);
                }
                log.push(format!(
                    "{:<26} {:<8} {:<24} {:>8}  status",
                    "run", "command", "workload", "events"
                ));
                for info in &runs {
                    log.push(format!(
                        "{:<26} {:<8} {:<24} {:>8}  {}",
                        info.run_id,
                        info.command.as_deref().unwrap_or("?"),
                        info.workload.as_deref().unwrap_or("-"),
                        info.events,
                        if info.torn { "TORN" } else { "ok" }
                    ));
                }
                return (0, log);
            };
            let journal_path = workdir.join("runs").join(&run_id).join("journal.jsonl");
            let journal = match marshal_trace::read_journal(&journal_path) {
                Ok(j) => j,
                Err(e) => fail!(e),
            };
            match export.as_deref() {
                Some("chrome") => log.push(marshal_trace::chrome_trace(&journal)),
                Some("json") => {
                    log.extend(journal.records.iter().map(marshal_trace::Record::encode))
                }
                Some(other) => fail!(format!(
                    "unknown export format `{other}` (try chrome, json)"
                )),
                None => {}
            }
            if export.is_none() || *summary {
                log.extend(marshal_trace::summarize(&journal).render());
            }
            if journal.torn {
                log.push(format!(
                    "note: journal tail torn ({}); the {} verified event(s) above are what completed before the run died",
                    journal.torn_detail.as_deref().unwrap_or("unknown damage"),
                    journal.records.len()
                ));
            }
            (0, log)
        }
    }
}

/// The `--progress` status line: a single carriage-returned line on
/// stderr, redrawn from the scheduler thread whenever the picture
/// changes. Stderr so piping stdout stays clean; the Build dispatch
/// clears the line before any warning or summary prints.
fn progress_renderer(enabled: bool) -> Option<marshal_depgraph::ProgressFn> {
    if !enabled {
        return None;
    }
    Some(std::sync::Arc::new(|p: &marshal_depgraph::ExecProgress| {
        eprint!(
            "\r\x1b[2K[{done}/{total}] ready {ready} running {running} failed {failed}",
            done = p.done,
            total = p.total,
            ready = p.ready,
            running = p.running,
            failed = p.failed
        );
        let _ = std::io::Write::flush(&mut std::io::stderr());
    }))
}

/// The effective remote daemon address: the `--remote` flag, else the
/// `MARSHAL_REMOTE` environment variable, else none.
fn effective_remote(flag: &Option<String>) -> Option<String> {
    flag.clone().or_else(|| {
        std::env::var("MARSHAL_REMOTE")
            .ok()
            .filter(|s| !s.is_empty())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<CliArgs, MarshalError> {
        let v: Vec<String> = words.iter().map(|s| (*s).to_owned()).collect();
        parse_args(&v)
    }

    #[test]
    fn parse_build() {
        let args = parse(&["build", "--no-disk", "intspeed.json"]).unwrap();
        assert_eq!(
            args.command,
            Command::Build {
                workload: "intspeed.json".into(),
                no_disk: true,
                force: false,
                keep_going: false,
                jobs: None,
                remote: None,
                runners: None,
                dry_run: false,
                progress: false
            }
        );
    }

    #[test]
    fn parse_runners_dry_run_progress() {
        let args = parse(&[
            "build",
            "--runners",
            "remote:cache:9021,local:2",
            "--dry-run",
            "--progress",
            "w.json",
        ])
        .unwrap();
        assert!(matches!(
            args.command,
            Command::Build { ref runners, dry_run: true, progress: true, .. }
                if runners.as_deref() == Some("remote:cache:9021,local:2")
        ));
        let args = parse(&["test", "--runners", "local:4", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Test { ref runners, .. } if runners.as_deref() == Some("local:4")
        ));
        let args = parse(&["install", "--runners", "local", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Install { ref runners, .. } if runners.as_deref() == Some("local")
        ));
        // Malformed lists fail at parse time with a usage error.
        assert!(parse(&["build", "--runners", "ssh:box", "w.json"]).is_err());
        assert!(parse(&["build", "--runners", "local:0", "w.json"]).is_err());
        assert!(parse(&["build", "--runners"]).is_err());
    }

    #[test]
    fn parse_remote() {
        let args = parse(&["build", "--remote", "cache:9300", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Build { ref remote, .. } if remote.as_deref() == Some("cache:9300")
        ));
        let args = parse(&["install", "--remote", "cache:9300", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Install { ref remote, .. } if remote.as_deref() == Some("cache:9300")
        ));
        assert!(parse(&["build", "--remote"]).is_err());
    }

    #[test]
    fn parse_serve_and_scrub() {
        let args = parse(&["serve"]).unwrap();
        assert_eq!(
            args.command,
            Command::Serve {
                port: 9300,
                exec: false
            }
        );
        let args = parse(&["serve", "--port", "7777", "--exec"]).unwrap();
        assert_eq!(
            args.command,
            Command::Serve {
                port: 7777,
                exec: true
            }
        );
        assert!(parse(&["serve", "--port", "notaport"]).is_err());
        assert!(parse(&["serve", "w.json"]).is_err());
        let args = parse(&["scrub"]).unwrap();
        assert_eq!(args.command, Command::Scrub { remote: None });
        let args = parse(&["scrub", "--remote", "cache:9300"]).unwrap();
        assert_eq!(
            args.command,
            Command::Scrub {
                remote: Some("cache:9300".into())
            }
        );
        assert!(parse(&["scrub", "w.json"]).is_err());
    }

    #[test]
    fn parse_jobs() {
        let args = parse(&["build", "-j", "4", "w.json"]).unwrap();
        assert!(matches!(args.command, Command::Build { jobs: Some(4), .. }));
        let args = parse(&["build", "--jobs", "8", "w.json"]).unwrap();
        assert!(matches!(args.command, Command::Build { jobs: Some(8), .. }));
        let args = parse(&["test", "-j", "2", "w.json"]).unwrap();
        assert!(matches!(args.command, Command::Test { jobs: Some(2), .. }));
        // Not a count, zero, or missing: usage errors.
        assert!(parse(&["build", "-j", "many", "w.json"]).is_err());
        assert!(parse(&["build", "-j", "0", "w.json"]).is_err());
        assert!(parse(&["build", "-j"]).is_err());
    }

    #[test]
    fn parse_keep_going() {
        let args = parse(&["build", "--keep-going", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Build {
                keep_going: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_timeout_insts() {
        let args = parse(&["launch", "--timeout-insts", "5000", "w.json"]).unwrap();
        assert_eq!(
            args.command,
            Command::Launch {
                workload: "w.json".into(),
                job: None,
                timeout_insts: Some(5000),
                sim: None,
                hw: None,
                no_checkpoint: false
            }
        );
        let args = parse(&["test", "--timeout-insts", "9", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Test {
                timeout_insts: Some(9),
                ..
            }
        ));
        assert!(parse(&["launch", "--timeout-insts", "soon", "w.json"]).is_err());
        assert!(parse(&["launch", "--timeout-insts"]).is_err());
    }

    #[test]
    fn parse_global_options() {
        let args = parse(&[
            "-d",
            "/w",
            "--workdir",
            "/tmp/wd",
            "-v",
            "launch",
            "--job",
            "client",
            "w.json",
        ])
        .unwrap();
        assert_eq!(args.search_dirs, vec!["/w"]);
        assert_eq!(args.workdir, "/tmp/wd");
        assert!(args.verbose);
        assert_eq!(
            args.command,
            Command::Launch {
                workload: "w.json".into(),
                job: Some("client".into()),
                timeout_insts: None,
                sim: None,
                hw: None,
                no_checkpoint: false
            }
        );
    }

    #[test]
    fn parse_launch_sim() {
        let args = parse(&["launch", "--sim", "spike", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Launch { ref sim, .. } if sim.as_deref() == Some("spike")
        ));
        let args = parse(&["launch", "--sim", "rtl", "--hw", "rocket", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Launch { ref sim, ref hw, .. }
                if sim.as_deref() == Some("rtl") && hw.as_deref() == Some("rocket")
        ));
    }

    #[test]
    fn parse_no_checkpoint() {
        let args = parse(&["launch", "--no-checkpoint", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Launch {
                no_checkpoint: true,
                ..
            }
        ));
        let args = parse(&["cosim", "--no-checkpoint", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Cosim {
                no_checkpoint: true,
                ..
            }
        ));
        let args = parse(&["test", "--no-checkpoint", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Test {
                no_checkpoint: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_cosim() {
        let args = parse(&["cosim", "w.json"]).unwrap();
        assert_eq!(
            args.command,
            Command::Cosim {
                workload: "w.json".into(),
                sim: None,
                timeout_insts: None,
                hw: None,
                inject_divergence: false,
                no_checkpoint: false
            }
        );
        let args = parse(&[
            "cosim",
            "--sim",
            "qemu,spike",
            "--inject-divergence",
            "w.json",
        ])
        .unwrap();
        assert_eq!(
            args.command,
            Command::Cosim {
                workload: "w.json".into(),
                sim: Some("qemu,spike".into()),
                timeout_insts: None,
                hw: None,
                inject_divergence: true,
                no_checkpoint: false
            }
        );
        assert!(parse(&["cosim"]).is_err());
    }

    #[test]
    fn parse_install_hw() {
        let args = parse(&["install", "--hw", "boom-gshare", "w.json"]).unwrap();
        assert_eq!(
            args.command,
            Command::Install {
                workload: "w.json".into(),
                hw: "boom-gshare".into(),
                connector: "firesim".into(),
                remote: None,
                runners: None
            }
        );
        let args = parse(&["install", "--sim", "vcs", "w.json"]).unwrap();
        assert!(
            matches!(args.command, Command::Install { ref connector, .. } if connector == "vcs")
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate", "w.json"]).is_err());
        assert!(parse(&["build"]).is_err());
        assert!(parse(&["build", "a.json", "b.json"]).is_err());
        assert!(parse(&["build", "--bogus", "w.json"]).is_err());
        assert!(parse(&["-d"]).is_err());
    }

    #[test]
    fn help_is_ok() {
        let args = parse(&["help"]).unwrap();
        assert_eq!(args.command, Command::Help);
    }

    #[test]
    fn parse_trace() {
        let args = parse(&["trace"]).unwrap();
        assert_eq!(
            args.command,
            Command::Trace {
                run: None,
                export: None,
                summary: false,
                last: false
            }
        );
        let args = parse(&["trace", "--last", "--summary"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Trace {
                last: true,
                summary: true,
                ..
            }
        ));
        let args = parse(&["trace", "r0000000000001-1-0", "--export", "chrome"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Trace { ref run, ref export, .. }
                if run.as_deref() == Some("r0000000000001-1-0")
                    && export.as_deref() == Some("chrome")
        ));
        assert!(parse(&["trace", "r1", "--last"]).is_err());
        assert!(parse(&["trace", "--export"]).is_err());
    }

    #[test]
    fn parse_keep_runs() {
        let args = parse(&["clean", "w.json"]).unwrap();
        assert_eq!(
            args.command,
            Command::Clean {
                workload: "w.json".into(),
                keep_runs: None
            }
        );
        let args = parse(&["clean", "--keep-runs", "3", "w.json"]).unwrap();
        assert!(matches!(
            args.command,
            Command::Clean {
                keep_runs: Some(3),
                ..
            }
        ));
        assert!(parse(&["clean", "--keep-runs", "lots", "w.json"]).is_err());
        assert!(parse(&["clean", "--keep-runs"]).is_err());
    }

    #[test]
    fn warning_dedupe_at_render_boundary() {
        let rec = Recorder::disabled();
        let mut log = Vec::new();
        let mut seen = HashSet::new();
        // The same coded condition arriving through two channels (build
        // products, then a launch output) renders exactly once.
        let w = Warning::with_code(
            "hello.0",
            "output `x` missing after watchdog timeout",
            "watchdog-missing-output",
        );
        render_warnings(&mut log, &rec, &mut seen, std::slice::from_ref(&w));
        render_warnings(&mut log, &rec, &mut seen, std::slice::from_ref(&w));
        assert_eq!(log.len(), 1, "{log:?}");
        assert_eq!(log[0], w.to_string(), "rendering format unchanged");
        // Generic warnings carry no classification: distinct messages in
        // the same context must both survive, but a literal repeat not.
        let a = Warning::new("ctx", "first thing");
        let b = Warning::new("ctx", "second thing");
        render_warnings(&mut log, &rec, &mut seen, &[a.clone(), b, a]);
        assert_eq!(log.len(), 3, "{log:?}");
    }

    #[test]
    fn hardware_names() {
        assert!(hardware_by_name("rocket").is_some());
        assert!(hardware_by_name("boom-gshare").is_some());
        assert!(hardware_by_name("tage").is_some());
        assert!(hardware_by_name("pentium").is_none());
    }
}
