//! The `build` command (§III-B): turn a workload specification into a boot
//! binary and disk image, with doit-style incremental rebuilds.
//!
//! Build phases, as in the paper:
//! 1. configuration (parse + inherit + expand jobs),
//! 2. recursive parent image builds (one depgraph task per chain level),
//! 3. `host-init`,
//! 4. boot binary (config fragments → modules → initramfs → kernel →
//!    firmware link),
//! 5. disk image (parent copy → files/overlay → guest-init → boot command),
//! 6. `--no-disk` initramfs embedding.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use marshal_config::{expand_jobs, resolve_workload, SearchPath, WorkloadSpec};
use marshal_depgraph::{BuildReport, Graph, StateDb, Task};
use marshal_firmware::{build_firmware, link_boot_binary, BootBinary, FirmwareBuild};
use marshal_image::{initsys, BootPayload, FsImage, InitSystem};
use marshal_linux::kconfig::KernelConfig;
use marshal_linux::kernel::build_kernel;
use marshal_linux::InitramfsSpec;
use marshal_netstore::{RemoteFetchSummary, RemoteStore, RetryPolicy};
use marshal_script::{HostEnv, Interp, Value};
use marshal_sim_functional::LaunchMode;
use marshal_trace::Recorder;

use crate::board::Board;
use crate::error::MarshalError;
use crate::imagestore::{ImageStore, PoolPin};
use crate::simulator::{default_backend, simulator_for, BackendOptions};
use crate::warnings::{Severity, Warning};

/// Options for `build`.
#[derive(Clone, Default)]
pub struct BuildOptions {
    /// Embed the disk image in the initramfs (`--no-disk`).
    pub no_disk: bool,
    /// Ignore the state database and rebuild everything.
    pub force: bool,
    /// On task failure, keep building every job not downstream of the
    /// failure and report the aggregate (`--keep-going`). Without it the
    /// first failure aborts the build.
    pub keep_going: bool,
    /// Worker threads for task execution (`-j N`). `None` uses the host's
    /// available parallelism ([`marshal_depgraph::ExecOptions::host_threads`]);
    /// `Some(1)` builds serially.
    pub jobs: Option<usize>,
    /// A `marshal serve` daemon (`HOST:PORT`) to fetch pre-built levels
    /// from before building them locally (`--remote` / `MARSHAL_REMOTE`).
    /// The remote is an accelerator, never a dependency: any fetch failure
    /// degrades to the ordinary local build.
    pub remote: Option<String>,
    /// Runner pool selection (`--runners local[:N],remote:HOST:PORT`).
    /// `None` uses a single local thread pool. Remote runners dispatch
    /// level builds to `marshal serve --exec` daemons; a local fallback is
    /// always present (see [`crate::runners::make_runners`]).
    pub runners: Option<String>,
    /// Plan without executing (`--dry-run`): record what would build and
    /// leave the state database and filesystem untouched.
    pub dry_run: bool,
    /// Live progress callback (`--progress`), invoked from the scheduler
    /// thread whenever the ready/running/done/failed picture changes.
    pub progress: Option<marshal_depgraph::ProgressFn>,
}

impl std::fmt::Debug for BuildOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildOptions")
            .field("no_disk", &self.no_disk)
            .field("force", &self.force)
            .field("keep_going", &self.keep_going)
            .field("jobs", &self.jobs)
            .field("remote", &self.remote)
            .field("runners", &self.runners)
            .field("dry_run", &self.dry_run)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// What kind of artifact a job produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// A Linux workload: boot binary plus (unless diskless) a disk image.
    Linux {
        /// Path of the serialised boot binary.
        boot_path: PathBuf,
        /// Path of the serialised disk image (None for `--no-disk`).
        disk_path: Option<PathBuf>,
    },
    /// A bare-metal workload: a single MEXE binary.
    Bare {
        /// Path of the binary.
        bin_path: PathBuf,
    },
}

/// One job's build products.
#[derive(Debug, Clone)]
pub struct JobArtifacts {
    /// Qualified name (`workload.job`, or just the workload name).
    pub name: String,
    /// The job's fully merged spec.
    pub spec: WorkloadSpec,
    /// The artifact paths.
    pub kind: JobKind,
}

/// Everything `build` produced for one workload.
#[derive(Debug, Clone)]
pub struct BuildProducts {
    /// The top-level workload name.
    pub workload: String,
    /// The top-level merged spec (post-run-hook, testing, outputs live here).
    pub top_spec: WorkloadSpec,
    /// Per-job artifacts, in job declaration order.
    pub jobs: Vec<JobArtifacts>,
    /// Which tasks executed vs. were skipped (the §III-B incremental-build
    /// behaviour).
    pub report: BuildReport,
    /// The workload's source directory (for hooks and reference outputs).
    pub source_dir: Option<PathBuf>,
    /// Non-fatal diagnostics, in the order they arose (state-database
    /// recovery, interrupted-task rebuilds). The CLI prints each once;
    /// library code never writes to stderr.
    pub warnings: Vec<Warning>,
    /// Remote-fetch accounting when the build ran with a `--remote`
    /// daemon configured (`None` for purely local builds).
    pub remote: Option<RemoteFetchSummary>,
    /// For `--dry-run` builds, the tasks that would have executed, in
    /// dispatch order (`None` for real builds).
    pub dry_run: Option<Vec<marshal_depgraph::PlannedTask>>,
}

/// The FireMarshal build engine.
#[derive(Debug)]
pub struct Builder {
    board: Board,
    search: SearchPath,
    workdir: PathBuf,
    db: StateDb,
    /// Warnings gathered while opening the state database, handed to the
    /// first build's [`BuildProducts::warnings`].
    open_warnings: Vec<Warning>,
    /// Memoized artifact-distribution client; kept across builds so the
    /// circuit breaker's history survives within one process.
    remote_client: Option<Arc<RemoteStore>>,
    /// Run-journal recorder; disabled by default. Cloned into the task
    /// executor, the image store, and the remote client so the whole build
    /// lands in one journal.
    recorder: Recorder,
}

impl Builder {
    /// Creates a builder with a persistent state database under `workdir`.
    ///
    /// # Errors
    ///
    /// [`MarshalError::Build`] when the state database is unreadable.
    pub fn new(
        board: Board,
        search: SearchPath,
        workdir: impl Into<PathBuf>,
    ) -> Result<Builder, MarshalError> {
        let workdir = workdir.into();
        let db = StateDb::open(workdir.join("state.db"))?;
        let mut open_warnings = Vec::new();
        if let Some(note) = db.recovery() {
            open_warnings.push(Warning::with_code("", note, "state-recovered"));
        }
        for id in db.interrupted() {
            open_warnings.push(Warning::with_code(
                id.clone(),
                "a previous run was interrupted while this task was executing; \
                 its state was discarded and it will rebuild",
                "task-interrupted",
            ));
        }
        Ok(Builder {
            board,
            search,
            workdir,
            db,
            open_warnings,
            remote_client: None,
            recorder: Recorder::disabled(),
        })
    }

    /// Installs a run-journal recorder. Every subsequent build, launch, and
    /// test through this builder records spans and events into it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The builder's recorder (disabled unless [`Builder::set_recorder`]
    /// installed one).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Installs a pre-constructed artifact-distribution client, used by
    /// builds whose options do not name a `remote` address. Tests use this
    /// to build over loopback or fault-injecting transports; the CLI goes
    /// through [`BuildOptions::remote`] instead.
    pub fn set_remote_client(&mut self, client: Arc<RemoteStore>) {
        self.remote_client = Some(client);
    }

    /// If opening the state database recovered from corruption, the
    /// human-readable account (also surfaced as a build warning).
    pub fn state_recovery(&self) -> Option<&str> {
        self.db.recovery()
    }

    /// Warnings gathered while opening the state database that no build
    /// has reported yet (each build drains them into
    /// [`BuildProducts::warnings`]).
    pub fn open_warnings(&self) -> &[Warning] {
        &self.open_warnings
    }

    /// The board this builder targets.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The workload search path.
    pub fn search(&self) -> &SearchPath {
        &self.search
    }

    /// The working directory.
    pub fn workdir(&self) -> &Path {
        &self.workdir
    }

    /// Where a job's artifacts live.
    pub fn image_dir(&self, qualified: &str) -> PathBuf {
        self.workdir.join("images").join(qualified)
    }

    /// Where a workload's run outputs live.
    pub fn run_dir(&self, workload: &str) -> PathBuf {
        self.workdir.join("runs").join(workload)
    }

    /// Where a workload's install manifest lives.
    pub fn install_dir(&self, workload: &str) -> PathBuf {
        self.workdir.join("installs").join(workload)
    }

    /// All recorded build-state task ids.
    pub(crate) fn state_task_ids(&self) -> Vec<String> {
        self.db.task_ids()
    }

    /// Forgets one build-state entry.
    pub(crate) fn forget_state(&mut self, id: &str) -> bool {
        self.db.forget(id)
    }

    /// Flushes the state database.
    pub(crate) fn flush_state(&self) -> Result<(), MarshalError> {
        self.db.flush().map_err(MarshalError::from)
    }

    /// The directory containing the workload's spec file, when it came from
    /// disk (hooks, overlays, and `bin` resolve relative to it).
    pub fn source_dir(&self, name: &str) -> Option<PathBuf> {
        match self.search.locate(name) {
            Some(marshal_config::search::Located::File(p)) => p.parent().map(Path::to_path_buf),
            _ => None,
        }
    }

    /// Builds a workload: every job's boot binary and disk image.
    ///
    /// # Errors
    ///
    /// Configuration, task, simulation (guest-init), and I/O errors.
    pub fn build(
        &mut self,
        name: &str,
        options: &BuildOptions,
    ) -> Result<BuildProducts, MarshalError> {
        let resolved = resolve_workload(&self.search, name)?;
        let jobs = expand_jobs(&self.search, &resolved)?;
        let source_dir = self.source_dir(name);
        // Fail fast on a malformed --runners list, before any planning.
        let runner_specs = match &options.runners {
            Some(list) => {
                Some(crate::runners::parse_runner_specs(list).map_err(MarshalError::Other)?)
            }
            None => None,
        };
        if options.force && !options.dry_run {
            self.db.clear();
        }

        // Artifact-distribution client, memoized across builds on this
        // builder so the circuit breaker's failure history carries over.
        if let Some(addr) = &options.remote {
            let stale = match &self.remote_client {
                Some(c) => c.label() != addr,
                None => true,
            };
            if stale {
                self.remote_client = Some(Arc::new(RemoteStore::tcp(addr, RetryPolicy::default())));
            }
        }
        let remote = self.remote_client.clone();

        let mut graph = Graph::new();
        // Shared store for images produced by level tasks within this build.
        let mut store = ImageStore::new(&self.workdir);
        store.set_recorder(self.recorder.clone());
        if let Some(r) = &remote {
            // Loads heal corrupt/missing pool blobs from the remote too.
            store.set_remote(Arc::clone(r));
        }
        let store = store;

        // --- host-init (§III-B step 3) -----------------------------------
        // Like FireMarshal, host-init is a hook that runs unconditionally
        // on every build, *before* task planning — so overlay/file hashes
        // always see its outputs. The scripts themselves are expected to be
        // idempotent (assembling the same sources yields the same bytes, so
        // downstream tasks stay up to date). Dry runs skip it: planning
        // must not touch the filesystem.
        if let Some(hi) = resolved
            .spec
            .host_init
            .as_ref()
            .filter(|_| !options.dry_run)
        {
            let dir = source_dir.clone().ok_or_else(|| {
                MarshalError::Other(format!(
                    "workload `{name}` has host-init but no source directory"
                ))
            })?;
            let (script_file, args) = split_command(hi);
            let script_path = dir.join(&script_file);
            let script = std::fs::read_to_string(&script_path).map_err(|e| {
                MarshalError::Io(format!("host-init {}: {e}", script_path.display()))
            })?;
            let mut env = HostEnv::new(&dir);
            let mut interp = Interp::new();
            let argv: Vec<Value> = args.iter().map(|a| Value::Str(a.clone())).collect();
            interp
                .run(&script, &mut env, &argv)
                .map_err(|e| MarshalError::Script(format!("host-init: {e}")))?;
        }

        // --- per-job tasks -------------------------------------------------
        let mut job_plans = Vec::new();
        for job in &jobs {
            let plan = self.plan_job(
                &mut graph,
                &store,
                job,
                options,
                source_dir.as_deref(),
                name,
            )?;
            job_plans.push(plan);
        }

        let mut warnings = std::mem::take(&mut self.open_warnings);
        // Detect pool damage *before* execution: a torn manifest or a
        // manifest referencing a pruned/quarantined blob is removed here,
        // so the owning level reruns this very build instead of poisoning
        // its consumers with a load failure.
        preflight_pool(&store, &job_plans, &mut warnings);

        let roots: Vec<&str> = job_plans.iter().map(|p| p.final_task.as_str()).collect();
        let threads = options
            .jobs
            .unwrap_or_else(marshal_depgraph::ExecOptions::host_threads);
        let opts = marshal_depgraph::ExecOptions {
            keep_going: options.keep_going,
            threads,
            recorder: self.recorder.clone(),
            progress: options.progress.clone(),
        };
        let exec_span = self.recorder.span(
            "build",
            &[("workload", name), ("threads", &threads.to_string())],
        );
        // Pin the blob pool for the duration of execution: a concurrent
        // `marshal clean` in another process defers pruning while any live
        // pin exists, so a blob this build just decided not to rewrite
        // cannot vanish under it.
        let pin = PoolPin::acquire(store.objects_dir()).map_err(MarshalError::Io)?;
        let mut dry_plan = None;
        let mut exec_clients: Vec<Arc<RemoteStore>> = Vec::new();
        let report = if options.dry_run {
            let (runner, plan) = marshal_depgraph::DryRunRunner::new();
            dry_plan = Some(plan);
            graph.execute_roots_with_runners(&mut self.db, &roots, &opts, vec![Box::new(runner)])
        } else if let Some(specs) = &runner_specs {
            let (runners, clients) =
                crate::runners::make_runners(specs, &store, threads, &self.recorder);
            exec_clients = clients;
            graph.execute_roots_with_runners(&mut self.db, &roots, &opts, runners)
        } else {
            graph.execute_roots_with(&mut self.db, &roots, &opts)
        };
        drop(pin);
        match &report {
            Ok(r) => exec_span.end_with(&[
                ("outcome", if r.success() { "ok" } else { "failed" }),
                ("executed", &r.executed.len().to_string()),
                ("skipped", &r.skipped.len().to_string()),
            ]),
            Err(_) => exec_span.end_with(&[("outcome", "error")]),
        }
        let report = report?;
        // Flush even when keep-going recorded partial progress: the
        // successful subtrees stay incremental on the next attempt.
        self.db.flush()?;

        if let Some(r) = &remote {
            for note in r.take_notes() {
                warnings.push(
                    Warning::with_code("remote", note, "remote-degraded")
                        .severity(Severity::Degraded),
                );
            }
        }
        // Remote *runner* degradations (exec refused, daemon died, fell
        // back to local) surface the same way fetch degradations do.
        for client in &exec_clients {
            for note in client.take_notes() {
                warnings.push(
                    Warning::with_code("remote-runner", note, "remote-runner")
                        .severity(Severity::Degraded),
                );
            }
        }

        let jobs = job_plans
            .into_iter()
            .map(|p| JobArtifacts {
                name: p.name,
                spec: p.spec,
                kind: p.kind,
            })
            .collect();
        Ok(BuildProducts {
            workload: resolved.spec.name.clone(),
            top_spec: resolved.spec,
            jobs,
            report,
            source_dir,
            warnings,
            remote: remote.as_ref().map(|r| r.summary()),
            dry_run: dry_plan.map(|p| p.tasks()),
        })
    }

    fn plan_job(
        &self,
        graph: &mut Graph,
        store: &ImageStore,
        job: &marshal_config::jobs::ExpandedJob,
        options: &BuildOptions,
        source_dir: Option<&Path>,
        workload: &str,
    ) -> Result<JobPlan, MarshalError> {
        let spec = &job.workload.spec;
        let qualified = job.qualified_name.clone();
        let image_dir = self.image_dir(&qualified);
        std::fs::create_dir_all(&image_dir)
            .map_err(|e| MarshalError::Io(format!("mkdir {}: {e}", image_dir.display())))?;

        // Bare-metal jobs: a hard-coded binary, usually built by host-init.
        if spec.distro.as_deref() == Some("bare-metal") || spec.bin.is_some() {
            let bin_name = spec.bin.clone().ok_or_else(|| {
                MarshalError::Other(format!("bare-metal job `{qualified}` needs a `bin` option"))
            })?;
            let src = source_dir
                .map(|d| d.join(&bin_name))
                .filter(|p| true_or_missing(p))
                .ok_or_else(|| {
                    MarshalError::Other(format!(
                        "job `{qualified}`: binary `{bin_name}` not found (did host-init build it?)"
                    ))
                })?;
            let bin_path = image_dir.join("bin.mexe");
            let task_id = format!("bin:{qualified}");
            let bin_out = bin_path.clone();
            let task = Task::new(task_id.clone(), move || {
                // Copy the (possibly host-init-generated) binary into the
                // artifact directory.
                let data =
                    std::fs::read(&src).map_err(|e| format!("read {}: {e}", src.display()))?;
                crate::integrity::write_artifact(&bin_out, &data)
            })
            .input(bin_name.as_bytes())
            .input(&bin_input_hash(source_dir, &bin_name))
            .output(&bin_path)
            .claim(crate::integrity::sidecar_path(&bin_path));
            graph.add(task)?;
            return Ok(JobPlan {
                name: qualified,
                spec: spec.clone(),
                kind: JobKind::Bare { bin_path },
                final_task: task_id,
                level_keys: Vec::new(),
                job_level: None,
            });
        }

        // Linux jobs.
        let distro = spec.distro.clone().ok_or_else(|| {
            MarshalError::Other(format!(
                "workload `{qualified}` resolves to no distro; its root base must set one"
            ))
        })?;
        let base_image = self.board.distro_image(&distro).cloned().ok_or_else(|| {
            MarshalError::Other(format!(
                "board `{}` provides no `{distro}` base image",
                self.board.name
            ))
        })?;
        let init_system = InitSystem::for_distro(&distro).ok_or_else(|| {
            MarshalError::Other(format!("distro `{distro}` has no init system mapping"))
        })?;

        // --- image chain: one task per inheritance level (step 2/5) ------
        let mut prev_task: Option<String> = None;
        let mut prev_key = String::new();
        let mut level_keys = Vec::new();
        for (i, level) in job.workload.levels.iter().enumerate() {
            let key = if prev_key.is_empty() {
                level.name.clone()
            } else {
                format!("{prev_key}/{}", level.name)
            };
            level_keys.push(key.clone());
            let task_id = format!("img:{key}");
            if graph.get(&task_id).is_none() {
                let mut task = self.level_task(
                    &task_id,
                    store,
                    level,
                    if i == 0 {
                        Some(base_image.clone())
                    } else {
                        None
                    },
                    prev_key.clone(),
                    key.clone(),
                    source_dir,
                    workload,
                )?;
                if let Some(p) = &prev_task {
                    task = task.dep(p.clone());
                }
                graph.add(task)?;
            }
            prev_task = Some(task_id);
            prev_key = key;
        }
        let chain_task = prev_task.expect("at least one level");
        let chain_key = prev_key;

        // --- final job image: payload + rootfs-size (step 5c) -------------
        let disk_path = image_dir.join("rootfs.img");
        let jobimg_id = format!("jobimg:{qualified}");
        {
            let job_image_path = store.path_for(&format!("job:{}", spec.name));
            let objects_dir = store.objects_dir().to_path_buf();
            let store = store.clone();
            let spec_for_task = spec.clone();
            let chain_key = chain_key.clone();
            let disk_out = disk_path.clone();
            let task = Task::new(jobimg_id.clone(), move || {
                let mut image = load_store_image(&store, &chain_key)?;
                init_system.remove_payload(&mut image);
                if let Some(payload) = boot_payload(&spec_for_task) {
                    init_system
                        .install_payload(&mut image, &payload)
                        .map_err(|e| e.to_string())?;
                }
                image.set_size_limit(spec_for_task.rootfs_size);
                image.check_size().map_err(|e| e.to_string())?;
                crate::integrity::write_artifact(&disk_out, &image.to_bytes())?;
                store_image(&store, &format!("job:{}", spec_for_task.name), image)
            })
            .dep(chain_task.clone())
            .input(format!("{:?}{:?}{:?}", spec.run, spec.command, spec.rootfs_size).as_bytes())
            .output(&disk_path)
            .claim(crate::integrity::sidecar_path(&disk_path))
            .claim(job_image_path)
            .claim_tree(objects_dir)
            .input(qualified.as_bytes());
            graph.add(task)?;
        }

        // --- boot binary (step 4) ------------------------------------------
        let boot_path = image_dir.join("boot.bin");
        let boot_id = format!("boot:{qualified}");
        {
            let board = self.board.clone();
            let spec_for_task = spec.clone();
            let fragments = self.resolve_fragments(spec, source_dir)?;
            let boot_out = boot_path.clone();
            let no_disk = options.no_disk;
            let objects_dir = store.objects_dir().to_path_buf();
            let store = store.clone();
            let spec_name = spec.name.clone();
            let mut task = Task::new(boot_id.clone(), move || {
                let boot = build_boot_binary(
                    &board,
                    &spec_for_task,
                    &fragments,
                    if no_disk {
                        Some(load_store_image(&store, &format!("job:{spec_name}"))?)
                    } else {
                        None
                    },
                )
                .map_err(|e| e.to_string())?;
                crate::integrity::write_artifact(&boot_out, &boot.to_bytes())
            })
            .input(format!("{:?}", spec.linux).as_bytes())
            .input(format!("{:?}", spec.firmware).as_bytes())
            .input(&[options.no_disk as u8])
            .output(&boot_path)
            .claim(crate::integrity::sidecar_path(&boot_path))
            // Diskless boots load the job image, and a load may quarantine
            // or heal pool blobs — writes under the shared pool tree.
            .claim_tree(objects_dir);
            for f in self.resolve_fragments(spec, source_dir)? {
                task = task.input(f.as_bytes());
            }
            // Diskless boots embed the job image, so depend on it.
            task = task.dep(jobimg_id.clone());
            graph.add(task)?;
        }

        Ok(JobPlan {
            name: qualified,
            spec: spec.clone(),
            kind: JobKind::Linux {
                boot_path,
                disk_path: if options.no_disk {
                    None
                } else {
                    Some(disk_path.clone())
                },
            },
            final_task: boot_id,
            level_keys,
            job_level: Some((format!("job:{}", spec.name), disk_path)),
        })
    }

    /// Builds the task for one inheritance level's image.
    #[allow(clippy::too_many_arguments)]
    fn level_task(
        &self,
        task_id: &str,
        store: &ImageStore,
        level: &WorkloadSpec,
        base: Option<FsImage>,
        parent_key: String,
        key: String,
        source_dir: Option<&Path>,
        workload: &str,
    ) -> Result<Task, MarshalError> {
        // Gather level inputs eagerly so the fingerprint covers them.
        let overlay_dir = match &level.overlay {
            Some(o) => {
                let dir = self
                    .locate_in_sources(o, source_dir)
                    .ok_or_else(|| MarshalError::Other(format!("overlay `{o}` not found")))?;
                Some(dir)
            }
            None => None,
        };
        let files: Vec<(PathBuf, String)> = level
            .files
            .iter()
            .map(|f| {
                self.locate_in_sources(&f.host, source_dir)
                    .map(|p| (p, f.guest.clone()))
                    .ok_or_else(|| MarshalError::Other(format!("file `{}` not found", f.host)))
            })
            .collect::<Result<_, _>>()?;
        let guest_init =
            match &level.guest_init {
                Some(gi) => {
                    let path = self.locate_in_sources(gi, source_dir).ok_or_else(|| {
                        MarshalError::Other(format!("guest-init `{gi}` not found"))
                    })?;
                    Some(std::fs::read_to_string(&path).map_err(|e| {
                        MarshalError::Io(format!("guest-init {}: {e}", path.display()))
                    })?)
                }
                None => None,
            };
        let hard_img = match &level.img {
            Some(img) => {
                let path = self
                    .locate_in_sources(img, source_dir)
                    .ok_or_else(|| MarshalError::Other(format!("img `{img}` not found")))?;
                let bytes = std::fs::read(&path)
                    .map_err(|e| MarshalError::Io(format!("img {}: {e}", path.display())))?;
                Some(
                    FsImage::from_bytes(&bytes)
                        .map_err(|e| MarshalError::Other(format!("img `{img}`: {e}")))?,
                )
            }
            None => None,
        };

        let mut input_hash = marshal_depgraph::Hasher128::new();
        input_hash.update_field(key.as_bytes());
        if let Some(dir) = &overlay_dir {
            hash_host_dir(&mut input_hash, dir)?;
        }
        for (p, guest) in &files {
            input_hash.update_field(guest.as_bytes());
            let data = std::fs::read(p)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", p.display())))?;
            input_hash.update_field(&data);
        }
        if let Some(gi) = &guest_init {
            input_hash.update_field(gi.as_bytes());
            // Guest-init boots on the level's own simulator backend, so a
            // backend change must dirty the image.
            input_hash.update_field(level.spike.as_deref().unwrap_or("").as_bytes());
            input_hash.update_field(level.qemu.as_deref().unwrap_or("").as_bytes());
        }
        if let Some(img) = &hard_img {
            // The memoized Merkle fingerprint replaces serialising the whole
            // image just to hash it.
            input_hash.update_field(img.fingerprint().to_string().as_bytes());
        }

        let board = self.board.clone();
        let store = store.clone();
        let out_path = store.path_for(&key);
        let objects_dir = store.objects_dir().to_path_buf();
        let input_fp = input_hash.finish();
        let by_input_path = store.by_input_path(input_fp);
        // The serialized description a remote runner ships to a `marshal
        // serve --exec` daemon. Deliberately NOT part of the fingerprint:
        // where a task runs must not dirty whether it is up to date.
        let remote_desc = crate::runners::level_spec(workload, &key, input_fp);
        let remote = self.remote_client.clone();
        // Just the backend-selection slice of the level spec: which
        // functional simulator boots the guest-init script.
        let sim_spec = WorkloadSpec {
            name: level.name.clone(),
            spike: level.spike.clone(),
            spike_args: level.spike_args.clone(),
            qemu: level.qemu.clone(),
            qemu_args: level.qemu_args.clone(),
            ..WorkloadSpec::default()
        };
        let task = Task::new(task_id, move || {
            // Fetch-before-build (§distribution): a remote that already has
            // this exact level — same input fingerprint — supplies the
            // manifest plus only the blobs missing locally. Every failure
            // path inside try_fetch_level degrades to the local build
            // below; the remote is an accelerator, never a dependency.
            if let Some(remote) = &remote {
                if let Some(manifest) = remote.try_fetch_level(store.blobs(), input_fp) {
                    return store.install_fetched_manifest(&key, input_fp, &manifest);
                }
                remote.note_local_build();
            }
            let mut image = match (&hard_img, &base) {
                (Some(img), _) => img.clone(),
                (None, Some(base)) => base.clone(),
                (None, None) => load_store_image(&store, &parent_key)?,
            };
            if let Some(dir) = &overlay_dir {
                image
                    .overlay_host_dir(dir, "/")
                    .map_err(|e| format!("overlay: {e}"))?;
            }
            for (p, guest) in &files {
                let data = std::fs::read(p).map_err(|e| format!("read {}: {e}", p.display()))?;
                image
                    .write_exec(guest, &data)
                    .map_err(|e| format!("file {guest}: {e}"))?;
            }
            if let Some(script) = &guest_init {
                run_guest_init(&board, &mut image, script, &sim_spec)?;
            }
            store.store_with_input(&key, Some(input_fp), image)
        })
        .input(input_fp.to_string().as_bytes())
        .remote_spec(remote_desc)
        .output(out_path)
        .claim(by_input_path)
        // Blob paths are content-derived, so the whole pool is claimed as a
        // shared tree; concurrent level tasks dedupe writes in the store.
        .claim_tree(objects_dir);
        Ok(task)
    }

    /// Finds a workload-relative path: the workload's own directory first,
    /// then every search directory.
    fn locate_in_sources(&self, rel: &str, source_dir: Option<&Path>) -> Option<PathBuf> {
        if let Some(dir) = source_dir {
            let p = dir.join(rel);
            if p.exists() {
                return Some(p);
            }
        }
        for dir in self.search.dirs() {
            let p = dir.join(rel);
            if p.exists() {
                return Some(p);
            }
        }
        None
    }

    /// Resolves `linux.config` fragment references to their contents.
    fn resolve_fragments(
        &self,
        spec: &WorkloadSpec,
        source_dir: Option<&Path>,
    ) -> Result<Vec<String>, MarshalError> {
        let Some(linux) = &spec.linux else {
            return Ok(Vec::new());
        };
        linux
            .config
            .iter()
            .map(|frag| {
                if frag.contains('\n') || frag.contains('=') {
                    // Inline fragment text.
                    return Ok(frag.clone());
                }
                let path = self.locate_in_sources(frag, source_dir).ok_or_else(|| {
                    MarshalError::Other(format!("kernel config fragment `{frag}` not found"))
                })?;
                std::fs::read_to_string(&path)
                    .map_err(|e| MarshalError::Io(format!("fragment {}: {e}", path.display())))
            })
            .collect()
    }
}

struct JobPlan {
    name: String,
    spec: WorkloadSpec,
    kind: JobKind,
    final_task: String,
    /// Level-store keys of the job's inheritance chain, root first.
    level_keys: Vec<String>,
    /// The job-image store key and its disk artifact (Linux jobs only);
    /// preflight removes the artifact too when the manifest is bad, since
    /// the artifact — not the manifest — is the owning task's output.
    job_level: Option<(String, PathBuf)>,
}

/// Scans every level manifest the planned jobs rely on, removing torn
/// manifests and manifests referencing blobs missing from the pool (each
/// with a warning) so the owning level rebuilds *this* run. Under
/// `--keep-going`, damage confined to one job's chain therefore costs only
/// that cone, exactly like any other task failure.
fn preflight_pool(store: &ImageStore, plans: &[JobPlan], warnings: &mut Vec<Warning>) {
    let mut seen = std::collections::BTreeSet::new();
    for plan in plans {
        for key in &plan.level_keys {
            if seen.insert(key.clone()) {
                preflight_level(store, key, None, warnings);
            }
        }
        if let Some((job_key, artifact)) = &plan.job_level {
            if seen.insert(job_key.clone()) {
                preflight_level(store, job_key, Some(artifact), warnings);
            }
        }
    }
}

fn preflight_level(
    store: &ImageStore,
    key: &str,
    artifact: Option<&PathBuf>,
    warnings: &mut Vec<Warning>,
) {
    let path = store.path_for(key);
    let Ok(bytes) = std::fs::read(&path) else {
        return;
    };
    if !marshal_image::sniff_manifest(&bytes) {
        // Legacy flat image file: self-contained, nothing to cross-check.
        return;
    }
    let problem = match marshal_image::manifest_refs(&bytes) {
        Err(e) => Some(format!("torn or malformed manifest ({e})")),
        Ok(refs) => refs
            .iter()
            .find(|fp| !store.blobs().has(**fp))
            .map(|fp| format!("manifest references blob {fp} missing from the pool")),
    };
    let Some(problem) = problem else {
        return;
    };
    let _ = std::fs::remove_file(&path);
    if let Some(artifact) = artifact {
        let _ = std::fs::remove_file(artifact);
        let _ = std::fs::remove_file(crate::integrity::sidecar_path(artifact));
    }
    warnings.push(Warning::with_code(
        format!("level {key}"),
        format!("{problem}; removed so the level rebuilds this run"),
        "pool-damage",
    ));
}

fn store_image(store: &ImageStore, key: &str, image: FsImage) -> Result<(), String> {
    store.store(key, image)
}

fn load_store_image(store: &ImageStore, key: &str) -> Result<FsImage, String> {
    store.load(key)
}

fn true_or_missing(p: &Path) -> bool {
    // Host-init may not have run yet at planning time, so accept the path
    // whether or not it exists; the task validates at execution.
    let _ = p;
    true
}

fn boot_payload(spec: &WorkloadSpec) -> Option<BootPayload> {
    if let Some(cmd) = &spec.command {
        return Some(BootPayload::Command(cmd.clone()));
    }
    spec.run.as_ref().map(|r| {
        BootPayload::Script(if r.starts_with('/') {
            r.clone()
        } else {
            format!("/{r}")
        })
    })
}

/// Hashes a bare-metal `bin` file's contents (post-host-init), so a
/// regenerated binary retriggers the copy task.
fn bin_input_hash(source_dir: Option<&Path>, bin_name: &str) -> Vec<u8> {
    let Some(dir) = source_dir else {
        return Vec::new();
    };
    std::fs::read(dir.join(bin_name)).unwrap_or_default()
}

fn split_command(line: &str) -> (String, Vec<String>) {
    let mut parts = line.split_whitespace();
    let script = parts.next().unwrap_or("").to_owned();
    (script, parts.map(str::to_owned).collect())
}

fn hash_host_dir(h: &mut marshal_depgraph::Hasher128, dir: &Path) -> Result<(), MarshalError> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| MarshalError::Io(format!("read {}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        h.update_field(path.file_name().unwrap_or_default().as_encoded_bytes());
        if path.is_dir() {
            hash_host_dir(h, &path)?;
        } else {
            let data = std::fs::read(&path)
                .map_err(|e| MarshalError::Io(format!("read {}: {e}", path.display())))?;
            h.update_field(&data);
        }
    }
    Ok(())
}

/// Runs a level's one-shot guest-init script by booting the image on the
/// level's functional simulator backend (step 5b: "boots it in QEMU. This
/// script is run exactly once" — or the workload's custom Spike, so a
/// guest-init that probes accelerator features sees the same machine the
/// workload will run on).
fn run_guest_init(
    board: &Board,
    image: &mut FsImage,
    script: &str,
    spec: &WorkloadSpec,
) -> Result<(), String> {
    initsys::install_guest_init(image, script).map_err(|e| e.to_string())?;
    let boot = default_boot_binary(board).map_err(|e| e.to_string())?;
    // default_backend only ever picks a functional backend (qemu/spike);
    // guest-init never needs cycle-exact timing.
    let backend = simulator_for(default_backend(spec), spec, &BackendOptions::default())
        .map_err(|e| e.to_string())?;
    let job = crate::launch::LoadedJob::Linux {
        boot,
        disk: Some(image.clone()),
    };
    let run = backend
        .run(&job, LaunchMode::GuestInit)
        .map_err(|e| format!("guest-init boot: {e}"))?;
    *image = run
        .result
        .image
        .ok_or_else(|| "guest-init boot returned no image".to_owned())?;
    Ok(())
}

/// Builds the board-default boot binary (used for guest-init boots).
fn default_boot_binary(board: &Board) -> Result<BootBinary, MarshalError> {
    let config = KernelConfig::riscv_defconfig();
    let mut initramfs = InitramfsSpec::new();
    for (name, src) in &board.drivers {
        initramfs = initramfs.module(name, src);
    }
    let initramfs = initramfs.build(&config, &board.default_kernel)?;
    let kernel = build_kernel(&board.default_kernel, &config, &initramfs)?;
    let fw = build_firmware(&board.default_firmware)?;
    Ok(link_boot_binary(&fw, &kernel)?)
}

/// Builds a job's boot binary per its spec (§III-B step 4).
pub fn build_boot_binary(
    board: &Board,
    spec: &WorkloadSpec,
    fragments: &[String],
    embedded_rootfs: Option<FsImage>,
) -> Result<BootBinary, MarshalError> {
    // 4a: final Linux configuration = defconfig + ordered fragments.
    let mut config = KernelConfig::riscv_defconfig();
    for frag in fragments {
        config.merge_fragment(frag)?;
    }
    // Kernel source selection.
    let source = match &spec.linux {
        Some(l) => board
            .kernel_source(l.source.as_deref())
            .cloned()
            .ok_or_else(|| {
                MarshalError::Other(format!(
                    "kernel source `{}` not provided by board `{}`",
                    l.source.as_deref().unwrap_or("?"),
                    board.name
                ))
            })?,
        None => board.default_kernel.clone(),
    };
    // 4b/4c: modules (board drivers + workload modules) and initramfs.
    let mut initramfs = InitramfsSpec::new();
    for (name, src) in &board.drivers {
        initramfs = initramfs.module(name, src);
    }
    if let Some(l) = &spec.linux {
        for (name, src) in &l.modules {
            initramfs = initramfs.module(name, src);
        }
    }
    if let Some(rootfs) = embedded_rootfs {
        initramfs = initramfs.embed_rootfs(rootfs);
    }
    let initramfs = initramfs.build(&config, &source)?;
    // 4d: kernel compilation.
    let kernel = build_kernel(&source, &config, &initramfs)?;
    // 4e: firmware link.
    let fw_build = match &spec.firmware {
        Some(f) => FirmwareBuild {
            kind: f.kind.unwrap_or_default(),
            source: f.source.clone().unwrap_or_else(|| "default".to_owned()),
            build_args: f.build_args.clone(),
        },
        None => board.default_firmware.clone(),
    };
    let fw = build_firmware(&fw_build)?;
    Ok(link_boot_binary(&fw, &kernel)?)
}
