//! The `clean` command: remove a workload's artifacts and build state.

use std::collections::BTreeSet;
use std::path::Path;

use marshal_config::{expand_jobs, resolve_workload};
use marshal_depgraph::Fingerprint;

use crate::build::Builder;
use crate::checkpoint::CheckpointStore;
use crate::error::MarshalError;
use crate::imagestore::ImageStore;

/// What `clean` removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanReport {
    /// Build-state entries forgotten.
    pub state_entries: usize,
    /// Level manifests removed from `workdir/levels/`.
    pub levels_removed: usize,
    /// Blobs pruned from `workdir/objects/` because no surviving level
    /// manifest references them.
    pub blobs_pruned: usize,
    /// Payload bytes reclaimed by pruning blobs.
    pub bytes_reclaimed: u64,
    /// When pruning was deferred because another process holds a live
    /// advisory pin on the pool, the human-readable reason.
    pub prune_skipped: Option<String>,
    /// Journal run directories removed by `--keep-runs` retention.
    pub runs_pruned: usize,
    /// Bytes reclaimed by pruning old run journals.
    pub run_bytes_reclaimed: u64,
    /// Boot checkpoints pruned from `workdir/checkpoints/` because their
    /// boot binary or disk image no longer exists as a built artifact.
    pub checkpoints_pruned: usize,
    /// Bytes reclaimed by pruning stale boot checkpoints.
    pub checkpoint_bytes_reclaimed: u64,
    /// When checkpoint pruning was deferred because a live launch holds an
    /// advisory pin on the checkpoint directory, the human-readable reason.
    pub checkpoint_prune_skipped: Option<String>,
}

/// How many journal runs `clean` keeps when `--keep-runs` is not given.
pub const DEFAULT_KEEP_RUNS: usize = 20;

/// Removes a workload's images, runs, installs, level manifests, and
/// state-database entries, forcing the next `build` to start fresh — then
/// prunes any `workdir/objects/` blob no surviving manifest references.
///
/// Only the workload's *own* level manifests (each job's full inheritance
/// chain plus its final job image) are removed; parent levels may be shared
/// with sibling workloads and stay until their owners are cleaned. The blob
/// prune then reclaims whatever payloads became unreferenced.
///
/// # Errors
///
/// Configuration errors resolving the workload; I/O errors are ignored
/// (missing artifacts are fine).
pub fn clean_workload(builder: &mut Builder, name: &str) -> Result<CleanReport, MarshalError> {
    clean_workload_with(builder, name, DEFAULT_KEEP_RUNS)
}

/// [`clean_workload`] with an explicit run-journal retention count
/// (`--keep-runs N`): after artifact removal, the oldest journal runs
/// beyond the newest `keep_runs` are pruned too.
///
/// # Errors
///
/// Same as [`clean_workload`].
pub fn clean_workload_with(
    builder: &mut Builder,
    name: &str,
    keep_runs: usize,
) -> Result<CleanReport, MarshalError> {
    let resolved = resolve_workload(builder.search(), name)?;
    let jobs = expand_jobs(builder.search(), &resolved)?;
    let mut report = CleanReport::default();
    let store = ImageStore::new(builder.workdir());
    for job in &jobs {
        let _ = std::fs::remove_dir_all(builder.image_dir(&job.qualified_name));
        // The full-chain level manifest ends at this workload's own level;
        // parent prefixes may be shared with siblings, so they stay.
        let chain_key = job
            .workload
            .levels
            .iter()
            .map(|l| l.name.as_str())
            .collect::<Vec<_>>()
            .join("/");
        for key in [chain_key, format!("job:{}", job.workload.spec.name)] {
            if key.is_empty() {
                continue;
            }
            if std::fs::remove_file(store.path_for(&key)).is_ok() {
                report.levels_removed += 1;
            }
        }
    }
    let _ = std::fs::remove_dir_all(builder.run_dir(&resolved.spec.name));
    let _ = std::fs::remove_dir_all(builder.install_dir(&resolved.spec.name));
    // Forget every task that references this workload or its jobs.
    let mut names: Vec<String> = jobs.iter().map(|j| j.qualified_name.clone()).collect();
    names.push(resolved.spec.name.clone());
    report.state_entries = builder.forget_matching(&names);
    let (pruned, bytes, skipped) = prune_objects(&store);
    report.blobs_pruned = pruned;
    report.bytes_reclaimed = bytes;
    report.prune_skipped = skipped;
    let (runs_pruned, run_bytes) = prune_runs(builder.workdir(), keep_runs);
    report.runs_pruned = runs_pruned;
    report.run_bytes_reclaimed = run_bytes;
    let (ckpts, ckpt_bytes, ckpt_skipped) = prune_checkpoints(builder.workdir());
    report.checkpoints_pruned = ckpts;
    report.checkpoint_bytes_reclaimed = ckpt_bytes;
    report.checkpoint_prune_skipped = ckpt_skipped;
    Ok(report)
}

/// Every boot-binary and disk-image fingerprint still reachable from a
/// built artifact under `workdir/images/` — the live set for checkpoint
/// pruning. Artifacts that no longer parse contribute nothing (their
/// checkpoints are stale by definition: a launch would fail before ever
/// looking one up).
fn live_artifact_fingerprints(workdir: &Path) -> (BTreeSet<Fingerprint>, BTreeSet<Fingerprint>) {
    let mut boots = BTreeSet::new();
    let mut disks = BTreeSet::new();
    collect_artifact_fingerprints(&workdir.join("images"), &mut boots, &mut disks);
    (boots, disks)
}

fn collect_artifact_fingerprints(
    dir: &Path,
    boots: &mut BTreeSet<Fingerprint>,
    disks: &mut BTreeSet<Fingerprint>,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            // Qualified job names nest (`workload/job`), so recurse.
            collect_artifact_fingerprints(&path, boots, disks);
            continue;
        }
        match path.file_name().and_then(|n| n.to_str()) {
            Some("boot.bin") => {
                if let Ok(bytes) = std::fs::read(&path) {
                    if let Ok(boot) = marshal_firmware::BootBinary::from_bytes(&bytes) {
                        boots.insert(boot.fingerprint());
                    }
                }
            }
            Some("rootfs.img") => {
                if let Ok(bytes) = std::fs::read(&path) {
                    if let Ok(img) = marshal_image::FsImage::from_bytes(&bytes) {
                        disks.insert(img.fingerprint());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Deletes every boot checkpoint in `workdir/checkpoints/` whose boot
/// binary (or disk image) is no longer a built artifact of any workload;
/// returns (checkpoints removed, bytes reclaimed, deferred-reason).
///
/// Mirrors the blob-pool prune's pin semantics: while a live launch holds
/// an advisory pin on the checkpoint directory, pruning is deferred
/// entirely — a launch that just decided to restore a checkpoint must
/// never have it deleted out from under it.
fn prune_checkpoints(workdir: &Path) -> (usize, u64, Option<String>) {
    let store = CheckpointStore::new(workdir);
    let entries = store.list();
    if entries.is_empty() {
        return (0, 0, None);
    }
    let pins = crate::imagestore::scan_pool_pins(store.dir());
    if !pins.live.is_empty() {
        return (
            0,
            0,
            Some(format!(
                "{} live launch pin(s) on the checkpoint store ({}); rerun clean once \
                 those launches finish",
                pins.live.len(),
                pins.live.join(", ")
            )),
        );
    }
    let (boots, disks) = live_artifact_fingerprints(workdir);
    let mut pruned = 0usize;
    let mut bytes = 0u64;
    for entry in entries {
        let live =
            boots.contains(&entry.boot_fp) && entry.disk_fp.is_none_or(|fp| disks.contains(&fp));
        if live {
            continue;
        }
        let reclaimed = store.remove(entry.key);
        if reclaimed > 0 {
            pruned += 1;
            bytes += reclaimed;
        }
    }
    let _ = std::fs::remove_dir(store.dir());
    (pruned, bytes, None)
}

/// Removes the oldest journal run directories under `workdir/runs/` until
/// at most `keep` remain, returning (runs removed, bytes reclaimed).
///
/// A run whose recorder is still alive holds a pin in `runs/.pins/` (the
/// same advisory-pin protocol as the blob pool, swept by
/// [`crate::imagestore::scan_pool_pins`]); live runs are never pruned, no
/// matter how old. Per-workload launch-output directories share `runs/`
/// but carry no `journal.jsonl`, so retention never touches them.
pub fn prune_runs(workdir: &std::path::Path, keep: usize) -> (usize, u64) {
    let runs_dir = workdir.join("runs");
    // Run ids end in `-<pid>-<seq>`, matching the pin name `<pid>-<seq>.pin`.
    let live_suffixes: Vec<String> = crate::imagestore::scan_pool_pins(&runs_dir)
        .live
        .iter()
        .filter_map(|pin| pin.strip_suffix(".pin").map(|stem| format!("-{stem}")))
        .collect();
    let runs = marshal_trace::list_runs(workdir); // oldest first
    if runs.len() <= keep {
        return (0, 0);
    }
    let mut excess = runs.len() - keep;
    let mut pruned = 0usize;
    let mut bytes = 0u64;
    for info in runs {
        if excess == 0 {
            break;
        }
        if live_suffixes
            .iter()
            .any(|s| info.run_id.ends_with(s.as_str()))
        {
            continue;
        }
        let dir = runs_dir.join(&info.run_id);
        let size = dir_size(&dir);
        if std::fs::remove_dir_all(&dir).is_ok() {
            pruned += 1;
            bytes += size;
            excess -= 1;
        }
    }
    (pruned, bytes)
}

/// Total payload bytes under a directory (best effort, one level of
/// recursion per subdirectory).
fn dir_size(dir: &std::path::Path) -> u64 {
    let mut total = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                total += dir_size(&path);
            } else {
                total += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            }
        }
    }
    total
}

/// Every blob fingerprint referenced by a surviving manifest in
/// `workdir/levels/` — the live set for pruning and scrubbing. Unreadable
/// or torn manifests contribute no references — their levels are already
/// due a rebuild, which re-writes any blob it needs.
pub(crate) fn live_refs(store: &ImageStore) -> BTreeSet<Fingerprint> {
    let mut live: BTreeSet<Fingerprint> = BTreeSet::new();
    if let Ok(entries) = std::fs::read_dir(store.levels_dir()) {
        for entry in entries.filter_map(Result::ok) {
            let Ok(bytes) = std::fs::read(entry.path()) else {
                continue;
            };
            if let Ok(refs) = marshal_image::manifest_refs(&bytes) {
                live.extend(refs);
            }
        }
    }
    live
}

/// Every blob file in the pool, as `(path, fingerprint)` pairs, skipping
/// the pool's dot-directory bookkeeping (`.pins`, `.quarantine`) and any
/// file whose name is not a fingerprint.
pub(crate) fn pool_blobs(store: &ImageStore) -> Vec<(std::path::PathBuf, Fingerprint)> {
    let mut out = Vec::new();
    let Ok(shards) = std::fs::read_dir(store.objects_dir()) else {
        return out;
    };
    for shard in shards.filter_map(Result::ok) {
        if shard.file_name().to_string_lossy().starts_with('.') {
            continue;
        }
        let Ok(blobs) = std::fs::read_dir(shard.path()) else {
            continue;
        };
        for blob in blobs.filter_map(Result::ok) {
            let path = blob.path();
            let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<Fingerprint>().ok())
            else {
                continue;
            };
            out.push((path, fp));
        }
    }
    out
}

/// Removes by-input index entries whose manifests are torn or reference a
/// blob no longer in the pool, so `marshal serve` never advertises a level
/// it cannot actually supply. Returns how many entries were removed.
pub(crate) fn sweep_by_input(store: &ImageStore) -> usize {
    let dir = store.by_input_dir();
    let mut removed = 0;
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let stale = match marshal_image::manifest_refs(&bytes) {
                Err(_) => true,
                Ok(refs) => refs.iter().any(|fp| !store.blobs().has(*fp)),
            };
            if stale && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        let _ = std::fs::remove_dir(&dir);
    }
    removed
}

/// Deletes every blob in `workdir/objects/` that no surviving manifest in
/// `workdir/levels/` references; returns (blobs removed, bytes reclaimed,
/// deferred-reason). Pruning is deferred entirely while another process
/// holds a live advisory pin on the pool (a running `-j N` build), closing
/// the race where a prune deletes a blob a concurrent build just decided
/// not to rewrite.
fn prune_objects(store: &ImageStore) -> (usize, u64, Option<String>) {
    let pins = crate::imagestore::scan_pool_pins(store.objects_dir());
    if !pins.live.is_empty() {
        return (
            0,
            0,
            Some(format!(
                "{} live build pin(s) on the pool ({}); rerun clean once those builds finish",
                pins.live.len(),
                pins.live.join(", ")
            )),
        );
    }
    let live = live_refs(store);
    let mut pruned = 0usize;
    let mut bytes_reclaimed = 0u64;
    for (path, fp) in pool_blobs(store) {
        if live.contains(&fp) {
            continue;
        }
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(&path).is_ok() {
            pruned += 1;
            bytes_reclaimed += size;
        }
    }
    // Drop shard directories emptied by the prune, plus empty bookkeeping
    // dirs, so a fully pruned pool is genuinely empty.
    if let Ok(shards) = std::fs::read_dir(store.objects_dir()) {
        for shard in shards.filter_map(Result::ok) {
            let _ = std::fs::remove_dir(shard.path());
        }
    }
    // The by-input distribution index must never outlive the blobs it
    // references: drop entries the prune just invalidated.
    sweep_by_input(store);
    (pruned, bytes_reclaimed, None)
}

impl Builder {
    /// Forgets state entries whose task id mentions any of `names`.
    pub(crate) fn forget_matching(&mut self, names: &[String]) -> usize {
        // Task ids embed qualified names after a colon.
        let candidates: Vec<String> = self.state_task_ids();
        let mut count = 0;
        for id in candidates {
            let hit = names.iter().any(|n| {
                id.ends_with(&format!(":{n}"))
                    || id.contains(&format!(":{n}/"))
                    || id.contains(&format!("/{n}"))
            });
            if hit && self.forget_state(&id) {
                count += 1;
            }
        }
        let _ = self.flush_state();
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::build::BuildOptions;
    use marshal_config::SearchPath;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-clean-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_removes_artifacts_and_state() {
        let dir = tmpdir("basic");
        let mut search = SearchPath::new();
        search.add_builtin(
            "w.json",
            r#"{"name":"w","distro":"buildroot","command":"echo"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        // The command points at a nonexistent program, but build does not
        // launch it — build must succeed.
        let products = builder.build("w.json", &BuildOptions::default()).unwrap();
        assert!(!products.report.executed.is_empty());
        assert!(builder.image_dir("w").join("boot.bin").exists());

        let report = clean_workload(&mut builder, "w.json").unwrap();
        assert!(
            report.state_entries > 0,
            "state entries should be forgotten"
        );
        assert!(report.levels_removed > 0, "level manifests should go");
        assert!(!builder.image_dir("w").exists());

        // Next build re-runs everything.
        let products = builder.build("w.json", &BuildOptions::default()).unwrap();
        assert!(!products.report.executed.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn clean_prunes_unreferenced_blobs_but_keeps_shared_ones() {
        let dir = tmpdir("prune");
        let mut search = SearchPath::new();
        // Two workloads inheriting one base: the base level's blobs must
        // survive cleaning one child.
        search.add_builtin(
            "base.json",
            r#"{"name":"base","distro":"buildroot","files":[]}"#,
        );
        search.add_builtin(
            "childa.json",
            r#"{"name":"childa","base":"base.json","command":"echo a"}"#,
        );
        search.add_builtin(
            "childb.json",
            r#"{"name":"childb","base":"base.json","command":"echo b"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        builder
            .build("childa.json", &BuildOptions::default())
            .unwrap();
        builder
            .build("childb.json", &BuildOptions::default())
            .unwrap();
        let objects = dir.join("work").join("objects");
        assert!(objects.exists(), "blob pool should exist after builds");

        let report = clean_workload(&mut builder, "childa.json").unwrap();
        assert!(report.levels_removed > 0);
        // childb still builds incrementally from its surviving manifests.
        let products = builder
            .build("childb.json", &BuildOptions::default())
            .unwrap();
        assert!(products.report.failed.is_empty());

        // Cleaning both children and the base empties the pool entirely.
        clean_workload(&mut builder, "childb.json").unwrap();
        let report = clean_workload(&mut builder, "base.json").unwrap();
        let remaining: Vec<_> = std::fs::read_dir(&objects)
            .map(|it| it.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(
            remaining.is_empty(),
            "pool should be empty, found {remaining:?}"
        );
        assert!(report.bytes_reclaimed > 0 || report.blobs_pruned == 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn prune_deferred_while_pool_pinned() {
        let dir = tmpdir("pin");
        let mut search = SearchPath::new();
        search.add_builtin(
            "w.json",
            r#"{"name":"w","distro":"buildroot","command":"echo"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        builder.build("w.json", &BuildOptions::default()).unwrap();
        let objects = dir.join("work").join("objects");

        // Another "build" holds a pin: clean must defer the prune.
        let pin = crate::imagestore::PoolPin::acquire(&objects).unwrap();
        let report = clean_workload(&mut builder, "w.json").unwrap();
        assert!(report.prune_skipped.is_some(), "prune should defer");
        assert_eq!(report.blobs_pruned, 0);

        // Pin released: the next clean prunes normally.
        drop(pin);
        let report = clean_workload(&mut builder, "w.json").unwrap();
        assert!(report.prune_skipped.is_none());
        assert!(report.blobs_pruned > 0, "now unreferenced blobs go");
        std::fs::remove_dir_all(dir).unwrap();
    }

    fn snapshot() -> marshal_sim_functional::BootSnapshot {
        marshal_sim_functional::BootSnapshot {
            serial: "[boot]\n".to_owned(),
            image: marshal_image::FsImage::new(),
            cycles: 1,
            instructions: 0,
            last_exit: 0,
            switch_root_target: None,
            systemd: false,
        }
    }

    fn boot_fp_of(builder: &Builder, qualified: &str) -> Fingerprint {
        let bytes = std::fs::read(builder.image_dir(qualified).join("boot.bin")).unwrap();
        marshal_firmware::BootBinary::from_bytes(&bytes)
            .unwrap()
            .fingerprint()
    }

    #[test]
    fn clean_prunes_stale_checkpoints_but_keeps_reachable_ones() {
        let dir = tmpdir("ckpt");
        let mut search = SearchPath::new();
        search.add_builtin(
            "a.json",
            r#"{"name":"a","distro":"buildroot","command":"echo a"}"#,
        );
        search.add_builtin(
            "b.json",
            r#"{"name":"b","distro":"buildroot","command":"echo b"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        builder.build("a.json", &BuildOptions::default()).unwrap();
        builder.build("b.json", &BuildOptions::default()).unwrap();

        let store = CheckpointStore::new(builder.workdir());
        let live_fp = boot_fp_of(&builder, "a");
        let live_key = crate::checkpoint::checkpoint_key(Fingerprint::of(b"cfg"), live_fp, None);
        store.save(live_key, live_fp, None, &snapshot()).unwrap();
        let stale_fp = Fingerprint::of(b"no such artifact");
        let stale_key = crate::checkpoint::checkpoint_key(Fingerprint::of(b"cfg"), stale_fp, None);
        store.save(stale_key, stale_fp, None, &snapshot()).unwrap();

        // Cleaning `b` leaves `a`'s artifacts — and so its checkpoint.
        let report = clean_workload(&mut builder, "b.json").unwrap();
        assert_eq!(report.checkpoints_pruned, 1, "only the orphan goes");
        assert!(report.checkpoint_bytes_reclaimed > 0);
        assert!(store.path_for(live_key).exists());
        assert!(!store.path_for(stale_key).exists());

        // Cleaning `a` removes its artifacts, orphaning its checkpoint.
        let report = clean_workload(&mut builder, "a.json").unwrap();
        assert_eq!(report.checkpoints_pruned, 1);
        assert!(!store.path_for(live_key).exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_prune_deferred_while_launch_pinned() {
        let dir = tmpdir("ckptpin");
        let mut search = SearchPath::new();
        search.add_builtin(
            "w.json",
            r#"{"name":"w","distro":"buildroot","command":"echo"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        builder.build("w.json", &BuildOptions::default()).unwrap();
        let store = CheckpointStore::new(builder.workdir());
        let stale_fp = Fingerprint::of(b"orphan");
        let key = crate::checkpoint::checkpoint_key(Fingerprint::of(b"cfg"), stale_fp, None);
        store.save(key, stale_fp, None, &snapshot()).unwrap();

        // A live launch pins the checkpoint store: pruning defers.
        let pin = crate::imagestore::PoolPin::acquire(store.dir()).unwrap();
        let report = clean_workload(&mut builder, "w.json").unwrap();
        assert!(report.checkpoint_prune_skipped.is_some());
        assert_eq!(report.checkpoints_pruned, 0);
        assert!(store.path_for(key).exists());

        // Pin released: the orphan goes.
        drop(pin);
        let report = clean_workload(&mut builder, "w.json").unwrap();
        assert!(report.checkpoint_prune_skipped.is_none());
        assert_eq!(report.checkpoints_pruned, 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn keep_runs_prunes_oldest_journals_but_protects_live_runs() {
        let dir = tmpdir("runs");
        let work = dir.join("work");
        std::fs::create_dir_all(&work).unwrap();
        for _ in 0..5 {
            let rec =
                marshal_trace::Recorder::create(&work, "build", &[("workload", "w")]).unwrap();
            rec.finish().unwrap();
        }
        // A launch-output directory shares runs/ but has no journal: it is
        // neither counted nor pruned.
        std::fs::create_dir_all(work.join("runs").join("w").join("job0")).unwrap();
        let (pruned, bytes) = prune_runs(&work, 2);
        assert_eq!(pruned, 3);
        assert!(bytes > 0, "journal bytes should be reclaimed");
        assert_eq!(marshal_trace::list_runs(&work).len(), 2);
        assert!(work.join("runs").join("w").join("job0").exists());

        // An unfinished recorder still holds its live pin: that run
        // survives even a keep-nothing prune.
        let rec = marshal_trace::Recorder::create(&work, "build", &[]).unwrap();
        let live_id = rec.run_id().unwrap().to_owned();
        let (pruned, _) = prune_runs(&work, 0);
        assert_eq!(pruned, 2);
        let remaining = marshal_trace::list_runs(&work);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].run_id, live_id);
        rec.finish().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }
}
