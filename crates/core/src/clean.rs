//! The `clean` command: remove a workload's artifacts and build state.

use marshal_config::{expand_jobs, resolve_workload};

use crate::build::Builder;
use crate::error::MarshalError;

/// Removes a workload's images, runs, installs, and state-database entries,
/// forcing the next `build` to start fresh.
///
/// Returns the number of state entries forgotten.
///
/// # Errors
///
/// Configuration errors resolving the workload; I/O errors are ignored
/// (missing artifacts are fine).
pub fn clean_workload(builder: &mut Builder, name: &str) -> Result<usize, MarshalError> {
    let resolved = resolve_workload(builder.search(), name)?;
    let jobs = expand_jobs(builder.search(), &resolved)?;
    for job in &jobs {
        let _ = std::fs::remove_dir_all(builder.image_dir(&job.qualified_name));
    }
    let _ = std::fs::remove_dir_all(builder.run_dir(&resolved.spec.name));
    let _ = std::fs::remove_dir_all(builder.install_dir(&resolved.spec.name));
    // Forget every task that references this workload or its jobs.
    let mut forgotten = 0;
    let mut names: Vec<String> = jobs.iter().map(|j| j.qualified_name.clone()).collect();
    names.push(resolved.spec.name.clone());
    forgotten += builder.forget_matching(&names);
    Ok(forgotten)
}

impl Builder {
    /// Forgets state entries whose task id mentions any of `names`.
    pub(crate) fn forget_matching(&mut self, names: &[String]) -> usize {
        // Task ids embed qualified names after a colon.
        let candidates: Vec<String> = self.state_task_ids();
        let mut count = 0;
        for id in candidates {
            let hit = names.iter().any(|n| {
                id.ends_with(&format!(":{n}"))
                    || id.contains(&format!(":{n}/"))
                    || id.contains(&format!("/{n}"))
            });
            if hit && self.forget_state(&id) {
                count += 1;
            }
        }
        let _ = self.flush_state();
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::board::Board;
    use crate::build::BuildOptions;
    use marshal_config::SearchPath;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-clean-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn clean_removes_artifacts_and_state() {
        let dir = tmpdir("basic");
        let mut search = SearchPath::new();
        search.add_builtin(
            "w.json",
            r#"{"name":"w","distro":"buildroot","command":"echo"}"#,
        );
        let mut builder = Builder::new(Board::minimal("t"), search, dir.join("work")).unwrap();
        // The command points at a nonexistent program, but build does not
        // launch it — build must succeed.
        let products = builder.build("w.json", &BuildOptions::default()).unwrap();
        assert!(!products.report.executed.is_empty());
        assert!(builder.image_dir("w").join("boot.bin").exists());

        let forgotten = clean_workload(&mut builder, "w.json").unwrap();
        assert!(forgotten > 0, "state entries should be forgotten");
        assert!(!builder.image_dir("w").exists());

        // Next build re-runs everything.
        let products = builder.build("w.json", &BuildOptions::default()).unwrap();
        assert!(!products.report.executed.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
