//! Runner selection and the remote-execution glue between the depgraph
//! scheduler and `marshal serve --exec` daemons.
//!
//! Three pieces live here:
//!
//! - [`RunnerSpec`] / [`parse_runner_specs`]: the `--runners
//!   local[:N],remote:HOST:PORT` syntax shared by `build`, `test`, and
//!   `install`.
//! - [`level_spec`] / [`parse_level_spec`]: the opaque task description a
//!   remote runner ships over the wire. It names the workload, the level's
//!   store key, and the level's *input fingerprint* — the daemon rebuilds
//!   the workload from its own sources and the client only accepts the
//!   result if the daemon ends up holding a level with that exact
//!   fingerprint, so a source-skewed daemon degrades to a local build
//!   instead of poisoning the workdir.
//! - [`make_runners`] / [`serve_exec_handler`]: the client- and
//!   daemon-side constructors wiring those specs into
//!   [`marshal_netstore::RemoteRunner`] and the serve loop.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use marshal_config::SearchPath;
use marshal_depgraph::{Fingerprint, LocalRunner, Task, TaskRunner};
use marshal_netstore::server::ExecHandler;
use marshal_netstore::{FetchHook, RemoteRunner, RemoteStore, RetryPolicy};
use marshal_trace::Recorder;

use crate::board::Board;
use crate::build::{BuildOptions, Builder};
use crate::imagestore::ImageStore;

/// Version tag leading every serialized level spec; a daemon refuses specs
/// it does not understand.
const LEVEL_SPEC_V1: &str = "marshal-level-v1";

/// One entry of a `--runners` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunnerSpec {
    /// In-process thread pool. `threads: None` means "use the build's
    /// `-j` / host-parallelism default".
    Local {
        /// Worker threads, when pinned by `local:N`.
        threads: Option<usize>,
    },
    /// A `marshal serve --exec` daemon at `HOST:PORT`.
    Remote {
        /// The daemon address.
        addr: String,
    },
}

/// Parses a comma-separated `--runners` list: `local`, `local:N`, or
/// `remote:HOST:PORT`, in any order. Order matters downstream: the
/// scheduler offers ready tasks to runners in declaration order.
///
/// # Errors
///
/// A human-readable message naming the malformed entry.
pub fn parse_runner_specs(list: &str) -> Result<Vec<RunnerSpec>, String> {
    let mut specs = Vec::new();
    for entry in list.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err("empty entry in --runners list".to_owned());
        }
        if entry == "local" {
            specs.push(RunnerSpec::Local { threads: None });
        } else if let Some(n) = entry.strip_prefix("local:") {
            let threads: usize = n
                .parse()
                .map_err(|_| format!("bad thread count in `--runners {entry}`"))?;
            if threads == 0 {
                return Err(format!("`--runners {entry}`: thread count must be >= 1"));
            }
            specs.push(RunnerSpec::Local {
                threads: Some(threads),
            });
        } else if let Some(addr) = entry.strip_prefix("remote:") {
            // The remainder must look like HOST:PORT.
            let Some((host, port)) = addr.rsplit_once(':') else {
                return Err(format!("`--runners {entry}`: expected remote:HOST:PORT"));
            };
            if host.is_empty() || port.parse::<u16>().is_err() {
                return Err(format!("`--runners {entry}`: expected remote:HOST:PORT"));
            }
            specs.push(RunnerSpec::Remote {
                addr: addr.to_owned(),
            });
        } else {
            return Err(format!(
                "unknown runner `{entry}` (expected local, local:N, or remote:HOST:PORT)"
            ));
        }
    }
    Ok(specs)
}

/// Serializes a level-build task for the wire: workload to build, level
/// store key, and the level's input fingerprint.
pub fn level_spec(workload: &str, key: &str, input: Fingerprint) -> Vec<u8> {
    format!("{LEVEL_SPEC_V1}\n{workload}\n{key}\n{input}").into_bytes()
}

/// Parses a [`level_spec`] payload back into `(workload, key, input)`.
///
/// # Errors
///
/// A human-readable message for unknown versions or malformed payloads.
pub fn parse_level_spec(spec: &[u8]) -> Result<(String, String, Fingerprint), String> {
    let text = std::str::from_utf8(spec).map_err(|_| "level spec is not UTF-8".to_owned())?;
    let mut lines = text.lines();
    match lines.next() {
        Some(LEVEL_SPEC_V1) => {}
        Some(other) => return Err(format!("unknown level spec version `{other}`")),
        None => return Err("empty level spec".to_owned()),
    }
    let workload = lines.next().ok_or("level spec missing workload")?;
    let key = lines.next().ok_or("level spec missing level key")?;
    let fp = lines.next().ok_or("level spec missing input fingerprint")?;
    let input: Fingerprint = fp
        .parse()
        .map_err(|_| format!("bad input fingerprint `{fp}` in level spec"))?;
    if lines.next().is_some() {
        return Err("trailing data in level spec".to_owned());
    }
    Ok((workload.to_owned(), key.to_owned(), input))
}

/// The retry policy for exec requests: a remote *build* legitimately takes
/// far longer than a blob fetch, so the per-request deadline is generous
/// and only one retry is spent before falling back to local execution.
fn exec_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 2,
        request_timeout: std::time::Duration::from_secs(30),
        ..RetryPolicy::default()
    }
}

/// Builds the runner pool for a `--runners` spec list.
///
/// Remote entries become [`RemoteRunner`]s whose fetch hook localizes a
/// finished level through the ordinary manifest/blob fetch path into
/// `store` — a remote hit lands bit-identical to a local build. When the
/// list names no local runner, one is appended with `default_threads`
/// workers, so a build can always make progress even if every remote
/// dies. Returns the pool plus the exec clients, which the caller drains
/// for degradation notes after the build.
pub fn make_runners(
    specs: &[RunnerSpec],
    store: &ImageStore,
    default_threads: usize,
    recorder: &Recorder,
) -> (Vec<Box<dyn TaskRunner>>, Vec<Arc<RemoteStore>>) {
    let mut runners: Vec<Box<dyn TaskRunner>> = Vec::new();
    let mut clients = Vec::new();
    let mut has_local = false;
    for spec in specs {
        match spec {
            RunnerSpec::Local { threads } => {
                has_local = true;
                runners.push(Box::new(LocalRunner::new(
                    threads.unwrap_or(default_threads),
                )));
            }
            RunnerSpec::Remote { addr } => {
                let client = Arc::new(RemoteStore::tcp(addr, exec_policy()));
                client.set_recorder(recorder.clone());
                let fetch_store = store.clone();
                let fetch_client = Arc::clone(&client);
                let hook: FetchHook = Arc::new(move |task: &Task| {
                    let spec = task.remote_payload().ok_or("task has no remote spec")?;
                    let (_workload, key, input) = parse_level_spec(spec)?;
                    let manifest = fetch_client
                        .try_fetch_level(fetch_store.blobs(), input)
                        .ok_or_else(|| {
                            format!("remote built level `{key}` but does not serve it")
                        })?;
                    fetch_store.install_fetched_manifest(&key, input, &manifest)
                });
                runners.push(Box::new(RemoteRunner::new(Arc::clone(&client), hook)));
                clients.push(client);
            }
        }
    }
    if !has_local {
        runners.push(Box::new(LocalRunner::new(default_threads)));
    }
    (runners, clients)
}

/// Builds the daemon-side exec handler for `marshal serve --exec`: parses
/// each [`level_spec`], and satisfies it by building the named workload
/// from the daemon's own sources (serialized — one build at a time). The
/// request only succeeds if the daemon afterwards holds a level manifest
/// under the requested input fingerprint; a daemon whose sources have
/// drifted reports failure and the client builds locally.
///
/// # Errors
///
/// [`crate::MarshalError`] when the daemon's state database is unreadable.
pub fn serve_exec_handler(
    board: Board,
    search: SearchPath,
    workdir: impl Into<PathBuf>,
) -> Result<ExecHandler, crate::MarshalError> {
    let workdir = workdir.into();
    let store = ImageStore::new(&workdir);
    let builder = Mutex::new(Builder::new(board, search, &workdir)?);
    Ok(Arc::new(move |task: &str, spec: &[u8]| {
        let (workload, key, input) = parse_level_spec(spec)?;
        // Fast path: an earlier exec (or this daemon's own builds) already
        // produced this exact level.
        if store.by_input_path(input).exists() {
            return Ok(());
        }
        let mut builder = builder.lock().map_err(|_| "exec builder poisoned")?;
        builder
            .build(&workload, &BuildOptions::default())
            .map_err(|e| format!("building `{workload}` for task `{task}`: {e}"))?;
        if store.by_input_path(input).exists() {
            Ok(())
        } else {
            Err(format!(
                "built `{workload}` but produced no level `{key}` with input {input} \
                 (daemon sources differ from the client's)"
            ))
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_runner_lists() {
        assert_eq!(
            parse_runner_specs("local").unwrap(),
            vec![RunnerSpec::Local { threads: None }]
        );
        assert_eq!(
            parse_runner_specs("local:4").unwrap(),
            vec![RunnerSpec::Local { threads: Some(4) }]
        );
        assert_eq!(
            parse_runner_specs("remote:127.0.0.1:9021,local:2").unwrap(),
            vec![
                RunnerSpec::Remote {
                    addr: "127.0.0.1:9021".to_owned()
                },
                RunnerSpec::Local { threads: Some(2) },
            ]
        );
    }

    #[test]
    fn rejects_malformed_runner_lists() {
        for bad in [
            "",
            "local,",
            "local:0",
            "local:many",
            "remote:nohost",
            "remote::9021",
            "remote:host:notaport",
            "ssh:somewhere",
        ] {
            assert!(parse_runner_specs(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn level_spec_round_trips() {
        let input = Fingerprint::of(b"level-inputs");
        let spec = level_spec("br-base", "br-base/tools", input);
        let (w, k, i) = parse_level_spec(&spec).unwrap();
        assert_eq!(w, "br-base");
        assert_eq!(k, "br-base/tools");
        assert_eq!(i, input);
    }

    #[test]
    fn level_spec_rejects_garbage() {
        assert!(parse_level_spec(b"").is_err());
        assert!(parse_level_spec(b"marshal-level-v2\nw\nk\nf").is_err());
        assert!(parse_level_spec(b"marshal-level-v1\nw\nk\nnot-a-fp").is_err());
        assert!(parse_level_spec(b"marshal-level-v1\nw\nk").is_err());
        let input = Fingerprint::of(b"x");
        let mut spec = level_spec("w", "k", input);
        spec.extend_from_slice(b"\nextra");
        assert!(parse_level_spec(&spec).is_err());
        assert!(parse_level_spec(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn make_runners_always_includes_a_local_fallback() {
        let dir = std::env::temp_dir().join(format!("marshal-runners-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let store = ImageStore::new(&dir);
        let specs = parse_runner_specs("remote:127.0.0.1:1").unwrap();
        let (runners, clients) = make_runners(&specs, &store, 3, &Recorder::disabled());
        assert_eq!(runners.len(), 2, "remote plus appended local fallback");
        assert_eq!(clients.len(), 1);
        assert_eq!(runners[0].label(), "remote:127.0.0.1:1");
        assert_eq!(runners[1].label(), "local:3");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
