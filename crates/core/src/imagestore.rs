//! The level-image store: `MMAN` manifests in `workdir/levels/`, payloads
//! in the content-addressed blob pool at `workdir/objects/`.
//!
//! Each level of a workload's inheritance chain persists as a small
//! manifest; the actual file bytes live once in the blob pool, shared
//! across levels, jobs, and sibling workloads. Legacy flat `MIMG` level
//! files (pre-existing workdirs) are still readable — the loader sniffs
//! the magic. Tasks that persist images through the store must declare a
//! [`marshal_depgraph::Task::claim_tree`] over [`ImageStore::objects_dir`],
//! since blob paths are content-derived and unknown at planning time.
//!
//! Level manifests are additionally indexed by their task's *input
//! fingerprint* under `levels/by-input/` — the distribution key `marshal
//! serve` exports and the fetch-before-build client looks levels up by, so
//! a remote hit is exactly a build-cache hit.
//!
//! Loads self-defend: a corrupt blob is quarantined (and re-fetched from a
//! configured remote when possible), and an unhealable or torn manifest is
//! removed so the owning level rebuilds instead of wedging every consumer.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use marshal_depgraph::Fingerprint;
use marshal_image::{BlobStore, FsImage, StoreError, StoreStats};
use marshal_netstore::RemoteStore;
use marshal_trace::Recorder;

/// Level images are persisted to disk (so incremental rebuilds can load a
/// skipped parent's image) and cached in memory within one build. Cloning
/// shares the cache and the blob pool.
#[derive(Debug, Clone)]
pub struct ImageStore {
    cache: Arc<Mutex<BTreeMap<String, FsImage>>>,
    stats: Arc<Mutex<StoreStats>>,
    dir: PathBuf,
    blobs: BlobStore,
    /// When configured, load failures try to self-heal by re-fetching the
    /// offending blob before giving up.
    remote: Option<Arc<RemoteStore>>,
    /// Run-journal recorder for cache hit/miss and blob byte accounting;
    /// disabled by default.
    recorder: Recorder,
}

impl ImageStore {
    /// A store for the given marshal workdir (`levels/` + `objects/`).
    pub fn new(workdir: &Path) -> ImageStore {
        ImageStore {
            cache: Arc::new(Mutex::new(BTreeMap::new())),
            stats: Arc::new(Mutex::new(StoreStats::default())),
            dir: workdir.join("levels"),
            blobs: BlobStore::new(workdir.join("objects")),
            remote: None,
            recorder: Recorder::disabled(),
        }
    }

    /// Configures a remote to self-heal corrupt or missing blobs from
    /// during loads. Set before cloning the store into build tasks.
    pub fn set_remote(&mut self, remote: Arc<RemoteStore>) {
        self.remote = Some(remote);
    }

    /// Installs a run-journal recorder; loads and stores through this store
    /// (and every clone made afterwards) emit cache and blob events.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The manifest directory (`workdir/levels`).
    pub fn levels_dir(&self) -> &Path {
        &self.dir
    }

    /// The blob pool root (`workdir/objects`) — the tree tasks must claim.
    pub fn objects_dir(&self) -> &Path {
        self.blobs.root()
    }

    /// The underlying content-addressed blob pool.
    pub fn blobs(&self) -> &BlobStore {
        &self.blobs
    }

    /// The by-input-fingerprint manifest index directory
    /// (`workdir/levels/by-input`), the tree `marshal serve` exports.
    pub fn by_input_dir(&self) -> PathBuf {
        self.dir.join("by-input")
    }

    /// Where the by-input manifest copy for a level-input fingerprint
    /// lives.
    pub fn by_input_path(&self, input: Fingerprint) -> PathBuf {
        self.by_input_dir().join(format!("{input}.man"))
    }

    /// Where the manifest for a level key lives.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let fp = marshal_depgraph::Fingerprint::of(key.as_bytes()).short();
        let last = key.rsplit('/').next().unwrap_or(key);
        self.dir.join(format!("{last}-{fp}.img"))
    }

    /// Persists an image under a level key: payloads into the blob pool
    /// (deduped against whatever is already there), manifest into
    /// `levels/`, and the image itself into the in-memory cache.
    ///
    /// # Errors
    ///
    /// I/O failures as strings (the task-action error type).
    pub fn store(&self, key: &str, image: FsImage) -> Result<(), String> {
        self.store_with_input(key, None, image)
    }

    /// [`ImageStore::store`], additionally indexing the manifest under the
    /// level's input fingerprint so `marshal serve` can distribute it.
    ///
    /// # Errors
    ///
    /// I/O failures as strings (the task-action error type).
    pub fn store_with_input(
        &self,
        key: &str,
        input: Option<Fingerprint>,
        image: FsImage,
    ) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("mkdir {}: {e}", self.dir.display()))?;
        let path = self.path_for(key);
        marshal_depgraph::assert_claimed(&path);
        let (manifest, stats) = self
            .blobs
            .write_manifest(&image)
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, &manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
        if let Some(fp) = input {
            self.write_by_input(fp, &manifest)?;
        }
        self.recorder.blob_put(key, stats.bytes_written);
        self.stats.lock().expect("stats poisoned").absorb(&stats);
        self.cache
            .lock()
            .expect("store poisoned")
            .insert(key.to_owned(), image);
        Ok(())
    }

    /// Installs a manifest fetched from a remote as the level file for
    /// `key` (and its by-input index entry). The image itself is *not*
    /// materialised — consumers load it lazily from the (already fetched)
    /// blobs.
    ///
    /// # Errors
    ///
    /// I/O failures as strings (the task-action error type).
    pub fn install_fetched_manifest(
        &self,
        key: &str,
        input: Fingerprint,
        manifest: &[u8],
    ) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("mkdir {}: {e}", self.dir.display()))?;
        let path = self.path_for(key);
        marshal_depgraph::assert_claimed(&path);
        std::fs::write(&path, manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
        self.write_by_input(input, manifest)?;
        // A fetched level invalidates any stale cached copy under this key.
        self.cache.lock().expect("store poisoned").remove(key);
        Ok(())
    }

    /// Write-once by-input index entry (tmp + rename, like blob puts, so
    /// concurrent writers of the same level are benign).
    fn write_by_input(&self, input: Fingerprint, manifest: &[u8]) -> Result<(), String> {
        let path = self.by_input_path(input);
        if path.exists() {
            return Ok(());
        }
        marshal_depgraph::assert_claimed(&path);
        let dir = self.by_input_dir();
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let tmp = dir.join(format!(
            ".{input}.{}.{}.tmp",
            std::process::id(),
            PIN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, manifest).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename {}: {e}", path.display())
        })?;
        Ok(())
    }

    /// Loads the image for a level key. Cache hits are O(1) — images are
    /// copy-on-write, so the returned clone shares every allocation with
    /// the cached copy. Misses read the manifest (or a legacy flat `MIMG`
    /// file) from disk.
    ///
    /// A load that trips on pool damage self-defends: a corrupt blob is
    /// quarantined and (with a remote configured) re-fetched, and when the
    /// level stays unloadable its manifest is removed so the owning task
    /// rebuilds it on the next run instead of failing every consumer
    /// forever.
    ///
    /// # Errors
    ///
    /// Missing or malformed level files / blobs, as strings.
    pub fn load(&self, key: &str) -> Result<FsImage, String> {
        let mut cache = self.cache.lock().expect("store poisoned");
        if let Some(img) = cache.get(key) {
            self.recorder.cache_event(key, true);
            return Ok(img.clone());
        }
        self.recorder.cache_event(key, false);
        let path = self.path_for(key);
        if !path.exists() {
            return Err(format!(
                "image `{key}` not built ({} missing)",
                path.display()
            ));
        }
        let img = match self.blobs.load_image(&path) {
            Ok(img) => img,
            Err(e) => self.recover_load(key, &path, e)?,
        };
        self.recorder.blob_get(key, img.total_size());
        cache.insert(key.to_owned(), img.clone());
        Ok(img)
    }

    /// The recovery path for a failed manifest load: quarantine, optional
    /// remote heal, else invalidate the manifest so the level rebuilds.
    fn recover_load(&self, key: &str, path: &Path, err: StoreError) -> Result<FsImage, String> {
        let (fp, quarantined) = match &err {
            StoreError::CorruptBlob { expected, .. } => {
                (*expected, self.blobs.quarantine(*expected).is_ok())
            }
            StoreError::MissingBlob { fp, .. } => (*fp, false),
            StoreError::Manifest(_) => {
                self.invalidate_manifest(path);
                return Err(format!(
                    "image `{key}`: torn or malformed manifest removed ({err}); \
                     the level will rebuild on the next run"
                ));
            }
            StoreError::Io(_) => return Err(format!("image `{key}`: {err}")),
        };
        // Self-heal: a configured remote may still have the payload.
        if let Some(remote) = &self.remote {
            if remote.fetch_blob(&self.blobs, fp).unwrap_or(false) {
                if let Ok(img) = self.blobs.load_image(path) {
                    return Ok(img);
                }
            }
        }
        self.invalidate_manifest(path);
        let action = if quarantined {
            "quarantined"
        } else {
            "missing from the pool"
        };
        Err(format!(
            "image `{key}`: blob {fp} {action} ({err}); manifest removed so \
             the level will rebuild on the next run"
        ))
    }

    fn invalidate_manifest(&self, path: &Path) {
        let _ = std::fs::remove_file(path);
    }

    /// Cumulative byte accounting across every [`ImageStore::store`] call
    /// made through this store (or any clone of it).
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock().expect("stats poisoned")
    }
}

static PIN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// An advisory pin on a blob pool, held by a build for as long as it may
/// rely on existence checks against `objects/` (between a builder's
/// "blob already present" test and its manifest write). `clean` refuses to
/// prune the pool while any live pin exists, closing the race where a
/// concurrent prune deletes a blob a `-j N` build just decided not to
/// rewrite.
///
/// Pins are files under `objects/.pins/` named `<pid>-<seq>.pin` and
/// containing the owning pid; a pin whose process has exited is stale and
/// is removed by the next [`scan_pool_pins`].
#[derive(Debug)]
pub struct PoolPin {
    path: PathBuf,
}

impl PoolPin {
    /// Takes a pin on the pool rooted at `objects_dir`.
    ///
    /// # Errors
    ///
    /// I/O failures as strings.
    pub fn acquire(objects_dir: &Path) -> Result<PoolPin, String> {
        let dir = objects_dir.join(".pins");
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let path = dir.join(format!(
            "{}-{}.pin",
            std::process::id(),
            PIN_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&path, std::process::id().to_string())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(PoolPin { path })
    }

    /// The pin file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for PoolPin {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What a pin scan found: the live pins blocking a prune, after stale pins
/// (owners no longer running) were swept away.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PinScan {
    /// Pin file names whose owning processes are still alive.
    pub live: Vec<String>,
    /// Stale pin files removed.
    pub stale_removed: usize,
}

/// Scans `objects/.pins/`, removing pins whose owners have exited and
/// reporting the ones still alive.
pub fn scan_pool_pins(objects_dir: &Path) -> PinScan {
    let mut scan = PinScan::default();
    let Ok(entries) = std::fs::read_dir(objects_dir.join(".pins")) else {
        return scan;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let pid = std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| s.trim().parse::<u32>().ok());
        let alive = pid.is_some_and(pid_alive);
        if alive {
            scan.live.push(
                path.file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned(),
            );
        } else if std::fs::remove_file(&path).is_ok() {
            scan.stale_removed += 1;
        }
    }
    scan
}

/// Whether a process id is still running. On Linux this is a `/proc`
/// lookup; elsewhere pins are conservatively treated as live (a stale pin
/// then blocks pruning until removed by hand, never the other way around).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-istore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn by_input_index_written_and_idempotent() {
        let dir = scratch("byinput");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/f", b"payload").unwrap();
        let input = Fingerprint::of(b"input-key");
        store
            .store_with_input("lvl", Some(input), img.clone())
            .unwrap();
        let idx = store.by_input_path(input);
        assert!(idx.is_file());
        let first = std::fs::read(&idx).unwrap();
        // Second store of the same level leaves the entry untouched.
        store.store_with_input("lvl", Some(input), img).unwrap();
        assert_eq!(std::fs::read(&idx).unwrap(), first);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_blob_load_quarantines_and_invalidates() {
        let dir = scratch("heal");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/f", b"rot me").unwrap();
        store.store("lvl", img).unwrap();
        // Fresh store (no cache) with a rotted blob.
        let store = ImageStore::new(&dir);
        let refs =
            marshal_image::manifest_refs(&std::fs::read(store.path_for("lvl")).unwrap()).unwrap();
        std::fs::write(store.blobs().blob_path(refs[0]), b"rotted!").unwrap();
        let err = store.load("lvl").unwrap_err();
        assert!(err.contains("quarantined"), "{err}");
        assert!(
            !store.path_for("lvl").exists(),
            "manifest removed so the level rebuilds"
        );
        assert!(store.blobs().quarantine_dir().is_dir());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_manifest_load_invalidates_without_panic() {
        let dir = scratch("torn");
        let store = ImageStore::new(&dir);
        let mut img = FsImage::new();
        img.write_file("/f", b"data").unwrap();
        store.store("lvl", img).unwrap();
        let store = ImageStore::new(&dir);
        let path = store.path_for("lvl");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = store.load("lvl").unwrap_err();
        assert!(err.contains("manifest"), "{err}");
        assert!(!path.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn pins_block_then_release() {
        let dir = scratch("pins");
        let objects = dir.join("objects");
        std::fs::create_dir_all(&objects).unwrap();
        let pin = PoolPin::acquire(&objects).unwrap();
        let scan = scan_pool_pins(&objects);
        assert_eq!(scan.live.len(), 1, "own pin is live");
        drop(pin);
        let scan = scan_pool_pins(&objects);
        assert!(scan.live.is_empty(), "dropped pin released");
        // A pin from a dead process is swept as stale.
        let stale = objects.join(".pins").join("4000000000-0.pin");
        std::fs::create_dir_all(objects.join(".pins")).unwrap();
        std::fs::write(&stale, "4000000000").unwrap();
        let scan = scan_pool_pins(&objects);
        if cfg!(target_os = "linux") {
            assert_eq!(scan.stale_removed, 1);
            assert!(!stale.exists());
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
