//! The level-image store: `MMAN` manifests in `workdir/levels/`, payloads
//! in the content-addressed blob pool at `workdir/objects/`.
//!
//! Each level of a workload's inheritance chain persists as a small
//! manifest; the actual file bytes live once in the blob pool, shared
//! across levels, jobs, and sibling workloads. Legacy flat `MIMG` level
//! files (pre-existing workdirs) are still readable — the loader sniffs
//! the magic. Tasks that persist images through the store must declare a
//! [`marshal_depgraph::Task::claim_tree`] over [`ImageStore::objects_dir`],
//! since blob paths are content-derived and unknown at planning time.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use marshal_image::{BlobStore, FsImage, StoreStats};

/// Level images are persisted to disk (so incremental rebuilds can load a
/// skipped parent's image) and cached in memory within one build. Cloning
/// shares the cache and the blob pool.
#[derive(Debug, Clone)]
pub struct ImageStore {
    cache: Arc<Mutex<BTreeMap<String, FsImage>>>,
    stats: Arc<Mutex<StoreStats>>,
    dir: PathBuf,
    blobs: BlobStore,
}

impl ImageStore {
    /// A store for the given marshal workdir (`levels/` + `objects/`).
    pub fn new(workdir: &Path) -> ImageStore {
        ImageStore {
            cache: Arc::new(Mutex::new(BTreeMap::new())),
            stats: Arc::new(Mutex::new(StoreStats::default())),
            dir: workdir.join("levels"),
            blobs: BlobStore::new(workdir.join("objects")),
        }
    }

    /// The manifest directory (`workdir/levels`).
    pub fn levels_dir(&self) -> &Path {
        &self.dir
    }

    /// The blob pool root (`workdir/objects`) — the tree tasks must claim.
    pub fn objects_dir(&self) -> &Path {
        self.blobs.root()
    }

    /// Where the manifest for a level key lives.
    pub fn path_for(&self, key: &str) -> PathBuf {
        let fp = marshal_depgraph::Fingerprint::of(key.as_bytes()).short();
        let last = key.rsplit('/').next().unwrap_or(key);
        self.dir.join(format!("{last}-{fp}.img"))
    }

    /// Persists an image under a level key: payloads into the blob pool
    /// (deduped against whatever is already there), manifest into
    /// `levels/`, and the image itself into the in-memory cache.
    ///
    /// # Errors
    ///
    /// I/O failures as strings (the task-action error type).
    pub fn store(&self, key: &str, image: FsImage) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("mkdir {}: {e}", self.dir.display()))?;
        let path = self.path_for(key);
        marshal_depgraph::assert_claimed(&path);
        let (manifest, stats) = self
            .blobs
            .write_manifest(&image)
            .map_err(|e| e.to_string())?;
        std::fs::write(&path, manifest).map_err(|e| format!("write {}: {e}", path.display()))?;
        self.stats.lock().expect("stats poisoned").absorb(&stats);
        self.cache
            .lock()
            .expect("store poisoned")
            .insert(key.to_owned(), image);
        Ok(())
    }

    /// Loads the image for a level key. Cache hits are O(1) — images are
    /// copy-on-write, so the returned clone shares every allocation with
    /// the cached copy. Misses read the manifest (or a legacy flat `MIMG`
    /// file) from disk.
    ///
    /// # Errors
    ///
    /// Missing or malformed level files / blobs, as strings.
    pub fn load(&self, key: &str) -> Result<FsImage, String> {
        let mut cache = self.cache.lock().expect("store poisoned");
        if let Some(img) = cache.get(key) {
            return Ok(img.clone());
        }
        let path = self.path_for(key);
        if !path.exists() {
            return Err(format!(
                "image `{key}` not built ({} missing)",
                path.display()
            ));
        }
        let img = self
            .blobs
            .load_image(&path)
            .map_err(|e| format!("image `{key}`: {e}"))?;
        cache.insert(key.to_owned(), img.clone());
        Ok(img)
    }

    /// Cumulative byte accounting across every [`ImageStore::store`] call
    /// made through this store (or any clone of it).
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock().expect("stats poisoned")
    }
}
