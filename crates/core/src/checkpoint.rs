//! Boot-checkpoint persistence: content-addressed snapshots of the
//! post-init machine state under `workdir/checkpoints/`.
//!
//! A cold `launch` replays the whole modelled boot (firmware → kernel →
//! initramfs → init system) before the payload runs a single instruction.
//! That work is identical for every launch of the same artifacts on the
//! same backend configuration, so the first cold boot captures a
//! [`BootSnapshot`] and later launches restore it in O(memory-copy) —
//! `test` fleets and cosim runs amortize boot to near zero.
//!
//! Checkpoints are keyed by fingerprint: the backend's
//! [`config_fingerprint`](crate::simulator::Simulator::config_fingerprint)
//! plus the boot binary's and disk image's memoized Merkle fingerprints.
//! Any input that could change what boot produces changes the key, so a
//! stale checkpoint is simply never looked up — it lingers until `marshal
//! clean` prunes it.
//!
//! Robustness over speed: every checkpoint file embeds a checksum of its
//! payload, loads verify it, and anything torn, truncated, or rotted is
//! moved to `checkpoints/.quarantine/` and reported as a miss — the caller
//! falls back to a cold boot and rewrites a fresh checkpoint. A damaged
//! checkpoint can cost a boot; it can never change an answer.
//!
//! Writes are tmp + rename (atomic on POSIX), *not*
//! [`crate::integrity::write_artifact`] — that helper asserts build-graph
//! path claims, and checkpoints are written from the launch path where no
//! task claims exist.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use marshal_depgraph::{Fingerprint, Hasher128};
use marshal_sim_functional::BootSnapshot;

const MAGIC: &[u8; 4] = b"MCKP";
const VERSION: u32 = 1;
/// Bytes before the payload: magic, version, boot fp, disk flag + fp,
/// payload length. [`CheckpointStore::list`] reads only this much.
const HEADER_LEN: usize = 4 + 4 + 16 + 1 + 16 + 8;

/// The checkpoint key for one (backend configuration, boot binary, disk)
/// triple. The disk's *absence* is part of the key — a diskless launch
/// must not share a snapshot with a disked one.
pub fn checkpoint_key(
    config: Fingerprint,
    boot: Fingerprint,
    disk: Option<Fingerprint>,
) -> Fingerprint {
    let mut h = Hasher128::new();
    h.update_field(b"boot-checkpoint-v1");
    h.update_field(&config.0.to_le_bytes());
    h.update_field(&boot.0.to_le_bytes());
    match disk {
        Some(fp) => {
            h.update_field(b"disk");
            h.update_field(&fp.0.to_le_bytes());
        }
        None => h.update_field(b"no-disk"),
    }
    h.finish()
}

/// The outcome of a checkpoint lookup.
#[derive(Debug)]
pub enum CheckpointLoad {
    /// A verified snapshot was restored.
    Hit(BootSnapshot),
    /// No checkpoint exists for the key.
    Miss,
    /// A file existed but failed verification; it has been quarantined.
    /// The caller boots cold (and will overwrite with a fresh capture).
    Corrupt {
        /// Where the damaged file was moved (inside `.quarantine/`).
        quarantined: PathBuf,
        /// What failed: truncation, bad magic, checksum mismatch, …
        detail: String,
    },
}

/// The header of one stored checkpoint — enough for `marshal clean` to
/// decide liveness without deserializing the (large) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointEntry {
    /// The checkpoint key (from the file name).
    pub key: Fingerprint,
    /// Fingerprint of the boot binary this snapshot was captured from.
    pub boot_fp: Fingerprint,
    /// Fingerprint of the disk image, when one was attached.
    pub disk_fp: Option<Fingerprint>,
    /// On-disk size in bytes (for bytes-reclaimed reporting).
    pub bytes: u64,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The on-disk checkpoint store for one marshal workdir. Cloning shares
/// the in-memory cache, so a `test` fleet restoring the same boot eight
/// times pays the disk read once.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    cache: Arc<Mutex<BTreeMap<u128, BootSnapshot>>>,
}

impl CheckpointStore {
    /// The store rooted at `workdir/checkpoints/`. Nothing is created
    /// until the first save.
    pub fn new(workdir: &Path) -> CheckpointStore {
        CheckpointStore {
            dir: workdir.join("checkpoints"),
            cache: Arc::new(Mutex::new(BTreeMap::new())),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where damaged checkpoint files are moved.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(".quarantine")
    }

    /// The file a key's checkpoint lives in.
    pub fn path_for(&self, key: Fingerprint) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }

    /// Looks a checkpoint up, verifying its embedded checksum. Damage is
    /// never fatal: a bad file is quarantined and reported as
    /// [`CheckpointLoad::Corrupt`] so the caller boots cold.
    pub fn load(&self, key: Fingerprint) -> CheckpointLoad {
        if let Some(snap) = self.cache.lock().expect("cache poisoned").get(&key.0) {
            return CheckpointLoad::Hit(snap.clone());
        }
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return CheckpointLoad::Miss,
            Err(e) => {
                return self.quarantine(&path, format!("unreadable: {e}"));
            }
        };
        match decode(&bytes) {
            Ok((_, snap)) => {
                self.cache
                    .lock()
                    .expect("cache poisoned")
                    .insert(key.0, snap.clone());
                CheckpointLoad::Hit(snap)
            }
            Err(detail) => self.quarantine(&path, detail),
        }
    }

    /// Persists a snapshot under a key (tmp + rename; concurrent writers
    /// of the same key are benign — last rename wins and both wrote
    /// identical content).
    ///
    /// # Errors
    ///
    /// I/O failures as strings; callers on the launch path degrade to a
    /// warning rather than failing the run.
    pub fn save(
        &self,
        key: Fingerprint,
        boot_fp: Fingerprint,
        disk_fp: Option<Fingerprint>,
        snap: &BootSnapshot,
    ) -> Result<(), String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("mkdir {}: {e}", self.dir.display()))?;
        let bytes = encode(boot_fp, disk_fp, snap);
        let tmp = self.dir.join(format!(
            ".tmp-{key}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        let path = self.path_for(key);
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename {}: {e}", path.display())
        })?;
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key.0, snap.clone());
        Ok(())
    }

    /// Every stored checkpoint's header, for `marshal clean`'s liveness
    /// scan. Files that fail even header validation are skipped (a later
    /// `load` would quarantine them); stray tmp files are ignored.
    pub fn list(&self) -> Vec<CheckpointEntry> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name.strip_suffix(".ckpt") else {
                continue;
            };
            let Ok(key) = stem.parse::<Fingerprint>() else {
                continue;
            };
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Ok(header) = decode_header(&bytes) {
                out.push(CheckpointEntry {
                    key,
                    boot_fp: header.0,
                    disk_fp: header.1,
                    bytes: bytes.len() as u64,
                });
            }
        }
        out.sort_by_key(|e| e.key.0);
        out
    }

    /// Removes a checkpoint, returning the bytes reclaimed (0 when it was
    /// already gone).
    pub fn remove(&self, key: Fingerprint) -> u64 {
        self.cache.lock().expect("cache poisoned").remove(&key.0);
        let path = self.path_for(key);
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if std::fs::remove_file(&path).is_ok() {
            bytes
        } else {
            0
        }
    }

    /// Moves a damaged file into `.quarantine/` (falling back to plain
    /// removal if the rename fails) and reports the corruption.
    fn quarantine(&self, path: &Path, detail: String) -> CheckpointLoad {
        let qdir = self.quarantine_dir();
        let _ = std::fs::create_dir_all(&qdir);
        let dest = qdir.join(path.file_name().unwrap_or_default());
        if std::fs::rename(path, &dest).is_err() {
            let _ = std::fs::remove_file(path);
        }
        CheckpointLoad::Corrupt {
            quarantined: dest,
            detail,
        }
    }
}

fn encode(boot_fp: Fingerprint, disk_fp: Option<Fingerprint>, snap: &BootSnapshot) -> Vec<u8> {
    let payload = snap.to_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 16);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&boot_fp.0.to_le_bytes());
    match disk_fp {
        Some(fp) => {
            out.push(1);
            out.extend_from_slice(&fp.0.to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u128.to_le_bytes());
        }
    }
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&Fingerprint::of(&payload).0.to_le_bytes());
    out
}

/// Parses and validates the fixed-size header, returning the boot and
/// disk fingerprints plus the payload length.
fn decode_header(bytes: &[u8]) -> Result<(Fingerprint, Option<Fingerprint>, usize), String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "truncated header ({} of {HEADER_LEN} bytes)",
            bytes.len()
        ));
    }
    if &bytes[0..4] != MAGIC {
        return Err("bad magic (not a checkpoint file)".to_owned());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
    if version != VERSION {
        return Err(format!("unsupported checkpoint version {version}"));
    }
    let boot_fp = Fingerprint(u128::from_le_bytes(
        bytes[8..24].try_into().expect("sliced"),
    ));
    let disk_fp = match bytes[24] {
        0 => None,
        1 => Some(Fingerprint(u128::from_le_bytes(
            bytes[25..41].try_into().expect("sliced"),
        ))),
        tag => return Err(format!("bad disk-fingerprint tag {tag}")),
    };
    let payload_len =
        u64::from_le_bytes(bytes[41..HEADER_LEN].try_into().expect("sliced")) as usize;
    Ok((boot_fp, disk_fp, payload_len))
}

fn decode(bytes: &[u8]) -> Result<((Fingerprint, Option<Fingerprint>), BootSnapshot), String> {
    let (boot_fp, disk_fp, payload_len) = decode_header(bytes)?;
    let body = &bytes[HEADER_LEN..];
    if body.len() != payload_len + 16 {
        return Err(format!(
            "payload length mismatch (header says {payload_len}, file carries {})",
            body.len().saturating_sub(16)
        ));
    }
    let (payload, sum) = body.split_at(payload_len);
    let expected = Fingerprint(u128::from_le_bytes(sum.try_into().expect("split at 16")));
    let actual = Fingerprint::of(payload);
    if expected != actual {
        return Err(format!(
            "checksum mismatch (recorded {expected}, computed {actual})"
        ));
    }
    let snap = BootSnapshot::from_bytes(payload).map_err(|e| format!("payload: {e}"))?;
    Ok(((boot_fp, disk_fp), snap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_image::FsImage;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_snapshot() -> BootSnapshot {
        let mut image = FsImage::new();
        image.write_file("/etc/motd", b"checkpointed").unwrap();
        BootSnapshot {
            serial: "[boot] lines\n".to_owned(),
            image,
            cycles: 1234,
            instructions: 0,
            last_exit: 0,
            switch_root_target: None,
            systemd: false,
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = scratch("roundtrip");
        let store = CheckpointStore::new(&dir);
        let key = checkpoint_key(
            Fingerprint::of(b"cfg"),
            Fingerprint::of(b"boot"),
            Some(Fingerprint::of(b"disk")),
        );
        let snap = sample_snapshot();
        store
            .save(
                key,
                Fingerprint::of(b"boot"),
                Some(Fingerprint::of(b"disk")),
                &snap,
            )
            .unwrap();
        // A fresh store (cold cache) reads it back from disk.
        let store = CheckpointStore::new(&dir);
        match store.load(key) {
            CheckpointLoad::Hit(got) => assert_eq!(got, snap),
            other => panic!("expected hit, got {other:?}"),
        }
        // And the cached path agrees.
        match store.load(key) {
            CheckpointLoad::Hit(got) => assert_eq!(got, snap),
            other => panic!("expected cached hit, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_is_a_miss() {
        let dir = scratch("miss");
        let store = CheckpointStore::new(&dir);
        assert!(matches!(
            store.load(Fingerprint::of(b"nothing")),
            CheckpointLoad::Miss
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corruption_quarantines_and_recovers() {
        let dir = scratch("corrupt");
        let store = CheckpointStore::new(&dir);
        let key = checkpoint_key(Fingerprint::of(b"cfg"), Fingerprint::of(b"boot"), None);
        let snap = sample_snapshot();
        store
            .save(key, Fingerprint::of(b"boot"), None, &snap)
            .unwrap();
        // Flip a payload byte: checksum catches it.
        let path = store.path_for(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + 4;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = CheckpointStore::new(&dir);
        match store.load(key) {
            CheckpointLoad::Corrupt {
                quarantined,
                detail,
            } => {
                assert!(detail.contains("checksum"), "{detail}");
                assert!(quarantined.exists(), "damaged file preserved for autopsy");
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert!(!path.exists(), "damaged file moved out of the store");
        // The slot is free again: a fresh save works and loads clean.
        store
            .save(key, Fingerprint::of(b"boot"), None, &snap)
            .unwrap();
        let store = CheckpointStore::new(&dir);
        assert!(matches!(store.load(key), CheckpointLoad::Hit(_)));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_is_detected() {
        let dir = scratch("torn");
        let store = CheckpointStore::new(&dir);
        let key = checkpoint_key(Fingerprint::of(b"cfg"), Fingerprint::of(b"boot"), None);
        store
            .save(key, Fingerprint::of(b"boot"), None, &sample_snapshot())
            .unwrap();
        let path = store.path_for(key);
        let bytes = std::fs::read(&path).unwrap();
        // Truncate mid-payload and mid-header.
        for cut in [bytes.len() / 2, HEADER_LEN - 3, 2] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let store = CheckpointStore::new(&dir);
            assert!(
                matches!(store.load(key), CheckpointLoad::Corrupt { .. }),
                "cut at {cut} must not load"
            );
            // Quarantine consumed the file; put it back for the next cut.
            std::fs::write(&path, &bytes).unwrap();
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_reads_headers_and_remove_reports_bytes() {
        let dir = scratch("list");
        let store = CheckpointStore::new(&dir);
        let boot_a = Fingerprint::of(b"boot-a");
        let boot_b = Fingerprint::of(b"boot-b");
        let disk_b = Fingerprint::of(b"disk-b");
        let key_a = checkpoint_key(Fingerprint::of(b"cfg"), boot_a, None);
        let key_b = checkpoint_key(Fingerprint::of(b"cfg"), boot_b, Some(disk_b));
        store.save(key_a, boot_a, None, &sample_snapshot()).unwrap();
        store
            .save(key_b, boot_b, Some(disk_b), &sample_snapshot())
            .unwrap();
        let entries = store.list();
        assert_eq!(entries.len(), 2);
        let a = entries.iter().find(|e| e.key == key_a).unwrap();
        assert_eq!(a.boot_fp, boot_a);
        assert_eq!(a.disk_fp, None);
        let b = entries.iter().find(|e| e.key == key_b).unwrap();
        assert_eq!(b.disk_fp, Some(disk_b));
        assert!(b.bytes > 0);
        let reclaimed = store.remove(key_b);
        assert_eq!(reclaimed, b.bytes);
        assert_eq!(store.list().len(), 1);
        assert_eq!(store.remove(key_b), 0, "second remove reclaims nothing");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn key_distinguishes_all_inputs() {
        let cfg = Fingerprint::of(b"cfg");
        let boot = Fingerprint::of(b"boot");
        let disk = Fingerprint::of(b"disk");
        let base = checkpoint_key(cfg, boot, Some(disk));
        assert_ne!(
            base,
            checkpoint_key(Fingerprint::of(b"cfg2"), boot, Some(disk))
        );
        assert_ne!(
            base,
            checkpoint_key(cfg, Fingerprint::of(b"boot2"), Some(disk))
        );
        assert_ne!(
            base,
            checkpoint_key(cfg, boot, Some(Fingerprint::of(b"disk2")))
        );
        assert_ne!(base, checkpoint_key(cfg, boot, None));
    }
}
