//! The unified simulator backend registry.
//!
//! §III-C/E's portability claim — "the exact same artifacts are run on
//! both simulators" — deserves one abstraction, not dispatch scattered
//! across `launch`, `build` (guest-init), `install`, and `test`. Every
//! backend implements [`Simulator`]: a registry name, the log prefixes
//! its banner lines carry (so output canonicalization never falls out of
//! sync with the backend list), its feature tags (e.g. `pfa` from a
//! custom `pfa-spike` binary), and one `run` entry point taking the same
//! loaded artifacts regardless of backend.
//!
//! The registry mirrors [`crate::connector`]: [`simulator_for`] resolves
//! a name (with aliases) to a boxed backend, [`simulator_names`] lists
//! the canonical names for CLI diagnostics. `launch --sim <backend>`
//! routes through here, and [`crate::cosim`] runs two backends in
//! lockstep over identical artifacts to diff their behaviour.

use marshal_config::WorkloadSpec;
use marshal_depgraph::{Fingerprint, Hasher128};
use marshal_sim_functional::{BootSnapshot, LaunchMode, Qemu, SimConfig, SimResult, Spike};
use marshal_sim_rtl::{FireSim, HardwareConfig, PerfReport};

use crate::error::MarshalError;
use crate::launch::LoadedJob;

/// The outcome of one backend run: the simulation result plus, for timed
/// backends, the performance report.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// Serial log, final image, exit code, instruction count.
    pub result: SimResult,
    /// The cycle-exact performance report (`None` on functional backends,
    /// which have no timing model).
    pub report: Option<PerfReport>,
}

/// One simulator backend: anything that can run a built workload's
/// unmodified artifacts.
pub trait Simulator: Send + Sync {
    /// The backend's registry name (`qemu`, `spike`, `rtl`).
    fn name(&self) -> &'static str;

    /// Line prefixes this backend emits in serial logs (banners, exit
    /// lines). [`crate::test::clean_output`] strips lines starting with
    /// any registered backend's prefixes, so references written against
    /// one backend match every other.
    fn log_prefixes(&self) -> &'static [&'static str];

    /// Feature tags the configured backend instance carries (e.g. `pfa`
    /// for a `pfa-spike` golden-model binary, or the remote-memory model
    /// of an RTL configuration).
    fn features(&self) -> Vec<String>;

    /// Runs loaded artifacts. Linux jobs boot the full system; bare jobs
    /// execute the binary directly.
    ///
    /// # Errors
    ///
    /// Simulation errors ([`MarshalError::Sim`]).
    fn run(&self, job: &LoadedJob, mode: LaunchMode) -> Result<SimRun, MarshalError>;

    /// A stable fingerprint of every configuration knob that can change
    /// what a boot produces on this backend (binary features, extra
    /// arguments, instruction budget, hardware configuration). Part of the
    /// boot-checkpoint key: the same artifacts booted under a different
    /// configuration must never share a snapshot. Over-keying is safe (at
    /// worst a redundant cold boot); under-keying is not.
    fn config_fingerprint(&self) -> Fingerprint;

    /// [`Simulator::run`] with boot checkpointing: when `resume` is given
    /// (and the job is an eligible Linux `Run`), the boot phase is skipped
    /// by restoring the snapshot; on an eligible cold boot the returned
    /// snapshot captures the post-init state for later reuse. Bare jobs
    /// and ineligible modes run cold and return `None`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    fn run_resumed(
        &self,
        job: &LoadedJob,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimRun, Option<BootSnapshot>), MarshalError> {
        let _ = resume;
        Ok((self.run(job, mode)?, None))
    }
}

/// Folds the common [`SimConfig`] knobs into a backend fingerprint.
fn hash_sim_config(h: &mut Hasher128, cfg: &SimConfig) {
    h.update_field(cfg.kind.name().as_bytes());
    h.update_u64(cfg.max_instructions);
    h.update_u64(cfg.features.len() as u64);
    for f in &cfg.features {
        h.update_field(f.as_bytes());
    }
    h.update_u64(cfg.extra_args.len() as u64);
    for a in &cfg.extra_args {
        h.update_field(a.as_bytes());
    }
}

/// Construction options shared by every backend.
#[derive(Debug, Clone, Default)]
pub struct BackendOptions {
    /// Guest watchdog budget override (`--timeout-insts`).
    pub timeout_insts: Option<u64>,
    /// Hardware configuration for timed backends (`--hw`). `None` picks a
    /// default suited to the workload's features (see [`RtlSim::for_spec`]).
    pub hw: Option<HardwareConfig>,
}

/// The QEMU-like functional backend (the historical `launch` default).
pub struct QemuSim {
    qemu: Qemu,
}

impl QemuSim {
    /// Configures QEMU from a job spec: custom binary (`qemu`), extra
    /// arguments (`qemu-args`), watchdog budget.
    pub fn for_spec(spec: &WorkloadSpec, opts: &BackendOptions) -> QemuSim {
        let mut qemu = match &spec.qemu {
            Some(binary) => Qemu::with_binary(binary),
            None => Qemu::new(),
        };
        qemu = qemu.with_args(&spec.qemu_args);
        if let Some(n) = opts.timeout_insts {
            qemu = qemu.with_budget(n);
        }
        QemuSim { qemu }
    }
}

impl Simulator for QemuSim {
    fn name(&self) -> &'static str {
        "qemu"
    }

    fn log_prefixes(&self) -> &'static [&'static str] {
        // Banner lines read "qemu-system-riscv64: ...".
        &["qemu"]
    }

    fn features(&self) -> Vec<String> {
        self.qemu.config().features.clone()
    }

    fn run(&self, job: &LoadedJob, mode: LaunchMode) -> Result<SimRun, MarshalError> {
        let result = match job {
            LoadedJob::Linux { boot, disk } => self.qemu.launch(boot, disk.as_ref(), mode)?,
            LoadedJob::Bare { bin } => self.qemu.launch_bare(bin)?,
        };
        Ok(SimRun {
            result,
            report: None,
        })
    }

    fn config_fingerprint(&self) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update_field(b"qemu");
        hash_sim_config(&mut h, self.qemu.config());
        h.finish()
    }

    fn run_resumed(
        &self,
        job: &LoadedJob,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimRun, Option<BootSnapshot>), MarshalError> {
        match job {
            LoadedJob::Linux { boot, disk } => {
                let (result, captured) =
                    self.qemu
                        .launch_checkpointed(boot, disk.as_ref(), mode, resume)?;
                Ok((
                    SimRun {
                        result,
                        report: None,
                    },
                    captured,
                ))
            }
            LoadedJob::Bare { .. } => Ok((self.run(job, mode)?, None)),
        }
    }
}

/// The Spike-like functional backend, including custom golden-model
/// binaries (`pfa-spike`).
pub struct SpikeSim {
    spike: Spike,
}

impl SpikeSim {
    /// Configures Spike from a job spec: custom binary (`spike`), extra
    /// arguments (`spike-args`), watchdog budget.
    pub fn for_spec(spec: &WorkloadSpec, opts: &BackendOptions) -> SpikeSim {
        let mut spike = match &spec.spike {
            Some(binary) => Spike::with_binary(binary),
            None => Spike::new(),
        };
        spike = spike.with_args(&spec.spike_args);
        if let Some(n) = opts.timeout_insts {
            spike = spike.with_budget(n);
        }
        SpikeSim { spike }
    }
}

impl Simulator for SpikeSim {
    fn name(&self) -> &'static str {
        "spike"
    }

    fn log_prefixes(&self) -> &'static [&'static str] {
        &["spike"]
    }

    fn features(&self) -> Vec<String> {
        self.spike.config().features.clone()
    }

    fn run(&self, job: &LoadedJob, mode: LaunchMode) -> Result<SimRun, MarshalError> {
        let result = match job {
            LoadedJob::Linux { boot, disk } => self.spike.launch(boot, disk.as_ref(), mode)?,
            LoadedJob::Bare { bin } => self.spike.launch_bare(bin)?,
        };
        Ok(SimRun {
            result,
            report: None,
        })
    }

    fn config_fingerprint(&self) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update_field(b"spike");
        h.update_field(self.spike.binary().as_bytes());
        hash_sim_config(&mut h, self.spike.config());
        h.finish()
    }

    fn run_resumed(
        &self,
        job: &LoadedJob,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimRun, Option<BootSnapshot>), MarshalError> {
        match job {
            LoadedJob::Linux { boot, disk } => {
                let (result, captured) =
                    self.spike
                        .launch_checkpointed(boot, disk.as_ref(), mode, resume)?;
                Ok((
                    SimRun {
                        result,
                        report: None,
                    },
                    captured,
                ))
            }
            LoadedJob::Bare { .. } => Ok((self.run(job, mode)?, None)),
        }
    }
}

/// The cycle-exact RTL backend (FireSim-like).
pub struct RtlSim {
    sim: FireSim,
}

impl RtlSim {
    /// A backend for an explicit hardware configuration.
    pub fn new(hw: HardwareConfig, timeout_insts: Option<u64>) -> RtlSim {
        let mut sim = FireSim::new(hw);
        if let Some(n) = timeout_insts {
            sim = sim.with_budget(n);
        }
        RtlSim { sim }
    }

    /// Configures the RTL backend for a job spec. Without an explicit
    /// `--hw` choice, picks Rocket — with the PFA remote-memory model
    /// attached when the workload's functional backend would carry the
    /// `pfa` feature tag, so the same workload exercises the same
    /// subsystem on every backend.
    pub fn for_spec(spec: &WorkloadSpec, opts: &BackendOptions) -> RtlSim {
        let hw = match &opts.hw {
            Some(hw) => hw.clone(),
            None => {
                let functional_features = SpikeSim::for_spec(spec, opts).features();
                if functional_features.iter().any(|f| f == "pfa") {
                    HardwareConfig::rocket().with_remote(marshal_sim_rtl::RemoteMemConfig::Pfa(
                        marshal_sim_rtl::pfa::RemoteTimings::default(),
                    ))
                } else {
                    HardwareConfig::rocket()
                }
            }
        };
        RtlSim::new(hw, opts.timeout_insts)
    }

    /// The underlying cycle-exact simulator (cluster launches in
    /// [`crate::install`] need its multi-node entry point).
    pub fn fire_sim(&self) -> &FireSim {
        &self.sim
    }
}

impl Simulator for RtlSim {
    fn name(&self) -> &'static str {
        "rtl"
    }

    fn log_prefixes(&self) -> &'static [&'static str] {
        &["firesim"]
    }

    fn features(&self) -> Vec<String> {
        match &self.sim.hardware().remote {
            marshal_sim_rtl::RemoteMemConfig::None => Vec::new(),
            remote => vec![remote.name().to_owned()],
        }
    }

    fn run(&self, job: &LoadedJob, mode: LaunchMode) -> Result<SimRun, MarshalError> {
        let (result, report) = match job {
            LoadedJob::Linux { boot, disk } => self.sim.launch(boot, disk.as_ref(), mode)?,
            LoadedJob::Bare { bin } => self.sim.launch_bare(bin)?,
        };
        Ok(SimRun {
            result,
            report: Some(report),
        })
    }

    fn config_fingerprint(&self) -> Fingerprint {
        let mut h = Hasher128::new();
        h.update_field(b"rtl");
        // The hardware name covers core/bpred/cache/remote choices; the
        // derived SimConfig covers the budget and `+config=` argument.
        h.update_field(self.sim.hardware().name.as_bytes());
        hash_sim_config(&mut h, &self.sim.sim_config());
        h.finish()
    }

    fn run_resumed(
        &self,
        job: &LoadedJob,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimRun, Option<BootSnapshot>), MarshalError> {
        match job {
            LoadedJob::Linux { boot, disk } => {
                let (result, report, captured) =
                    self.sim
                        .launch_checkpointed(boot, disk.as_ref(), mode, resume)?;
                Ok((
                    SimRun {
                        result,
                        report: Some(report),
                    },
                    captured,
                ))
            }
            LoadedJob::Bare { .. } => Ok((self.run(job, mode)?, None)),
        }
    }
}

/// All registered backend names, in registry order.
pub fn simulator_names() -> &'static [&'static str] {
    &["qemu", "spike", "rtl"]
}

/// Resolves a user-supplied backend name (with aliases) to its canonical
/// registry name.
pub fn resolve_backend(name: &str) -> Option<&'static str> {
    match name {
        "qemu" | "functional" => Some("qemu"),
        "spike" => Some("spike"),
        "rtl" | "firesim" | "cycle-exact" => Some("rtl"),
        _ => None,
    }
}

/// The backend a workload runs on when `--sim` is not given: the spec's
/// custom Spike when one is set (the paper's `spike` option), QEMU
/// otherwise — the historical `launch` behaviour, now as a registry
/// default instead of hardcoded dispatch.
pub fn default_backend(spec: &WorkloadSpec) -> &'static str {
    if spec.spike.is_some() {
        "spike"
    } else {
        "qemu"
    }
}

/// Builds the named backend configured for a job spec.
///
/// # Errors
///
/// [`MarshalError::Other`] naming the registered backends when `name` is
/// unknown.
pub fn simulator_for(
    name: &str,
    spec: &WorkloadSpec,
    opts: &BackendOptions,
) -> Result<Box<dyn Simulator>, MarshalError> {
    match resolve_backend(name) {
        Some("qemu") => Ok(Box::new(QemuSim::for_spec(spec, opts))),
        Some("spike") => Ok(Box::new(SpikeSim::for_spec(spec, opts))),
        Some("rtl") => Ok(Box::new(RtlSim::for_spec(spec, opts))),
        _ => Err(MarshalError::Other(format!(
            "unknown simulator backend `{name}` (try {})",
            simulator_names().join(", ")
        ))),
    }
}

/// Every registered backend's declared log prefixes, deduplicated, in
/// registry order — the canonicalization set [`crate::test::clean_output`]
/// strips. Adding a backend extends this automatically; no hand-maintained
/// prefix list can go stale.
pub fn all_log_prefixes() -> Vec<&'static str> {
    let spec = WorkloadSpec::default();
    let opts = BackendOptions::default();
    let backends: [Box<dyn Simulator>; 3] = [
        Box::new(QemuSim::for_spec(&spec, &opts)),
        Box::new(SpikeSim::for_spec(&spec, &opts)),
        Box::new(RtlSim::for_spec(&spec, &opts)),
    ];
    let mut prefixes = Vec::new();
    for backend in &backends {
        for p in backend.log_prefixes() {
            if !prefixes.contains(p) {
                prefixes.push(*p);
            }
        }
    }
    prefixes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::default()
    }

    #[test]
    fn registry_lookup() {
        let s = spec();
        let opts = BackendOptions::default();
        for name in simulator_names() {
            assert_eq!(simulator_for(name, &s, &opts).unwrap().name(), *name);
        }
        assert!(simulator_for("gem5", &s, &opts).is_err());
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(resolve_backend("functional"), Some("qemu"));
        assert_eq!(resolve_backend("firesim"), Some("rtl"));
        assert_eq!(resolve_backend("cycle-exact"), Some("rtl"));
        assert_eq!(resolve_backend("verilator"), None);
    }

    #[test]
    fn default_backend_follows_spike_option() {
        let mut s = spec();
        assert_eq!(default_backend(&s), "qemu");
        s.spike = Some("pfa-spike".to_owned());
        assert_eq!(default_backend(&s), "spike");
    }

    #[test]
    fn spike_backend_carries_custom_binary_features() {
        let mut s = spec();
        s.spike = Some("pfa-spike".to_owned());
        let backend = simulator_for("spike", &s, &BackendOptions::default()).unwrap();
        assert_eq!(backend.features(), vec!["pfa".to_owned()]);
        // The stock binary carries none.
        let stock = simulator_for("spike", &spec(), &BackendOptions::default()).unwrap();
        assert!(stock.features().is_empty());
    }

    #[test]
    fn rtl_backend_inherits_pfa_from_functional_features() {
        let mut s = spec();
        s.spike = Some("pfa-spike".to_owned());
        let rtl = RtlSim::for_spec(&s, &BackendOptions::default());
        assert_eq!(rtl.features(), vec!["pfa".to_owned()]);
        assert!(rtl.fire_sim().hardware().name.contains("pfa"));
        // An explicit --hw wins over the feature-derived default.
        let rtl = RtlSim::for_spec(
            &s,
            &BackendOptions {
                hw: Some(HardwareConfig::boom_tage()),
                ..Default::default()
            },
        );
        assert!(rtl.features().is_empty());
        assert_eq!(rtl.fire_sim().hardware().name, "boom-tage");
    }

    #[test]
    fn config_fingerprints_distinguish_backends_and_knobs() {
        let s = spec();
        let opts = BackendOptions::default();
        let fps: Vec<Fingerprint> = simulator_names()
            .iter()
            .map(|n| simulator_for(n, &s, &opts).unwrap().config_fingerprint())
            .collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "backends must not share a checkpoint key");
            }
        }
        // Stable across construction.
        let again = simulator_for("qemu", &s, &opts)
            .unwrap()
            .config_fingerprint();
        assert_eq!(fps[0], again);
        // Budget changes the key.
        let budget = BackendOptions {
            timeout_insts: Some(12_345),
            ..Default::default()
        };
        assert_ne!(
            fps[0],
            simulator_for("qemu", &s, &budget)
                .unwrap()
                .config_fingerprint()
        );
        // A custom golden-model binary changes the key.
        let mut pfa = spec();
        pfa.spike = Some("pfa-spike".to_owned());
        assert_ne!(
            fps[1],
            simulator_for("spike", &pfa, &opts)
                .unwrap()
                .config_fingerprint()
        );
        // Hardware configuration changes the RTL key.
        let hw = BackendOptions {
            hw: Some(HardwareConfig::boom_tage()),
            ..Default::default()
        };
        assert_ne!(
            fps[2],
            simulator_for("rtl", &s, &hw).unwrap().config_fingerprint()
        );
    }

    #[test]
    fn run_resumed_default_matches_run_for_bare_jobs() {
        let s = spec();
        let backend = simulator_for("qemu", &s, &BackendOptions::default()).unwrap();
        let job = LoadedJob::Bare { bin: Vec::new() };
        // Bare jobs never produce or consume snapshots; both paths agree
        // on the error for a non-MEXE binary.
        assert!(backend.run(&job, LaunchMode::Run).is_err());
        assert!(backend.run_resumed(&job, LaunchMode::Run, None).is_err());
    }

    #[test]
    fn prefixes_cover_every_backend() {
        let prefixes = all_log_prefixes();
        for name in ["qemu", "spike", "firesim"] {
            assert!(prefixes.contains(&name), "{name} missing from {prefixes:?}");
        }
    }
}
