//! Artifact integrity: content checksums for build products.
//!
//! Every artifact the build writes (`boot.bin`, `rootfs.img`, `bin.mexe`)
//! gets a `<name>.fp` sidecar holding the fingerprint of its bytes.
//! [`read_verified`] checks the sidecar on load, so corruption between
//! build and launch (bit-rot, torn writes, stray edits) is reported as an
//! actionable [`MarshalError::Corrupt`] instead of surfacing later as a
//! mysterious boot failure or — worse — a silently wrong simulation.
//!
//! Sidecars are advisory for backwards compatibility: an artifact without
//! one loads unverified (pre-existing work directories keep working).

use std::path::{Path, PathBuf};

use marshal_depgraph::Fingerprint;

use crate::error::MarshalError;

/// The checksum sidecar for an artifact path (`boot.bin` → `boot.bin.fp`).
pub fn sidecar_path(artifact: &Path) -> PathBuf {
    let mut name = artifact.file_name().unwrap_or_default().to_os_string();
    name.push(".fp");
    artifact.with_file_name(name)
}

/// Writes an artifact and its checksum sidecar. Task-action flavour:
/// errors are plain strings, matching the depgraph `Action` signature.
///
/// # Errors
///
/// Describes the failing path on I/O errors.
pub fn write_artifact(path: &Path, bytes: &[u8]) -> Result<(), String> {
    marshal_depgraph::assert_claimed(path);
    std::fs::write(path, bytes).map_err(|e| format!("write {}: {e}", path.display()))?;
    let sidecar = sidecar_path(path);
    marshal_depgraph::assert_claimed(&sidecar);
    std::fs::write(&sidecar, format!("{}\n", Fingerprint::of(bytes)))
        .map_err(|e| format!("write {}: {e}", sidecar.display()))
}

/// Reads an artifact, verifying it against its checksum sidecar when one
/// exists.
///
/// # Errors
///
/// [`MarshalError::Io`] when the artifact is unreadable,
/// [`MarshalError::Corrupt`] when its bytes no longer match the recorded
/// checksum (the message points at `marshal build --force` to rebuild).
pub fn read_verified(path: &Path) -> Result<Vec<u8>, MarshalError> {
    let bytes = std::fs::read(path)
        .map_err(|e| MarshalError::Io(format!("read {}: {e}", path.display())))?;
    let sidecar = sidecar_path(path);
    let Ok(expected) = std::fs::read_to_string(&sidecar) else {
        // No (readable) sidecar: legacy artifact, load as-is.
        return Ok(bytes);
    };
    let expected = expected.trim();
    let actual = Fingerprint::of(&bytes).to_string();
    if expected != actual {
        return Err(MarshalError::Corrupt(format!(
            "{} does not match its recorded checksum (expected {expected}, found {actual}); \
             the artifact was damaged after it was built — rerun `marshal build --force` \
             to rebuild it",
            path.display()
        )));
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("marshal-integrity-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_verifies() {
        let dir = tmpdir("roundtrip");
        let p = dir.join("boot.bin");
        write_artifact(&p, b"payload").unwrap();
        assert!(sidecar_path(&p).exists());
        assert_eq!(read_verified(&p).unwrap(), b"payload");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let dir = tmpdir("corrupt");
        let p = dir.join("rootfs.img");
        write_artifact(&p, b"good bytes").unwrap();
        std::fs::write(&p, b"bad bytes!").unwrap();
        let err = read_verified(&p).unwrap_err();
        let MarshalError::Corrupt(msg) = err else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(msg.contains("rootfs.img"), "{msg}");
        assert!(msg.contains("--force"), "actionable: {msg}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_sidecar_is_tolerated() {
        let dir = tmpdir("legacy");
        let p = dir.join("bin.mexe");
        std::fs::write(&p, b"old artifact").unwrap();
        assert_eq!(read_verified(&p).unwrap(), b"old artifact");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
