//! Board definitions (§III-A-2).
//!
//! "The most basic workloads that users can inherit from... target a
//! specific hardware platform (called a 'board')... To define a board, the
//! framework authors must provide: Linux Source, Firmware, Drivers, and
//! Base Workloads." The concrete Chipyard-like board lives in
//! `marshal-workloads`; this module defines the type.

use std::collections::BTreeMap;

use marshal_firmware::FirmwareBuild;
use marshal_image::FsImage;
use marshal_linux::kernel::KernelSource;

/// A hardware platform definition: everything workload builds need that is
/// platform- rather than workload-specific.
#[derive(Debug, Clone)]
pub struct Board {
    /// Board name (e.g. `chipyard-rocket`).
    pub name: String,
    /// Named kernel source trees workloads may select with `linux.source`.
    pub kernel_sources: BTreeMap<String, KernelSource>,
    /// The kernel tree used when a workload does not choose one.
    pub default_kernel: KernelSource,
    /// Default firmware build.
    pub default_firmware: FirmwareBuild,
    /// Platform device drivers, auto-built into every initramfs:
    /// `(module name, source id)`.
    pub drivers: Vec<(String, String)>,
    /// Base distribution images by distro name (`buildroot`, `fedora`).
    pub distro_images: BTreeMap<String, FsImage>,
}

impl Board {
    /// A minimal board: default kernel/firmware, no drivers, and bare-bones
    /// `buildroot`/`fedora` base images. Useful for tests; real boards come
    /// from `marshal-workloads`.
    pub fn minimal(name: &str) -> Board {
        let mut distro_images = BTreeMap::new();
        let mut br = FsImage::new();
        br.write_file("/etc/os-release", b"NAME=Buildroot\nVERSION_ID=2020.02\n")
            .expect("static path");
        br.write_file("/etc/hostname", b"buildroot")
            .expect("static path");
        br.mkdir_p("/etc/init.d").expect("static path");
        br.mkdir_p("/output").expect("static path");
        br.mkdir_p("/root").expect("static path");
        distro_images.insert("buildroot".to_owned(), br);

        let mut fedora = FsImage::new();
        fedora
            .write_file("/etc/os-release", b"NAME=Fedora\nVERSION_ID=31\n")
            .expect("static path");
        fedora
            .write_file("/etc/hostname", b"fedora")
            .expect("static path");
        fedora.mkdir_p("/etc/systemd/system").expect("static path");
        fedora.mkdir_p("/usr/share/packages").expect("static path");
        fedora.mkdir_p("/output").expect("static path");
        distro_images.insert("fedora".to_owned(), fedora);

        Board {
            name: name.to_owned(),
            kernel_sources: BTreeMap::new(),
            default_kernel: KernelSource::default_source(),
            default_firmware: FirmwareBuild::default(),
            drivers: Vec::new(),
            distro_images,
        }
    }

    /// Looks up a kernel source by workload `linux.source` name, falling
    /// back to the default tree.
    pub fn kernel_source(&self, name: Option<&str>) -> Option<&KernelSource> {
        match name {
            Some(n) => self.kernel_sources.get(n),
            None => Some(&self.default_kernel),
        }
    }

    /// The base image for a distro, if this board provides one.
    pub fn distro_image(&self, distro: &str) -> Option<&FsImage> {
        self.distro_images.get(distro)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_board_has_both_distros() {
        let b = Board::minimal("test");
        assert!(b.distro_image("buildroot").is_some());
        assert!(b.distro_image("fedora").is_some());
        assert!(b.distro_image("arch").is_none());
        // Buildroot uses initd conventions, fedora uses systemd.
        assert!(b.distro_images["buildroot"].exists("/etc/init.d"));
        assert!(b.distro_images["fedora"].exists("/etc/systemd/system"));
    }

    #[test]
    fn kernel_source_lookup() {
        let mut b = Board::minimal("test");
        b.kernel_sources.insert(
            "pfa-linux".to_owned(),
            KernelSource::custom("pfa-linux", "5.7.0-pfa", vec!["pfa".into()]),
        );
        assert_eq!(b.kernel_source(None).unwrap().id(), "linux-default");
        assert_eq!(
            b.kernel_source(Some("pfa-linux")).unwrap().id(),
            "pfa-linux"
        );
        assert!(b.kernel_source(Some("missing")).is_none());
    }
}
