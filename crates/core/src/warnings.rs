//! Structured warnings.
//!
//! Library code never prints to stderr: anything worth telling the user
//! that is not an error is returned as a [`Warning`] on the operation's
//! result ([`crate::build::BuildProducts::warnings`],
//! [`crate::launch::LaunchOutput::warnings`]) and rendered exactly once by
//! the CLI, in the order it was produced. This keeps `run_command`'s
//! `(code, log)` contract complete — embedders see every diagnostic — and
//! keeps parallel builds tidy: no interleaved stderr from worker threads.

use std::fmt;

/// One non-fatal diagnostic produced by a build or launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// What the warning is about (a job name, a task id, or empty for
    /// whole-build warnings such as state-database recovery).
    pub context: String,
    /// The human-readable message.
    pub message: String,
}

impl Warning {
    /// Creates a warning scoped to `context` (pass `""` for whole-build
    /// warnings).
    pub fn new(context: impl Into<String>, message: impl Into<String>) -> Warning {
        Warning {
            context: context.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.context.is_empty() {
            write!(f, "warning: {}", self.message)
        } else {
            write!(f, "warning: {}: {}", self.context, self.message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_context() {
        let w = Warning::new("hello.client", "output `results.txt` missing");
        assert_eq!(
            w.to_string(),
            "warning: hello.client: output `results.txt` missing"
        );
        let w = Warning::new("", "state database corrupt");
        assert_eq!(w.to_string(), "warning: state database corrupt");
    }
}
