//! Structured warnings.
//!
//! Library code never prints to stderr: anything worth telling the user
//! that is not an error is returned as a [`Warning`] on the operation's
//! result ([`crate::build::BuildProducts::warnings`],
//! [`crate::launch::LaunchOutput::warnings`]) and rendered exactly once by
//! the CLI, in the order it was produced. This keeps `run_command`'s
//! `(code, log)` contract complete — embedders see every diagnostic — and
//! keeps parallel builds tidy: no interleaved stderr from worker threads.
//!
//! Every warning carries a stable machine-readable [`Warning::code`] and a
//! [`Severity`]. The code identifies the *kind* of warning independent of
//! its message text, so the CLI can deduplicate a diagnostic that reaches
//! it through two channels (say, a build warning re-surfaced per launch
//! job) and so the run journal can aggregate by kind.

use std::fmt;

/// How serious a warning is. Rendering is identical across severities —
/// the distinction exists for journal aggregation and embedders that want
/// to promote `Degraded` conditions to hard failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Severity {
    /// Informational: something recovered or was healed automatically.
    Info,
    /// A condition worth the user's attention (the default).
    #[default]
    Warn,
    /// A capability was lost for this run (e.g. the remote degraded to
    /// local-only builds) but the operation still succeeded.
    Degraded,
}

impl Severity {
    /// The stable lowercase name used in journals.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Degraded => "degraded",
        }
    }
}

/// One non-fatal diagnostic produced by a build or launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// What the warning is about (a job name, a task id, or empty for
    /// whole-build warnings such as state-database recovery).
    pub context: String,
    /// The human-readable message.
    pub message: String,
    /// How serious the condition is. Does not affect rendering.
    pub severity: Severity,
    /// Stable machine-readable kind, e.g. `state-recovered` or
    /// `remote-degraded`. `"generic"` for warnings without a specific
    /// classification; the CLI's dedupe treats two `generic` warnings as
    /// the same only when their messages also match.
    pub code: &'static str,
}

impl Warning {
    /// Creates a warning scoped to `context` (pass `""` for whole-build
    /// warnings) with the default severity and the `generic` code.
    pub fn new(context: impl Into<String>, message: impl Into<String>) -> Warning {
        Warning {
            context: context.into(),
            message: message.into(),
            severity: Severity::Warn,
            code: "generic",
        }
    }

    /// Creates a warning with a specific stable code.
    pub fn with_code(
        context: impl Into<String>,
        message: impl Into<String>,
        code: &'static str,
    ) -> Warning {
        Warning {
            code,
            ..Warning::new(context, message)
        }
    }

    /// Sets the severity, builder-style.
    pub fn severity(mut self, severity: Severity) -> Warning {
        self.severity = severity;
        self
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.context.is_empty() {
            write!(f, "warning: {}", self.message)
        } else {
            write!(f, "warning: {}: {}", self.context, self.message)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_context() {
        let w = Warning::new("hello.client", "output `results.txt` missing");
        assert_eq!(
            w.to_string(),
            "warning: hello.client: output `results.txt` missing"
        );
        let w = Warning::new("", "state database corrupt");
        assert_eq!(w.to_string(), "warning: state database corrupt");
    }

    #[test]
    fn defaults_and_builders() {
        let w = Warning::new("ctx", "msg");
        assert_eq!(w.code, "generic");
        assert_eq!(w.severity, Severity::Warn);
        let w = Warning::with_code("ctx", "msg", "remote-degraded").severity(Severity::Degraded);
        assert_eq!(w.code, "remote-degraded");
        assert_eq!(w.severity, Severity::Degraded);
        assert_eq!(w.severity.as_str(), "degraded");
    }
}
