//! The tool's unified error type.

use std::fmt;

/// Any error the FireMarshal tool can surface to a user.
#[derive(Debug, Clone, PartialEq)]
pub enum MarshalError {
    /// Workload specification problems.
    Config(marshal_config::ConfigError),
    /// Incremental build engine failures.
    Build(marshal_depgraph::BuildError),
    /// Simulation failures.
    Sim(marshal_sim_functional::SimError),
    /// Kernel build failures.
    Linux(marshal_linux::LinuxError),
    /// Firmware/boot-binary failures.
    Firmware(marshal_firmware::FirmwareError),
    /// Filesystem image failures.
    Image(marshal_image::FsError),
    /// Host script (host-init / post-run-hook) failures.
    Script(String),
    /// An on-disk artifact failed its integrity check (bit-rot, torn
    /// write, or outside modification).
    Corrupt(String),
    /// Host I/O failures.
    Io(String),
    /// Artifact-distribution network failures (`--remote` / `serve`).
    Net(marshal_netstore::NetError),
    /// Anything else (bad CLI usage, missing artifacts, ...).
    Other(String),
}

impl fmt::Display for MarshalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarshalError::Config(e) => write!(f, "config: {e}"),
            MarshalError::Build(e) => write!(f, "build: {e}"),
            MarshalError::Sim(e) => write!(f, "simulation: {e}"),
            MarshalError::Linux(e) => write!(f, "kernel: {e}"),
            MarshalError::Firmware(e) => write!(f, "firmware: {e}"),
            MarshalError::Image(e) => write!(f, "image: {e}"),
            MarshalError::Script(m) => write!(f, "script: {m}"),
            MarshalError::Corrupt(m) => write!(f, "corrupt artifact: {m}"),
            MarshalError::Io(m) => write!(f, "io: {m}"),
            MarshalError::Net(e) => write!(f, "network: {e}"),
            MarshalError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for MarshalError {}

impl From<marshal_config::ConfigError> for MarshalError {
    fn from(e: marshal_config::ConfigError) -> MarshalError {
        MarshalError::Config(e)
    }
}

impl From<marshal_depgraph::BuildError> for MarshalError {
    fn from(e: marshal_depgraph::BuildError) -> MarshalError {
        MarshalError::Build(e)
    }
}

impl From<marshal_sim_functional::SimError> for MarshalError {
    fn from(e: marshal_sim_functional::SimError) -> MarshalError {
        MarshalError::Sim(e)
    }
}

impl From<marshal_linux::LinuxError> for MarshalError {
    fn from(e: marshal_linux::LinuxError) -> MarshalError {
        MarshalError::Linux(e)
    }
}

impl From<marshal_firmware::FirmwareError> for MarshalError {
    fn from(e: marshal_firmware::FirmwareError) -> MarshalError {
        MarshalError::Firmware(e)
    }
}

impl From<marshal_image::FsError> for MarshalError {
    fn from(e: marshal_image::FsError) -> MarshalError {
        MarshalError::Image(e)
    }
}

impl From<std::io::Error> for MarshalError {
    fn from(e: std::io::Error) -> MarshalError {
        MarshalError::Io(e.to_string())
    }
}

impl From<marshal_netstore::NetError> for MarshalError {
    fn from(e: marshal_netstore::NetError) -> MarshalError {
        MarshalError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MarshalError = marshal_config::ConfigError::NotFound("x".into()).into();
        assert!(e.to_string().contains("not found"));
        let e: MarshalError = marshal_image::FsError::NotFound("/y".into()).into();
        assert!(e.to_string().starts_with("image:"));
        let e = MarshalError::Other("plain".into());
        assert_eq!(e.to_string(), "plain");
    }
}
