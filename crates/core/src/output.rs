//! Run-output collection: serial logs, `outputs` extraction, and the
//! `post-run-hook`.
//!
//! "When the simulation completes, FireMarshal copies any output files and
//! the serial port log to an output directory. The post-run-hook script
//! (if any) is run against this output to produce final results" (§III-C).

use std::path::{Path, PathBuf};

use marshal_image::FsImage;
use marshal_script::{HostEnv, Interp, Value};

use crate::error::MarshalError;

/// Name of the serial log file in every job output directory.
pub const SERIAL_LOG: &str = "uartlog";

/// Writes a job's serial log and extracts its `outputs` paths from the
/// final image into `job_dir`.
///
/// # Errors
///
/// I/O failures; missing `outputs` paths are reported as
/// [`MarshalError::Other`].
pub fn collect_outputs(
    job_dir: &Path,
    serial: &str,
    image: Option<&FsImage>,
    outputs: &[String],
) -> Result<(), MarshalError> {
    std::fs::create_dir_all(job_dir)
        .map_err(|e| MarshalError::Io(format!("mkdir {}: {e}", job_dir.display())))?;
    std::fs::write(job_dir.join(SERIAL_LOG), serial)
        .map_err(|e| MarshalError::Io(format!("write uartlog: {e}")))?;
    for guest_path in outputs {
        let Some(image) = image else {
            return Err(MarshalError::Other(format!(
                "workload declares output `{guest_path}` but produced no filesystem image"
            )));
        };
        let base = guest_path
            .rsplit('/')
            .find(|p| !p.is_empty())
            .unwrap_or("output");
        image
            .copy_out(guest_path, &job_dir.join(base))
            .map_err(|e| MarshalError::Other(format!("collect `{guest_path}`: {e}")))?;
    }
    Ok(())
}

/// Best-effort variant of [`collect_outputs`] for watchdog-terminated
/// runs: the serial log is always written, declared `outputs` paths are
/// copied out when present, and the ones the guest never produced are
/// returned instead of failing the whole collection.
///
/// # Errors
///
/// Only host I/O failures — a missing guest output is not an error here.
pub fn salvage_outputs(
    job_dir: &Path,
    serial: &str,
    image: Option<&FsImage>,
    outputs: &[String],
) -> Result<Vec<String>, MarshalError> {
    std::fs::create_dir_all(job_dir)
        .map_err(|e| MarshalError::Io(format!("mkdir {}: {e}", job_dir.display())))?;
    std::fs::write(job_dir.join(SERIAL_LOG), serial)
        .map_err(|e| MarshalError::Io(format!("write uartlog: {e}")))?;
    let mut missed = Vec::new();
    for guest_path in outputs {
        let Some(image) = image else {
            missed.push(guest_path.clone());
            continue;
        };
        let base = guest_path
            .rsplit('/')
            .find(|p| !p.is_empty())
            .unwrap_or("output");
        if image.copy_out(guest_path, &job_dir.join(base)).is_err() {
            missed.push(guest_path.clone());
        }
    }
    Ok(missed)
}

/// Writes a job's `stats` file: the timing summary post-run hooks parse
/// (functional launches report instruction counts; cycle-exact runs report
/// modelled cycles split into user/kernel time).
///
/// # Errors
///
/// I/O failures.
pub fn write_stats(
    job_dir: &Path,
    cycles: u64,
    user_cycles: u64,
    kernel_cycles: u64,
    instructions: u64,
    freq_mhz: u64,
) -> Result<(), MarshalError> {
    std::fs::create_dir_all(job_dir)
        .map_err(|e| MarshalError::Io(format!("mkdir {}: {e}", job_dir.display())))?;
    let text = format!(
        "cycles,user_cycles,kernel_cycles,instructions,freq_mhz\n{cycles},{user_cycles},{kernel_cycles},{instructions},{freq_mhz}\n"
    );
    std::fs::write(job_dir.join("stats"), text)
        .map_err(|e| MarshalError::Io(format!("write stats: {e}")))
}

/// Runs the workload's `post-run-hook` over the run directory.
///
/// The hook executes in a [`HostEnv`] rooted at `run_root` (so it can read
/// every job's outputs and write combined results) with the job directory
/// names as arguments — mirroring how the paper's SPEC workload combined
/// per-job CSVs.
///
/// Returns the hook's log lines.
///
/// # Errors
///
/// Script failures as [`MarshalError::Script`].
pub fn run_post_hook(
    hook_source: &str,
    run_root: &Path,
    job_dirs: &[String],
) -> Result<Vec<String>, MarshalError> {
    let mut env = HostEnv::new(run_root);
    let mut interp = Interp::new();
    let args: Vec<Value> = job_dirs.iter().map(|d| Value::Str(d.clone())).collect();
    interp
        .run(hook_source, &mut env, &args)
        .map_err(|e| MarshalError::Script(format!("post-run-hook: {e}")))?;
    Ok(env.log)
}

/// Resolves a hook script (`post-run-hook` option) to its source text:
/// `script args...` relative to the workload source directory.
///
/// # Errors
///
/// [`MarshalError::Io`] when the script file is missing.
pub fn load_hook_script(
    hook: &str,
    source_dir: Option<&Path>,
) -> Result<(String, Vec<String>), MarshalError> {
    let mut parts = hook.split_whitespace();
    let file = parts.next().unwrap_or("");
    let args: Vec<String> = parts.map(str::to_owned).collect();
    let dir = source_dir.ok_or_else(|| {
        MarshalError::Other(format!("hook `{hook}` needs a workload source directory"))
    })?;
    let path: PathBuf = dir.join(file);
    let source = std::fs::read_to_string(&path)
        .map_err(|e| MarshalError::Io(format!("hook {}: {e}", path.display())))?;
    Ok((source, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("marshal-output-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn collects_serial_and_outputs() {
        let dir = tmpdir("collect");
        let mut img = FsImage::new();
        img.write_file("/output/results.csv", b"name,score\nx,1\n")
            .unwrap();
        collect_outputs(
            &dir.join("job0"),
            "serial text\n",
            Some(&img),
            &["/output".to_owned()],
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("job0").join(SERIAL_LOG)).unwrap(),
            "serial text\n"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("job0/output/results.csv")).unwrap(),
            "name,score\nx,1\n"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_output_path_errors() {
        let dir = tmpdir("missing");
        let img = FsImage::new();
        let err = collect_outputs(&dir, "", Some(&img), &["/output".to_owned()]).unwrap_err();
        assert!(err.to_string().contains("/output"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn salvage_tolerates_missing_outputs() {
        let dir = tmpdir("salvage");
        let mut img = FsImage::new();
        img.write_file("/output/partial.csv", b"x\n").unwrap();
        let missed = salvage_outputs(
            &dir.join("job0"),
            "partial serial\n",
            Some(&img),
            &["/output".to_owned(), "/results/final.csv".to_owned()],
        )
        .unwrap();
        assert_eq!(missed, vec!["/results/final.csv".to_owned()]);
        assert!(dir.join("job0").join(SERIAL_LOG).exists());
        assert!(dir.join("job0/output/partial.csv").exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn post_hook_combines_job_outputs() {
        let dir = tmpdir("hook");
        std::fs::create_dir_all(dir.join("a")).unwrap();
        std::fs::create_dir_all(dir.join("b")).unwrap();
        std::fs::write(dir.join("a/score"), "1").unwrap();
        std::fs::write(dir.join("b/score"), "2").unwrap();
        let hook = r#"
            let rows = ["name,score"]
            for job in args() {
                rows = push(rows, csv_row([job, read_file(job + "/score")]))
            }
            write_file("results.csv", join(rows, "\n") + "\n")
            print("combined " + str(len(args())) + " jobs")
        "#;
        let log = run_post_hook(hook, &dir, &["a".to_owned(), "b".to_owned()]).unwrap();
        assert_eq!(log, vec!["combined 2 jobs"]);
        assert_eq!(
            std::fs::read_to_string(dir.join("results.csv")).unwrap(),
            "name,score\na,1\nb,2\n"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn hook_script_loading() {
        let dir = tmpdir("hookload");
        std::fs::write(dir.join("handle.ms"), "print(\"hi\")\n").unwrap();
        let (src, args) = load_hook_script("handle.ms --csv", Some(&dir)).unwrap();
        assert!(src.contains("print"));
        assert_eq!(args, vec!["--csv"]);
        assert!(load_hook_script("ghost.ms", Some(&dir)).is_err());
        assert!(load_hook_script("handle.ms", None).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
