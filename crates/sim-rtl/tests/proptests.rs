//! Property-based tests on the micro-architectural models: cache
//! invariants, predictor sanity, and remote-memory accounting.
//!
//! Uses the in-repo `marshal-qcheck` harness (offline build environment);
//! every case derives from a fixed seed and replays deterministically.

use marshal_qcheck::cases;
use marshal_sim_rtl::bpred::{
    build_predictor, BimodalPredictor, DirectionPredictor, GsharePredictor, TagePredictor,
};
use marshal_sim_rtl::cache::{Access, Cache};
use marshal_sim_rtl::config::{BpredConfig, CacheConfig};
use marshal_sim_rtl::pfa::{RemoteMemory, RemoteMode, RemoteTimings};

/// Misses never exceed accesses; stats count every access.
#[test]
fn cache_miss_bounds() {
    cases(128, |rng| {
        let addrs: Vec<u64> = (0..rng.range_usize(1, 200))
            .map(|_| rng.range_u64(0, 1_000_000))
            .collect();
        let mut c = Cache::new(CacheConfig::l1_16k());
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats();
        assert!(s.misses <= s.accesses);
        assert_eq!(s.accesses, addrs.len() as u64);
    });
}

/// A working set that fits entirely in the cache reaches steady-state
/// all-hits.
#[test]
fn cache_small_working_set_hits() {
    cases(64, |rng| {
        let lines = rng.range_u64(1, 32);
        let mut c = Cache::new(CacheConfig::l1_16k());
        let addrs: Vec<u64> = (0..lines).map(|i| i * 64).collect();
        for a in &addrs {
            c.access(*a);
        }
        for a in &addrs {
            assert_eq!(c.access(*a), Access::Hit);
        }
    });
}

/// Caches are deterministic: the same trace gives the same stats.
#[test]
fn cache_deterministic() {
    cases(64, |rng| {
        let addrs: Vec<u64> = (0..rng.range_usize(1, 100))
            .map(|_| rng.any_u64())
            .collect();
        let run = || {
            let mut c = Cache::new(CacheConfig::l1_16k());
            for a in &addrs {
                c.access(*a);
            }
            c.stats()
        };
        assert_eq!(run(), run());
    });
}

/// Every predictor predicts deterministically and trains without
/// panicking on arbitrary traces.
#[test]
fn predictors_total_and_deterministic() {
    cases(64, |rng| {
        let trace: Vec<(u64, bool)> = (0..rng.range_usize(1, 300))
            .map(|_| (rng.range_u64(0, 1024), rng.bool()))
            .collect();
        for cfg in [
            BpredConfig::AlwaysTaken,
            BpredConfig::NeverTaken,
            BpredConfig::Bimodal { table_bits: 8 },
            BpredConfig::default_gshare(),
            BpredConfig::default_tage(),
        ] {
            let run = |trace: &[(u64, bool)]| {
                let mut p = build_predictor(&cfg);
                let mut predictions = Vec::new();
                for (pc, taken) in trace {
                    predictions.push(p.predict(pc * 4));
                    p.update(pc * 4, *taken);
                }
                predictions
            };
            assert_eq!(run(&trace), run(&trace), "{cfg:?}");
        }
    });
}

/// On a perfectly biased branch every adaptive predictor converges to
/// at least 90% accuracy.
#[test]
fn adaptive_predictors_learn_bias() {
    cases(64, |rng| {
        let taken = rng.bool();
        let pc = rng.range_u64(0, 4096);
        let mut predictors: Vec<Box<dyn DirectionPredictor>> = vec![
            Box::new(BimodalPredictor::new(10)),
            Box::new(GsharePredictor::new(12, 12)),
            Box::new(TagePredictor::new(4, 10, 4, 64)),
        ];
        for p in &mut predictors {
            let mut correct = 0;
            for _ in 0..200 {
                if p.predict(pc * 4) == taken {
                    correct += 1;
                }
                p.update(pc * 4, taken);
            }
            assert!(correct >= 180, "{} got {correct}/200", p.name());
        }
    });
}

/// Remote memory: fault count equals the number of distinct pages
/// touched, independent of access order or repetition.
#[test]
fn remote_faults_count_unique_pages() {
    cases(64, |rng| {
        let offsets: Vec<u64> = (0..rng.range_usize(1, 300))
            .map(|_| rng.range_u64(0, 64 * 4096))
            .collect();
        let mode = if rng.bool() {
            RemoteMode::Pfa
        } else {
            RemoteMode::SoftwarePaging
        };
        let mut m = RemoteMemory::new(mode, RemoteTimings::default(), 4096);
        let mut unique = std::collections::BTreeSet::new();
        for off in &offsets {
            m.access(*off);
            unique.insert(off / 4096);
        }
        assert_eq!(m.stats().faults, unique.len() as u64);
        assert_eq!(m.resident_pages(), unique.len());
    });
}

/// The PFA's critical path is never longer than software paging for
/// the same trace.
#[test]
fn pfa_never_slower() {
    cases(64, |rng| {
        let offsets: Vec<u64> = (0..rng.range_usize(1, 200))
            .map(|_| rng.range_u64(0, 256 * 4096))
            .collect();
        let t = RemoteTimings::default();
        let mut sw = RemoteMemory::new(RemoteMode::SoftwarePaging, t, 4096);
        let mut hw = RemoteMemory::new(RemoteMode::Pfa, t, 4096);
        let sw_total: u64 = offsets.iter().map(|o| sw.access(*o)).sum();
        let hw_total: u64 = offsets.iter().map(|o| hw.access(*o)).sum();
        assert!(hw_total <= sw_total);
    });
}
