//! The Page Fault Accelerator model and its software-paging baseline.
//!
//! Reproduces the §IV-A case study's device (Fig. 4): remote memory used as
//! a swap device, with the remote-fetch critical path either handled
//! synchronously by the kernel (baseline) or by a hardware module embedded
//! in the MMU (the PFA), which defers kernel bookkeeping to an asynchronous
//! background thread.
//!
//! Every first touch of a remote page incurs a fault whose latency is the
//! sum of the steps below; the per-step totals feed the Fig. 5 latency
//! breakdown.

use std::collections::BTreeSet;

/// Timing parameters for a remote page fault, in cycles.
///
/// Defaults model a 1 GHz SoC with an RDMA NIC on a rack-scale network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTimings {
    /// Trap into the kernel (baseline) or hardware fault detect (PFA).
    pub trap_or_detect_sw: u64,
    /// Hardware fault detect cost under the PFA.
    pub trap_or_detect_hw: u64,
    /// Kernel swap-entry lookup (baseline) / PFA queue+PTE handling (PFA).
    pub translate_sw: u64,
    /// PFA translate cost.
    pub translate_hw: u64,
    /// RDMA fetch of one page over the NIC (same for both paths).
    pub rdma_fetch: u64,
    /// Page-table install: kernel write vs. hardware write.
    pub install_sw: u64,
    /// PFA install cost.
    pub install_hw: u64,
    /// Kernel bookkeeping (LRU, reverse maps). Synchronous on the baseline
    /// critical path; deferred (asynchronous) under the PFA.
    pub bookkeeping: u64,
}

impl Default for RemoteTimings {
    fn default() -> RemoteTimings {
        RemoteTimings {
            trap_or_detect_sw: 600,
            trap_or_detect_hw: 40,
            translate_sw: 1500,
            translate_hw: 80,
            rdma_fetch: 3000,
            install_sw: 400,
            install_hw: 50,
            bookkeeping: 900,
        }
    }
}

/// Which remote-memory path is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteMode {
    /// Kernel software paging (the non-accelerated baseline).
    SoftwarePaging,
    /// The Page Fault Accelerator.
    Pfa,
}

/// Per-step latency totals across all faults (the Fig. 5 data).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PfaStats {
    /// Number of remote page faults taken.
    pub faults: u64,
    /// Total cycles in trap entry / hardware detect.
    pub trap_cycles: u64,
    /// Total cycles in lookup/translate.
    pub translate_cycles: u64,
    /// Total cycles in the RDMA fetch.
    pub fetch_cycles: u64,
    /// Total cycles installing the PTE.
    pub install_cycles: u64,
    /// Total *synchronous* bookkeeping cycles (zero under the PFA).
    pub bookkeeping_cycles: u64,
    /// Bookkeeping cycles deferred off the critical path (PFA only).
    pub deferred_bookkeeping_cycles: u64,
}

impl PfaStats {
    /// Total critical-path cycles across all faults.
    pub fn critical_path_cycles(&self) -> u64 {
        self.trap_cycles
            + self.translate_cycles
            + self.fetch_cycles
            + self.install_cycles
            + self.bookkeeping_cycles
    }

    /// Mean critical-path latency per fault.
    pub fn mean_latency(&self) -> u64 {
        self.critical_path_cycles()
            .checked_div(self.faults)
            .unwrap_or(0)
    }

    /// Per-step mean latencies: `(step name, cycles)` — one bar group of
    /// Fig. 5.
    pub fn step_breakdown(&self) -> Vec<(&'static str, u64)> {
        let f = self.faults.max(1);
        vec![
            ("trap/detect", self.trap_cycles / f),
            ("translate", self.translate_cycles / f),
            ("rdma-fetch", self.fetch_cycles / f),
            ("pte-install", self.install_cycles / f),
            ("bookkeeping", self.bookkeeping_cycles / f),
        ]
    }
}

/// The remote-memory device: tracks page residency and charges fault
/// latencies.
#[derive(Debug, Clone)]
pub struct RemoteMemory {
    mode: RemoteMode,
    timings: RemoteTimings,
    page_size: u64,
    resident: BTreeSet<u64>,
    stats: PfaStats,
    /// Free-page queue occupancy (PFA, Fig. 4 step 1): the kernel
    /// replenishes asynchronously; an empty queue forces a synchronous
    /// kernel interaction.
    free_queue: u32,
    free_queue_capacity: u32,
}

impl RemoteMemory {
    /// Creates the device.
    pub fn new(mode: RemoteMode, timings: RemoteTimings, page_size: u64) -> RemoteMemory {
        RemoteMemory {
            mode,
            timings,
            page_size,
            resident: BTreeSet::new(),
            stats: PfaStats::default(),
            free_queue: 64,
            free_queue_capacity: 64,
        }
    }

    /// The modelled mode.
    pub fn mode(&self) -> RemoteMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> PfaStats {
        self.stats
    }

    /// Accesses `addr` within the remote window; returns the cycles the
    /// access stalls beyond a normal memory access (0 when resident).
    pub fn access(&mut self, addr: u64) -> u64 {
        let page = addr / self.page_size;
        if self.resident.contains(&page) {
            return 0;
        }
        self.resident.insert(page);
        self.stats.faults += 1;
        let t = &self.timings;
        match self.mode {
            RemoteMode::SoftwarePaging => {
                self.stats.trap_cycles += t.trap_or_detect_sw;
                self.stats.translate_cycles += t.translate_sw;
                self.stats.fetch_cycles += t.rdma_fetch;
                self.stats.install_cycles += t.install_sw;
                self.stats.bookkeeping_cycles += t.bookkeeping;
                t.trap_or_detect_sw + t.translate_sw + t.rdma_fetch + t.install_sw + t.bookkeeping
            }
            RemoteMode::Pfa => {
                let mut extra = 0;
                // Fig. 4 step 1: the kernel keeps the free queue topped up
                // asynchronously. Model the rare empty-queue stall.
                if self.free_queue == 0 {
                    extra += t.trap_or_detect_sw + t.bookkeeping;
                    self.free_queue = self.free_queue_capacity;
                } else {
                    self.free_queue -= 1;
                    if self.free_queue < self.free_queue_capacity / 4 {
                        // Background refill, off the critical path.
                        self.free_queue = self.free_queue_capacity;
                        self.stats.deferred_bookkeeping_cycles += t.bookkeeping;
                    }
                }
                self.stats.trap_cycles += t.trap_or_detect_hw;
                self.stats.translate_cycles += t.translate_hw;
                self.stats.fetch_cycles += t.rdma_fetch;
                self.stats.install_cycles += t.install_hw;
                self.stats.deferred_bookkeeping_cycles += t.bookkeeping;
                t.trap_or_detect_hw + t.translate_hw + t.rdma_fetch + t.install_hw + extra
            }
        }
    }

    /// Evicts every page (e.g. between benchmark iterations).
    pub fn evict_all(&mut self) {
        self.resident.clear();
    }

    /// Number of currently resident remote pages.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u64 = 4096;

    #[test]
    fn first_touch_faults_second_hits() {
        let mut m = RemoteMemory::new(RemoteMode::Pfa, RemoteTimings::default(), PAGE);
        assert!(m.access(0x0) > 0);
        assert_eq!(m.access(0x8), 0); // same page
        assert!(m.access(PAGE) > 0); // next page
        assert_eq!(m.stats().faults, 2);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn pfa_critical_path_much_shorter_than_software() {
        let t = RemoteTimings::default();
        let mut sw = RemoteMemory::new(RemoteMode::SoftwarePaging, t, PAGE);
        let mut hw = RemoteMemory::new(RemoteMode::Pfa, t, PAGE);
        let mut sw_total = 0;
        let mut hw_total = 0;
        for i in 0..100u64 {
            sw_total += sw.access(i * PAGE);
            hw_total += hw.access(i * PAGE);
        }
        // The paper's Fig. 5 shape: kernel trap + lookup + bookkeeping move
        // off the PFA critical path; only the RDMA fetch dominates.
        assert!(
            hw_total * 15 < sw_total * 10,
            "pfa {hw_total} vs sw {sw_total}: expected >1.5x win"
        );
        // Bookkeeping is synchronous on the baseline, deferred on the PFA.
        assert!(sw.stats().bookkeeping_cycles > 0);
        assert_eq!(hw.stats().bookkeeping_cycles, 0);
        assert!(hw.stats().deferred_bookkeeping_cycles > 0);
    }

    #[test]
    fn step_breakdown_shape() {
        let t = RemoteTimings::default();
        let mut sw = RemoteMemory::new(RemoteMode::SoftwarePaging, t, PAGE);
        let mut hw = RemoteMemory::new(RemoteMode::Pfa, t, PAGE);
        for i in 0..50u64 {
            sw.access(i * PAGE);
            hw.access(i * PAGE);
        }
        let sw_steps = sw.stats().step_breakdown();
        let hw_steps = hw.stats().step_breakdown();
        // Same step names, same fetch cost, cheaper everything else.
        for ((name_s, cyc_s), (name_h, cyc_h)) in sw_steps.iter().zip(&hw_steps) {
            assert_eq!(name_s, name_h);
            if *name_s == "rdma-fetch" {
                assert_eq!(cyc_s, cyc_h, "network cost is identical on both paths");
            } else {
                assert!(cyc_h < cyc_s, "{name_s}: hw {cyc_h} must beat sw {cyc_s}");
            }
        }
    }

    #[test]
    fn eviction_forces_refault() {
        let mut m = RemoteMemory::new(RemoteMode::Pfa, RemoteTimings::default(), PAGE);
        m.access(0);
        m.evict_all();
        assert!(m.access(0) > 0);
        assert_eq!(m.stats().faults, 2);
    }

    #[test]
    fn free_queue_depletion_costs_kernel_interaction() {
        let t = RemoteTimings::default();
        let mut m = RemoteMemory::new(RemoteMode::Pfa, t, PAGE);
        // The background refill keeps the queue from ever emptying in this
        // model, so faults stay on the fast path.
        let mut max_latency = 0;
        for i in 0..1000u64 {
            max_latency = max_latency.max(m.access(i * PAGE));
        }
        let fast = t.trap_or_detect_hw + t.translate_hw + t.rdma_fetch + t.install_hw;
        assert_eq!(max_latency, fast);
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut m = RemoteMemory::new(RemoteMode::Pfa, RemoteTimings::default(), PAGE);
            (0..500u64).map(|i| m.access(i % 37 * PAGE)).sum::<u64>()
        };
        assert_eq!(run(), run());
    }
}
