//! Branch predictors: Gshare, TAGE, bimodal, static — plus a return
//! address stack for `call`/`ret` pairs.
//!
//! The SPEC2017 case study (§IV-B, Fig. 6) compares "an older branch
//! predictor from BOOM v2 (based on Gshare)" against "the more recent
//! TAGE-based predictor" on identical workloads; these are those two
//! predictors.

use crate::config::BpredConfig;

/// A direction predictor for conditional branches.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the resolved outcome.
    fn update(&mut self, pc: u64, taken: bool);

    /// The predictor's display name.
    fn name(&self) -> &'static str;
}

/// Saturating 2-bit counter helpers.
fn counter_taken(c: u8) -> bool {
    c >= 2
}

fn counter_update(c: u8, taken: bool) -> u8 {
    if taken {
        (c + 1).min(3)
    } else {
        c.saturating_sub(1)
    }
}

/// Always-taken / never-taken.
#[derive(Debug, Clone)]
pub struct StaticPredictor {
    taken: bool,
}

impl StaticPredictor {
    /// Creates a static predictor.
    pub fn new(taken: bool) -> StaticPredictor {
        StaticPredictor { taken }
    }
}

impl DirectionPredictor for StaticPredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        self.taken
    }
    fn update(&mut self, _pc: u64, _taken: bool) {}
    fn name(&self) -> &'static str {
        if self.taken {
            "always-taken"
        } else {
            "never-taken"
        }
    }
}

/// PC-indexed table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a bimodal predictor with `2^table_bits` counters.
    pub fn new(table_bits: u32) -> BimodalPredictor {
        let size = 1usize << table_bits;
        BimodalPredictor {
            counters: vec![1; size], // weakly not-taken
            mask: (size - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }
}

impl DirectionPredictor for BimodalPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        counter_taken(self.counters[self.index(pc)])
    }
    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = counter_update(self.counters[i], taken);
    }
    fn name(&self) -> &'static str {
        "bimodal"
    }
}

/// Gshare: global history XOR PC indexes a table of 2-bit counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    counters: Vec<u8>,
    history: u64,
    history_mask: u64,
    table_mask: u64,
}

impl GsharePredictor {
    /// Creates a Gshare predictor.
    pub fn new(history_bits: u32, table_bits: u32) -> GsharePredictor {
        let size = 1usize << table_bits;
        GsharePredictor {
            counters: vec![1; size],
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
            table_mask: (size - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.table_mask) as usize
    }
}

impl DirectionPredictor for GsharePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        counter_taken(self.counters[self.index(pc)])
    }
    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = counter_update(self.counters[i], taken);
        self.history = ((self.history << 1) | taken as u64) & self.history_mask;
    }
    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    counter: i8, // -4..=3; >= 0 means taken
    useful: u8,
}

/// A TAGE predictor: a bimodal base plus tagged tables indexed with
/// geometrically growing history lengths. The longest matching table
/// provides the prediction; allocation on mispredict steals weak entries.
#[derive(Debug, Clone)]
pub struct TagePredictor {
    base: BimodalPredictor,
    tables: Vec<Vec<TageEntry>>,
    history_lengths: Vec<u32>,
    table_mask: u64,
    history: u128,
    /// Provider table of the last prediction (None = base).
    last_provider: Option<usize>,
    last_index: usize,
    alloc_tick: u64,
}

impl TagePredictor {
    /// Creates a TAGE predictor.
    pub fn new(tables: u32, table_bits: u32, min_history: u32, max_history: u32) -> TagePredictor {
        let size = 1usize << table_bits;
        let tables = tables.max(1);
        // Geometric history series from min to max.
        let mut history_lengths = Vec::with_capacity(tables as usize);
        for i in 0..tables {
            let f = if tables == 1 {
                0.0
            } else {
                i as f64 / (tables - 1) as f64
            };
            let len = (min_history as f64 * (max_history as f64 / min_history as f64).powf(f))
                .round() as u32;
            history_lengths.push(len.clamp(1, 127));
        }
        TagePredictor {
            base: BimodalPredictor::new(table_bits),
            tables: vec![vec![TageEntry::default(); size]; tables as usize],
            history_lengths,
            table_mask: (size - 1) as u64,
            history: 0,
            last_provider: None,
            last_index: 0,
            alloc_tick: 0,
        }
    }

    /// Folds `bits` of global history by XORing `chunk`-bit slices.
    ///
    /// Index and tag use *different* chunk widths (like the circular shift
    /// registers of real TAGE), so a history pattern that aliases in the
    /// index fold still disambiguates through the tag.
    fn folded_history(&self, bits: u32, chunk: u32) -> u64 {
        let mut h = if bits >= 128 {
            self.history
        } else {
            self.history & ((1u128 << bits) - 1)
        };
        let mask = (1u128 << chunk) - 1;
        let mut folded = 0u64;
        while h != 0 {
            folded ^= (h & mask) as u64;
            h >>= chunk;
        }
        folded
    }

    fn index_and_tag(&self, pc: u64, table: usize) -> (usize, u16) {
        let len = self.history_lengths[table];
        let idx_hist = self.folded_history(len, 10);
        let tag_hist = self.folded_history(len, 11);
        let index = (((pc >> 2) ^ idx_hist ^ (table as u64).wrapping_mul(0x9e37)) & self.table_mask)
            as usize;
        let tag = ((((pc >> 2) >> 4) ^ tag_hist ^ (table as u64) << 7) & 0x3ff) as u16 | 1;
        (index, tag)
    }

    fn find_provider(&self, pc: u64) -> Option<(usize, usize)> {
        // Longest history table with a tag match wins.
        for t in (0..self.tables.len()).rev() {
            let (index, tag) = self.index_and_tag(pc, t);
            if self.tables[t][index].tag == tag {
                return Some((t, index));
            }
        }
        None
    }
}

impl DirectionPredictor for TagePredictor {
    fn predict(&mut self, pc: u64) -> bool {
        match self.find_provider(pc) {
            Some((t, i)) => {
                self.last_provider = Some(t);
                self.last_index = i;
                self.tables[t][i].counter >= 0
            }
            None => {
                self.last_provider = None;
                self.base.predict(pc)
            }
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        // Re-derive the prediction state (robust even if predict() wasn't
        // the immediately preceding call).
        let provider = self.find_provider(pc);
        let predicted = match provider {
            Some((t, i)) => self.tables[t][i].counter >= 0,
            None => self.base.predict(pc),
        };
        match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                e.counter = if taken {
                    (e.counter + 1).min(3)
                } else {
                    (e.counter - 1).max(-4)
                };
                if predicted == taken {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
            None => self.base.update(pc, taken),
        }
        // Allocate a new entry in a longer-history table on a mispredict.
        if predicted != taken {
            let start = provider.map(|(t, _)| t + 1).unwrap_or(0);
            self.alloc_tick = self.alloc_tick.wrapping_add(1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let (index, tag) = self.index_and_tag(pc, t);
                let e = &mut self.tables[t][index];
                if e.useful == 0 {
                    *e = TageEntry {
                        tag,
                        counter: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations can succeed.
                for t in start..self.tables.len() {
                    let (index, _) = self.index_and_tag(pc, t);
                    let e = &mut self.tables[t][index];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Always update the base predictor's history-free counters too when
        // it provided, handled above; advance global history.
        self.history = (self.history << 1) | taken as u128;
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

/// Builds the predictor described by a [`BpredConfig`].
pub fn build_predictor(config: &BpredConfig) -> Box<dyn DirectionPredictor + Send> {
    match config {
        BpredConfig::AlwaysTaken => Box::new(StaticPredictor::new(true)),
        BpredConfig::NeverTaken => Box::new(StaticPredictor::new(false)),
        BpredConfig::Bimodal { table_bits } => Box::new(BimodalPredictor::new(*table_bits)),
        BpredConfig::Gshare {
            history_bits,
            table_bits,
        } => Box::new(GsharePredictor::new(*history_bits, *table_bits)),
        BpredConfig::Tage {
            tables,
            table_bits,
            min_history,
            max_history,
        } => Box::new(TagePredictor::new(
            *tables,
            *table_bits,
            *min_history,
            *max_history,
        )),
    }
}

/// A return-address stack for predicting `ret` targets.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<u64>,
    capacity: usize,
}

impl Default for ReturnAddressStack {
    fn default() -> ReturnAddressStack {
        ReturnAddressStack::new(16)
    }
}

impl ReturnAddressStack {
    /// Creates a RAS with the given depth.
    pub fn new(capacity: usize) -> ReturnAddressStack {
        ReturnAddressStack {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (on `call`).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops a predicted return target (on `ret`).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Measures accuracy of a predictor on a synthetic branch trace.
    fn accuracy(p: &mut dyn DirectionPredictor, trace: &[(u64, bool)]) -> f64 {
        let mut correct = 0usize;
        for (pc, taken) in trace {
            if p.predict(*pc) == *taken {
                correct += 1;
            }
            p.update(*pc, *taken);
        }
        correct as f64 / trace.len() as f64
    }

    fn loop_trace(iters: usize, body: usize) -> Vec<(u64, bool)> {
        // A loop branch taken (body-1) times then not-taken, repeated.
        let mut t = Vec::new();
        for _ in 0..iters {
            for i in 0..body {
                t.push((0x1000, i != body - 1));
            }
        }
        t
    }

    /// A pattern whose period exceeds bimodal's ability but fits in global
    /// history: alternating T,T,N.
    fn pattern_trace(n: usize) -> Vec<(u64, bool)> {
        (0..n).map(|i| (0x2000u64, i % 3 != 2)).collect()
    }

    #[test]
    fn static_predictors() {
        let mut t = StaticPredictor::new(true);
        assert!(t.predict(0));
        t.update(0, false);
        assert!(t.predict(0));
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut p = BimodalPredictor::new(10);
        let trace: Vec<(u64, bool)> = (0..100).map(|_| (0x40u64, true)).collect();
        assert!(accuracy(&mut p, &trace) > 0.95);
    }

    #[test]
    fn gshare_learns_patterns_bimodal_cannot() {
        let trace = pattern_trace(3000);
        let mut bimodal = BimodalPredictor::new(12);
        let mut gshare = GsharePredictor::new(12, 12);
        let acc_b = accuracy(&mut bimodal, &trace);
        let acc_g = accuracy(&mut gshare, &trace);
        assert!(
            acc_g > acc_b + 0.15,
            "gshare {acc_g:.3} should beat bimodal {acc_b:.3}"
        );
        assert!(
            acc_g > 0.95,
            "gshare should nail a period-3 pattern: {acc_g:.3}"
        );
    }

    #[test]
    fn tage_beats_gshare_on_long_history() {
        // A loop with a trip count of 24: predicting the exit needs 24 bits
        // of history. Gshare's 12-bit history saturates (iterations 12..23
        // all look identical), so it mispredicts every exit; TAGE's long
        // tables learn the full trip count.
        let trace = loop_trace(2_000, 24);
        let mut gshare = GsharePredictor::new(12, 12);
        let mut tage = TagePredictor::new(4, 10, 4, 64);
        let acc_g = accuracy(&mut gshare, &trace);
        let acc_t = accuracy(&mut tage, &trace);
        assert!(
            acc_t > acc_g,
            "tage {acc_t:.3} should beat gshare {acc_g:.3} on a 24-trip loop"
        );
        assert!(acc_t > 0.97, "tage should learn the trip count: {acc_t:.3}");
    }

    #[test]
    fn tage_handles_loops() {
        let trace = loop_trace(200, 8);
        let mut tage = TagePredictor::new(4, 10, 4, 64);
        let acc = accuracy(&mut tage, &trace);
        assert!(acc > 0.9, "tage loop accuracy {acc:.3}");
    }

    #[test]
    fn predictors_deterministic() {
        let trace = pattern_trace(500);
        let run = || {
            let mut p = build_predictor(&BpredConfig::default_tage());
            let mut outcomes = Vec::new();
            for (pc, taken) in &trace {
                outcomes.push(p.predict(*pc));
                p.update(*pc, *taken);
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ras_predicts_returns() {
        let mut ras = ReturnAddressStack::new(4);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_bounded_depth() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // evicts 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn build_matches_config() {
        for cfg in [
            BpredConfig::AlwaysTaken,
            BpredConfig::NeverTaken,
            BpredConfig::Bimodal { table_bits: 8 },
            BpredConfig::default_gshare(),
            BpredConfig::default_tage(),
        ] {
            let p = build_predictor(&cfg);
            assert_eq!(p.name(), cfg.name());
        }
    }
}
