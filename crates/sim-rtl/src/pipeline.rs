//! The per-instruction timing model.
//!
//! Consumes the retired-instruction stream from the shared functional
//! interpreter and charges cycles for front-end (I-cache, branch
//! prediction), execute (mul/div latency), and memory (D-cache, DRAM,
//! remote-memory faults). The same instruction stream the functional
//! simulators execute is what gets timed — timing never changes
//! architectural behaviour.

use marshal_isa::inst::{Inst, Reg};
use marshal_isa::interp::{RetireKind, Retired};

use crate::bpred::{build_predictor, DirectionPredictor, ReturnAddressStack};
use crate::cache::{Access, Cache, CacheStats};
use crate::config::{HardwareConfig, RemoteMemConfig};
use crate::pfa::{PfaStats, RemoteMemory, RemoteMode};

/// Performance counters for one simulated node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Total cycles (user + kernel).
    pub cycles: u64,
    /// Instructions retired by user programs.
    pub instructions: u64,
    /// Cycles attributed to user execution.
    pub user_cycles: u64,
    /// Cycles attributed to the (modelled) kernel: syscalls and software
    /// paging.
    pub kernel_cycles: u64,
    /// Conditional branches retired.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Indirect jumps retired.
    pub indirect_jumps: u64,
    /// Indirect jumps whose target was predicted by the RAS.
    pub ras_hits: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Multiply operations.
    pub mul_ops: u64,
    /// Divide operations.
    pub div_ops: u64,
    /// Syscalls serviced.
    pub syscalls: u64,
    /// Cycles stalled on remote-memory faults.
    pub remote_stall_cycles: u64,
}

impl PerfCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Conditional branch prediction accuracy in [0, 1].
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            1.0
        } else {
            1.0 - self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The timing pipeline attached to one hart.
pub struct Pipeline {
    core: crate::config::CoreConfig,
    dram_latency: u64,
    predictor: Box<dyn DirectionPredictor + Send>,
    ras: ReturnAddressStack,
    icache: Cache,
    dcache: Cache,
    l2: Option<Cache>,
    remote: Option<RemoteMemory>,
    counters: PerfCounters,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("bpred", &self.predictor.name())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Pipeline {
    /// Builds the pipeline described by a hardware configuration.
    pub fn new(hw: &HardwareConfig) -> Pipeline {
        let remote = match &hw.remote {
            RemoteMemConfig::None => None,
            RemoteMemConfig::SoftwarePaging(t) => {
                Some(RemoteMemory::new(RemoteMode::SoftwarePaging, *t, 4096))
            }
            RemoteMemConfig::Pfa(t) => Some(RemoteMemory::new(RemoteMode::Pfa, *t, 4096)),
        };
        Pipeline {
            core: hw.core,
            dram_latency: hw.dram_latency,
            predictor: build_predictor(&hw.bpred),
            ras: ReturnAddressStack::default(),
            icache: Cache::new(hw.icache),
            dcache: Cache::new(hw.dcache),
            l2: hw.l2.map(Cache::new),
            remote,
            counters: PerfCounters::default(),
        }
    }

    /// The counters so far.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// The branch predictor's name.
    pub fn bpred_name(&self) -> &'static str {
        self.predictor.name()
    }

    /// I-cache statistics.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// D-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Remote-memory statistics (when remote memory is configured).
    pub fn pfa_stats(&self) -> Option<PfaStats> {
        self.remote.as_ref().map(RemoteMemory::stats)
    }

    /// Whether an address belongs to the remote window *and* remote memory
    /// is modelled.
    pub fn models_remote(&self) -> bool {
        self.remote.is_some()
    }

    /// Charges one retired instruction; `is_remote` marks memory accesses
    /// that fall in the guest's `mmap_remote` window. Returns the cycles
    /// consumed.
    pub fn retire(&mut self, r: &Retired, is_remote: bool) -> u64 {
        let mut cycles = 1u64;
        let mut kernel_extra = 0u64;
        self.counters.instructions += 1;

        // Front end: instruction fetch (L1I -> L2 -> DRAM).
        if self.icache.access(r.pc) == Access::Miss {
            cycles += self.miss_beyond_l1(r.pc);
        }

        match r.kind {
            RetireKind::Alu | RetireKind::Csr | RetireKind::System => {}
            RetireKind::Mul => {
                self.counters.mul_ops += 1;
                cycles += self.core.mul_latency - 1;
            }
            RetireKind::Div => {
                self.counters.div_ops += 1;
                cycles += self.core.div_latency - 1;
            }
            RetireKind::Load { addr } | RetireKind::Store { addr } => {
                let is_load = matches!(r.kind, RetireKind::Load { .. });
                if is_load {
                    self.counters.loads += 1;
                } else {
                    self.counters.stores += 1;
                }
                if is_remote {
                    if let Some(remote) = &mut self.remote {
                        let stall = remote.access(addr);
                        self.counters.remote_stall_cycles += stall;
                        // Software paging burns the stall in the kernel;
                        // the PFA stalls the hart in user mode.
                        if remote.mode() == RemoteMode::SoftwarePaging {
                            kernel_extra += stall;
                        } else {
                            cycles += stall;
                        }
                    }
                }
                if self.dcache.access(addr) == Access::Miss {
                    cycles += self.miss_beyond_l1(addr);
                } else {
                    cycles += self.dcache.config().hit_latency - 1;
                }
            }
            RetireKind::Branch { taken, .. } => {
                self.counters.branches += 1;
                let predicted = self.predictor.predict(r.pc);
                self.predictor.update(r.pc, taken);
                if predicted != taken {
                    self.counters.mispredicts += 1;
                    cycles += self.core.mispredict_penalty;
                }
            }
            RetireKind::Jump { .. } => {
                // Direct jumps resolve in the front end (BTB assumed);
                // calls push the RAS.
                if let Inst::Jal { rd, .. } = r.inst {
                    if rd == Reg::RA {
                        self.ras.push(r.pc + 4);
                    }
                }
            }
            RetireKind::JumpReg { target } => {
                self.counters.indirect_jumps += 1;
                let mut predicted = false;
                if let Inst::Jalr { rd, rs1, .. } = r.inst {
                    if rd == Reg::ZERO && rs1 == Reg::RA {
                        // `ret`: consult the RAS.
                        if self.ras.pop() == Some(target) {
                            predicted = true;
                            self.counters.ras_hits += 1;
                        }
                    } else if rd == Reg::RA {
                        // Indirect call: push the return address.
                        self.ras.push(r.pc + 4);
                    }
                }
                if !predicted {
                    cycles += self.core.jalr_penalty;
                }
            }
        }

        self.counters.user_cycles += cycles;
        self.counters.kernel_cycles += kernel_extra;
        self.counters.cycles += cycles + kernel_extra;
        cycles + kernel_extra
    }

    /// Cost of an L1 miss: the L2 (when present) absorbs it at its hit
    /// latency, otherwise DRAM.
    fn miss_beyond_l1(&mut self, addr: u64) -> u64 {
        match &mut self.l2 {
            Some(l2) => match l2.access(addr) {
                Access::Hit => l2.config().hit_latency,
                Access::Miss => l2.config().hit_latency + self.dram_latency,
            },
            None => self.dram_latency,
        }
    }

    /// L2 statistics (when configured).
    pub fn l2_stats(&self) -> Option<crate::cache::CacheStats> {
        self.l2.as_ref().map(Cache::stats)
    }

    /// Charges the modelled kernel cost of a syscall.
    pub fn syscall(&mut self, sys: u64) -> u64 {
        use marshal_isa::abi::sys as s;
        self.counters.syscalls += 1;
        let extra = match sys {
            s::WRITE => 300,
            s::READ => 250,
            s::OPEN => 1000,
            s::CLOSE => 200,
            s::EXIT => 100,
            s::ARGC | s::ARGV => 50,
            s::MMAP_REMOTE => 1500,
            s::TRACE => 100,
            _ => 400,
        };
        let cost = self.core.syscall_base_cost + extra;
        self.counters.kernel_cycles += cost;
        self.counters.cycles += cost;
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BpredConfig;
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_isa::interp::{Cpu, StepOutcome};
    use marshal_isa::mem::FlatMemory;

    /// Runs a program through both the functional core and the pipeline,
    /// returning the cycle count.
    fn time_program(src: &str, hw: &HardwareConfig) -> (u64, PerfCounters) {
        let exe = assemble(src, abi::USER_BASE).unwrap();
        let mut mem = FlatMemory::new(1 << 21);
        exe.load_into(&mut mem).unwrap();
        let mut cpu = Cpu::new(exe.entry());
        cpu.write_reg(Reg::SP, 0x10_0000);
        let mut pipe = Pipeline::new(hw);
        loop {
            match cpu.step(&mut mem).unwrap() {
                StepOutcome::Retired(r) => {
                    pipe.retire(&r, false);
                }
                StepOutcome::Ecall => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        (pipe.counters().cycles, *pipe.counters())
    }

    const LOOP: &str = r#"
_start:
        li      t0, 1000
loop:   addi    t0, t0, -1
        bnez    t0, loop
        ecall
"#;

    #[test]
    fn timing_is_deterministic() {
        let hw = HardwareConfig::boom_tage();
        assert_eq!(time_program(LOOP, &hw).0, time_program(LOOP, &hw).0);
    }

    #[test]
    fn better_predictor_fewer_cycles() {
        // The loop branch is taken 999 times then falls through: an
        // always-taken predictor mispredicts once; never-taken mispredicts
        // 999 times.
        let base = HardwareConfig::rocket();
        let (cyc_taken, c_taken) =
            time_program(LOOP, &base.clone().with_bpred(BpredConfig::AlwaysTaken));
        let (cyc_never, c_never) =
            time_program(LOOP, &base.clone().with_bpred(BpredConfig::NeverTaken));
        assert_eq!(c_taken.mispredicts, 1);
        assert_eq!(c_never.mispredicts, 999);
        assert!(cyc_taken < cyc_never);
        assert_eq!(
            cyc_never - cyc_taken,
            998 * base.core.mispredict_penalty,
            "cycle gap must be exactly the mispredict penalty difference"
        );
    }

    #[test]
    fn ipc_below_one_with_stalls() {
        let hw = HardwareConfig::rocket().with_bpred(BpredConfig::NeverTaken);
        let (_, c) = time_program(LOOP, &hw);
        assert!(c.ipc() < 1.0);
        assert!(c.branch_accuracy() < 0.01);
    }

    #[test]
    fn dcache_miss_costs_dram_latency() {
        // Two loads to the same line: one miss, one hit.
        let src = r#"
_start:
        li      t0, 0x4000
        ld      a0, 0(t0)
        ld      a1, 8(t0)
        ecall
"#;
        let hw = HardwareConfig::rocket();
        let (_, c) = time_program(src, &hw);
        assert_eq!(c.loads, 2);
        let pipe_stats = c;
        let _ = pipe_stats;
    }

    #[test]
    fn ras_predicts_call_ret() {
        let src = r#"
_start:
        li      t0, 50
loop:
        call    leaf
        addi    t0, t0, -1
        bnez    t0, loop
        ecall
leaf:
        ret
"#;
        let hw = HardwareConfig::rocket();
        let (_, c) = time_program(src, &hw);
        assert_eq!(c.indirect_jumps, 50);
        assert_eq!(c.ras_hits, 50, "every ret should hit the RAS");
    }

    #[test]
    fn mul_div_latencies_charged() {
        let alu = "_start:\n add a0, a1, a2\n ecall\n";
        let mul = "_start:\n mul a0, a1, a2\n ecall\n";
        let div = "_start:\n div a0, a1, a2\n ecall\n";
        let hw = HardwareConfig::rocket();
        let (c_alu, _) = time_program(alu, &hw);
        let (c_mul, cm) = time_program(mul, &hw);
        let (c_div, cd) = time_program(div, &hw);
        assert_eq!(c_mul - c_alu, hw.core.mul_latency - 1);
        assert_eq!(c_div - c_alu, hw.core.div_latency - 1);
        assert_eq!(cm.mul_ops, 1);
        assert_eq!(cd.div_ops, 1);
    }

    #[test]
    fn syscall_cost_is_kernel_time() {
        let mut pipe = Pipeline::new(&HardwareConfig::rocket());
        let cost = pipe.syscall(marshal_isa::abi::sys::WRITE);
        assert!(cost > 0);
        assert_eq!(pipe.counters().kernel_cycles, cost);
        assert_eq!(pipe.counters().user_cycles, 0);
        assert_eq!(pipe.counters().syscalls, 1);
    }

    #[test]
    fn remote_stall_accounting_differs_by_mode() {
        use crate::pfa::RemoteTimings;
        let t = RemoteTimings::default();
        let retired = Retired {
            pc: 0x1000,
            next_pc: 0x1004,
            inst: Inst::Load {
                width: marshal_isa::inst::MemWidth::D,
                rd: Reg::A0,
                rs1: Reg::T0,
                offset: 0,
            },
            kind: RetireKind::Load { addr: 0x1000_0000 },
        };
        let mut sw = Pipeline::new(
            &HardwareConfig::rocket().with_remote(RemoteMemConfig::SoftwarePaging(t)),
        );
        sw.retire(&retired, true);
        assert!(
            sw.counters().kernel_cycles > 0,
            "sw paging stalls in kernel"
        );

        let mut hw = Pipeline::new(&HardwareConfig::rocket().with_remote(RemoteMemConfig::Pfa(t)));
        hw.retire(&retired, true);
        assert_eq!(hw.counters().kernel_cycles, 0, "pfa stalls in hardware");
        assert!(hw.counters().remote_stall_cycles > 0);
        assert!(
            hw.counters().remote_stall_cycles < sw.counters().remote_stall_cycles,
            "pfa critical path shorter"
        );
    }
}
