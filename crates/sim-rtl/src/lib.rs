//! # marshal-sim-rtl
//!
//! The cycle-exact simulator — the reproduction's FireSim (§II-A-3).
//!
//! Executes the *exact same* boot binaries and disk images as the
//! functional simulators (sharing `marshal-sim-functional`'s boot model and
//! user-program runner), but attaches a micro-architectural timing model to
//! every retired instruction:
//!
//! - [`config`]: hardware configurations (Rocket-like in-order and
//!   BOOM-like cores, with the Gshare and TAGE predictor variants the
//!   paper's SPEC2017 case study compares).
//! - [`bpred`]: branch predictors — Gshare, TAGE, bimodal, static — plus a
//!   return-address stack.
//! - [`cache`]: set-associative I/D caches with LRU replacement.
//! - [`pipeline`]: the per-instruction timing model and performance
//!   counters.
//! - [`pfa`]: the Page Fault Accelerator model and its software-paging
//!   baseline (the §IV-A case study).
//! - [`nic`]: the RDMA NIC + network model the PFA fetches pages through.
//! - [`firesim`]: the top-level driver, including multi-node cluster runs
//!   for `jobs` workloads.
//!
//! Determinism is absolute: identical artifacts and configuration produce
//! identical cycle counts, which is the property the paper's education case
//! study (§IV-C) relies on for grading.

#![warn(missing_docs)]

pub mod bpred;
pub mod cache;
pub mod config;
pub mod firesim;
pub mod nic;
pub mod pfa;
pub mod pipeline;

pub use config::{BpredConfig, CacheConfig, CoreConfig, HardwareConfig, RemoteMemConfig};
pub use firesim::{FireSim, NodePayload, NodeResult, PerfReport};
pub use nic::NicModel;
pub use pfa::PfaStats;
pub use pipeline::PerfCounters;
