//! The FireSim-like top-level driver.
//!
//! Runs FireMarshal workloads cycle-exactly: the same boot model and the
//! same guest binaries as the functional simulators, with a
//! [`Pipeline`] timing every retired instruction. Supports multi-node
//! cluster simulations for `jobs` workloads (the intspeed suite's ten
//! parallel nodes, the PFA client/server pair).

use marshal_firmware::BootBinary;
use marshal_image::FsImage;
use marshal_isa::MexeFile;
use marshal_sim_functional::boot::{simulate_linux, simulate_linux_checkpointed};
use marshal_sim_functional::checkpoint::BootSnapshot;
use marshal_sim_functional::guest::{Executor, GuestOs};
use marshal_sim_functional::machine::{LaunchMode, SimConfig, SimError, SimKind, SimResult};
use marshal_sim_functional::syscall::{OsServices, UserRunner, UserStep};

use crate::cache::CacheStats;
use crate::config::HardwareConfig;
use crate::pfa::PfaStats;
use crate::pipeline::{PerfCounters, Pipeline};

/// The performance report of one simulated node.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Hardware configuration name.
    pub config_name: String,
    /// Branch predictor name.
    pub bpred: &'static str,
    /// Performance counters.
    pub counters: PerfCounters,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// Unified L2 statistics (when the configuration has an L2).
    pub l2: Option<CacheStats>,
    /// Remote-memory statistics (PFA case study).
    pub pfa: Option<PfaStats>,
    /// Clock frequency in MHz.
    pub freq_mhz: u64,
}

impl PerfReport {
    /// Total simulated seconds (RealTime in the paper's CSVs).
    pub fn real_time_secs(&self) -> f64 {
        self.counters.cycles as f64 / (self.freq_mhz as f64 * 1e6)
    }

    /// User-mode seconds (UserTime).
    pub fn user_time_secs(&self) -> f64 {
        self.counters.user_cycles as f64 / (self.freq_mhz as f64 * 1e6)
    }

    /// Kernel-mode seconds (KernelTime).
    pub fn kernel_time_secs(&self) -> f64 {
        self.counters.kernel_cycles as f64 / (self.freq_mhz as f64 * 1e6)
    }

    /// A human-readable multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "config={} bpred={} cycles={} insts={} ipc={:.3} branch-acc={:.4} icache-miss={:.4} dcache-miss={:.4}",
            self.config_name,
            self.bpred,
            self.counters.cycles,
            self.counters.instructions,
            self.counters.ipc(),
            self.counters.branch_accuracy(),
            self.icache.miss_rate(),
            self.dcache.miss_rate(),
        )
    }
}

/// The timing executor: steps user programs and charges the pipeline.
pub struct TimedExecutor {
    pipeline: Pipeline,
}

impl TimedExecutor {
    /// Builds the executor for a hardware configuration.
    pub fn new(hw: &HardwareConfig) -> TimedExecutor {
        TimedExecutor {
            pipeline: Pipeline::new(hw),
        }
    }

    /// The pipeline (for reports).
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }
}

impl Executor for TimedExecutor {
    fn exec(
        &mut self,
        exe: &MexeFile,
        args: &[String],
        os: &mut GuestOs,
    ) -> Result<(i64, u64), SimError> {
        let budget = os.remaining_budget()?;
        let mut runner = UserRunner::new(exe, args)?;
        let start_insts = runner.cpu.instret;
        let start_cycles = self.pipeline.counters().cycles;
        loop {
            let executed = runner.cpu.instret - start_insts;
            if executed > budget {
                // Account the consumed budget so `remaining_budget()`
                // reports exhaustion — the boot-flow watchdog relies on
                // this to recognise a hung guest (see FunctionalExecutor).
                let cycles = self.pipeline.counters().cycles - start_cycles;
                os.account(budget, cycles);
                return Err(SimError::Budget { limit: budget });
            }
            // Make rdcycle observe modelled time.
            runner.cpu.cycle = self.pipeline.counters().cycles;
            match runner.step(os)? {
                UserStep::Retired(r) => {
                    let is_remote = match r.kind {
                        marshal_isa::interp::RetireKind::Load { addr }
                        | marshal_isa::interp::RetireKind::Store { addr } => {
                            runner.bus.is_remote(addr)
                        }
                        _ => false,
                    };
                    self.pipeline.retire(&r, is_remote);
                }
                UserStep::Syscall { sys } => {
                    self.pipeline.syscall(sys);
                }
                UserStep::Exited(code) => {
                    let insts = runner.cpu.instret - start_insts;
                    let cycles = self.pipeline.counters().cycles - start_cycles;
                    os.account(insts, cycles);
                    return Ok((code, insts));
                }
            }
        }
    }
}

/// What a cluster node runs.
///
/// The `Linux` variant dominates in size and in frequency — boxing it would
/// add an allocation per node for no saving in the common case.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum NodePayload {
    /// A Linux workload: boot binary plus optional disk image.
    Linux {
        /// The boot binary.
        boot: BootBinary,
        /// The disk image (None for diskless builds).
        disk: Option<FsImage>,
    },
    /// A bare-metal binary.
    Bare {
        /// The MEXE program bytes.
        bin: Vec<u8>,
    },
}

/// One node's simulation outcome.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// The node (job) name.
    pub name: String,
    /// Simulation result (serial log, final image, exit code).
    pub result: SimResult,
    /// Performance report.
    pub report: PerfReport,
}

/// The cycle-exact simulator.
///
/// ```rust
/// use marshal_sim_rtl::{FireSim, HardwareConfig};
/// let sim = FireSim::new(HardwareConfig::boom_tage());
/// assert_eq!(sim.hardware().name, "boom-tage");
/// ```
#[derive(Debug, Clone)]
pub struct FireSim {
    hw: HardwareConfig,
    max_instructions: u64,
}

impl FireSim {
    /// Creates a simulator for a hardware configuration.
    pub fn new(hw: HardwareConfig) -> FireSim {
        FireSim {
            hw,
            max_instructions: 2_000_000_000,
        }
    }

    /// Overrides the instruction budget.
    pub fn with_budget(mut self, max_instructions: u64) -> FireSim {
        self.max_instructions = max_instructions;
        self
    }

    /// The hardware configuration.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// The simulator configuration this instance boots with (derived from
    /// the hardware configuration and instruction budget).
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(SimKind::CycleExact);
        cfg.max_instructions = self.max_instructions;
        cfg.extra_args.push(format!("+config={}", self.hw.name));
        cfg
    }

    fn report(&self, exec: &TimedExecutor) -> PerfReport {
        let p = exec.pipeline();
        PerfReport {
            config_name: self.hw.name.clone(),
            bpred: p.bpred_name(),
            counters: *p.counters(),
            icache: p.icache_stats(),
            dcache: p.dcache_stats(),
            l2: p.l2_stats(),
            pfa: p.pfa_stats(),
            freq_mhz: self.hw.freq_mhz,
        }
    }

    /// Boots a Linux workload cycle-exactly.
    ///
    /// # Errors
    ///
    /// Same conditions as the functional simulators.
    pub fn launch(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
    ) -> Result<(SimResult, PerfReport), SimError> {
        let cfg = self.sim_config();
        let mut exec = TimedExecutor::new(&self.hw);
        let result = simulate_linux(&cfg, boot, disk, mode, &mut exec)?;
        Ok((result, self.report(&exec)))
    }

    /// [`FireSim::launch`] with boot checkpointing.
    ///
    /// Restoring is cycle-exact because snapshots are only captured when
    /// the boot retired zero user instructions — the pipeline is cold at
    /// the seam either way (see
    /// [`simulate_linux_checkpointed`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`FireSim::launch`].
    pub fn launch_checkpointed(
        &self,
        boot: &BootBinary,
        disk: Option<&FsImage>,
        mode: LaunchMode,
        resume: Option<&BootSnapshot>,
    ) -> Result<(SimResult, PerfReport, Option<BootSnapshot>), SimError> {
        let cfg = self.sim_config();
        let mut exec = TimedExecutor::new(&self.hw);
        let (result, captured) =
            simulate_linux_checkpointed(&cfg, boot, disk, mode, &mut exec, resume)?;
        Ok((result, self.report(&exec), captured))
    }

    /// Runs a bare-metal binary cycle-exactly.
    ///
    /// # Errors
    ///
    /// [`SimError::BadArtifact`] for non-MEXE binaries, plus traps and
    /// budget exhaustion.
    pub fn launch_bare(&self, bin: &[u8]) -> Result<(SimResult, PerfReport), SimError> {
        struct BareOs {
            serial: String,
        }
        impl OsServices for BareOs {
            fn serial_write(&mut self, bytes: &[u8]) {
                self.serial.push_str(&String::from_utf8_lossy(bytes));
            }
            fn file_read(&mut self, _path: &str) -> Option<Vec<u8>> {
                None
            }
            fn file_write(&mut self, _path: &str, _data: &[u8]) -> bool {
                false
            }
        }
        if !MexeFile::sniff(bin) {
            return Err(SimError::BadArtifact(
                "bare-metal workload binary is not a MEXE image".to_owned(),
            ));
        }
        let exe = MexeFile::from_bytes(bin)
            .map_err(|e| SimError::BadArtifact(format!("bare-metal binary: {e}")))?;
        let mut os = BareOs {
            serial: format!("firesim: bare-metal node ({})\n", self.hw.name),
        };
        let mut exec = TimedExecutor::new(&self.hw);
        let mut runner = UserRunner::new(&exe, &[])?;
        runner.bus.enable_uart();
        let (exit_code, instructions, timed_out) = loop {
            if runner.cpu.instret > self.max_instructions {
                // Watchdog: terminate the hung guest but salvage the
                // serial log and performance report gathered so far.
                break (
                    marshal_sim_functional::machine::WATCHDOG_EXIT_CODE,
                    runner.cpu.instret,
                    true,
                );
            }
            runner.cpu.cycle = exec.pipeline.counters().cycles;
            match runner.step(&mut os)? {
                UserStep::Retired(r) => {
                    exec.pipeline.retire(&r, false);
                }
                UserStep::Syscall { sys } => {
                    exec.pipeline.syscall(sys);
                }
                UserStep::Exited(code) => break (code, runner.cpu.instret, false),
            }
        };
        let report = self.report(&exec);
        if timed_out {
            os.serial.push_str(&format!(
                "firesim: watchdog: instruction budget exhausted ({} instructions); \
                 terminating hung guest\n",
                self.max_instructions
            ));
        } else {
            os.serial.push_str(&format!(
                "firesim: exited with code {exit_code} after {} cycles\n",
                report.counters.cycles
            ));
        }
        Ok((
            SimResult {
                serial: os.serial,
                image: None,
                exit_code,
                instructions,
                timed_out,
            },
            report,
        ))
    }

    /// Runs a multi-node cluster: one simulated node per job. With
    /// `parallel`, nodes run on OS threads — the optimisation that cut the
    /// paper's SPEC2017 experiment "from about two weeks to roughly two
    /// days".
    ///
    /// # Errors
    ///
    /// Returns the first failing node's error (by node order).
    pub fn launch_cluster(
        &self,
        nodes: &[(String, NodePayload)],
        parallel: bool,
    ) -> Result<Vec<NodeResult>, SimError> {
        let run_node = |name: &String, payload: &NodePayload| -> Result<NodeResult, SimError> {
            let (result, report) = match payload {
                NodePayload::Linux { boot, disk } => {
                    self.launch(boot, disk.as_ref(), LaunchMode::Run)?
                }
                NodePayload::Bare { bin } => self.launch_bare(bin)?,
            };
            Ok(NodeResult {
                name: name.clone(),
                result,
                report,
            })
        };
        if !parallel {
            return nodes
                .iter()
                .map(|(name, payload)| run_node(name, payload))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter()
                .map(|(name, payload)| scope.spawn(move || run_node(name, payload)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marshal_firmware::{build_firmware, link_boot_binary, FirmwareBuild};
    use marshal_image::{BootPayload, InitSystem};
    use marshal_isa::abi;
    use marshal_isa::asm::assemble;
    use marshal_linux::kconfig::KernelConfig;
    use marshal_linux::kernel::{build_kernel, KernelSource};
    use marshal_linux::InitramfsSpec;
    use marshal_sim_functional::Qemu;

    fn boot_binary() -> BootBinary {
        let config = KernelConfig::riscv_defconfig();
        let src = KernelSource::default_source();
        let initramfs = InitramfsSpec::new().build(&config, &src).unwrap();
        let kernel = build_kernel(&src, &config, &initramfs).unwrap();
        let fw = build_firmware(&FirmwareBuild::default()).unwrap();
        link_boot_binary(&fw, &kernel).unwrap()
    }

    fn branchy_program() -> String {
        // A data-dependent branch pattern that separates predictors.
        r#"
        .data
result: .asciiz "done\n"
        .text
_start:
        li      t0, 0          # i
        li      t1, 20000      # iterations
        li      t2, 0          # acc
        li      t3, 0xACE      # lfsr state
loop:
        andi    t4, t3, 1      # pseudo-random bit
        beqz    t4, skip       # data-dependent branch
        addi    t2, t2, 1
skip:
        # 16-bit LFSR step: t3 = (t3 >> 1) ^ (lsb ? 0xB400 : 0)
        srli    t5, t3, 1
        beqz    t4, nofb
        li      t6, 0xB400
        xor     t5, t5, t6
nofb:
        mv      t3, t5
        addi    t0, t0, 1
        blt     t0, t1, loop
        li      a0, 1
        la      a1, result
        li      a2, 5
        li      a7, 64
        ecall
        li      a0, 0
        li      a7, 93
        ecall
"#
        .to_owned()
    }

    fn disk_with(prog_src: &str) -> FsImage {
        let mut img = FsImage::new();
        img.mkdir_p("/etc/init.d").unwrap();
        let exe = assemble(prog_src, abi::USER_BASE).unwrap();
        img.write_exec("/bin/bench", &exe.to_bytes()).unwrap();
        InitSystem::Initd
            .install_payload(&mut img, &BootPayload::Command("/bin/bench".into()))
            .unwrap();
        img
    }

    #[test]
    fn cycle_exact_repeatability() {
        // §IV-C: "repeatable results down to an exact cycle-count".
        let sim = FireSim::new(HardwareConfig::boom_tage());
        let boot = boot_binary();
        let disk = disk_with(&branchy_program());
        let (r1, p1) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        let (r2, p2) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        assert_eq!(p1.counters.cycles, p2.counters.cycles);
        assert_eq!(r1.serial, r2.serial);
    }

    #[test]
    fn same_binary_same_instruction_count_as_functional() {
        // The portability guarantee: identical artifacts retire identical
        // instruction streams on functional and cycle-exact simulation.
        let boot = boot_binary();
        let disk = disk_with(&branchy_program());
        let qemu = Qemu::new();
        let functional = qemu.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        let sim = FireSim::new(HardwareConfig::rocket());
        let (timed, _) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        assert_eq!(functional.instructions, timed.instructions);
        assert_eq!(functional.exit_code, timed.exit_code);
        assert!(timed.serial.contains("done"));
    }

    #[test]
    fn tage_beats_gshare_on_branchy_code() {
        let boot = boot_binary();
        let disk = disk_with(&branchy_program());
        let (_, gshare) = FireSim::new(HardwareConfig::boom_gshare())
            .launch(&boot, Some(&disk), LaunchMode::Run)
            .unwrap();
        let (_, tage) = FireSim::new(HardwareConfig::boom_tage())
            .launch(&boot, Some(&disk), LaunchMode::Run)
            .unwrap();
        assert_eq!(
            gshare.counters.instructions, tage.counters.instructions,
            "identical instruction streams"
        );
        assert!(
            tage.counters.mispredicts < gshare.counters.mispredicts,
            "tage {} vs gshare {} mispredicts",
            tage.counters.mispredicts,
            gshare.counters.mispredicts
        );
        assert!(tage.counters.cycles < gshare.counters.cycles);
    }

    #[test]
    fn bare_metal_timed() {
        let exe = assemble(
            "_start:\n li t0, 100\nl: addi t0, t0, -1\n bnez t0, l\n li a0, 0\n li a7, 93\n ecall\n",
            abi::USER_BASE,
        )
        .unwrap();
        let sim = FireSim::new(HardwareConfig::rocket());
        let (result, report) = sim.launch_bare(&exe.to_bytes()).unwrap();
        assert_eq!(result.exit_code, 0);
        assert!(report.counters.cycles >= report.counters.instructions);
        assert!(result.serial.contains("cycles"));
    }

    #[test]
    fn cluster_parallel_matches_serial() {
        let exe = assemble(
            "_start:\n li t0, 5000\nl: addi t0, t0, -1\n bnez t0, l\n li a0, 0\n li a7, 93\n ecall\n",
            abi::USER_BASE,
        )
        .unwrap();
        let nodes: Vec<(String, NodePayload)> = (0..4)
            .map(|i| {
                (
                    format!("job{i}"),
                    NodePayload::Bare {
                        bin: exe.to_bytes(),
                    },
                )
            })
            .collect();
        let sim = FireSim::new(HardwareConfig::rocket());
        let serial = sim.launch_cluster(&nodes, false).unwrap();
        let parallel = sim.launch_cluster(&nodes, true).unwrap();
        assert_eq!(serial.len(), 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.report.counters.cycles, p.report.counters.cycles);
        }
    }

    #[test]
    fn rdcycle_sees_modelled_time() {
        // A program that reads rdcycle twice around a delay loop and exits
        // with the delta scaled down; the delta must exceed the instruction
        // count (stalls included) on a never-taken predictor.
        let src = r#"
_start:
        rdcycle t0
        li      t1, 1000
l:      addi    t1, t1, -1
        bnez    t1, l
        rdcycle t2
        sub     a0, t2, t0
        srli    a0, a0, 6      # scale into exit-code range
        li      a7, 93
        ecall
"#;
        let exe = assemble(src, abi::USER_BASE).unwrap();
        let hw = HardwareConfig::rocket().with_bpred(crate::config::BpredConfig::NeverTaken);
        let (result, _) = FireSim::new(hw).launch_bare(&exe.to_bytes()).unwrap();
        // 2000 loop instructions + ~999 mispredicts * 3 = ~5000 cycles; /64 ≈ 78.
        assert!(
            result.exit_code > 2000 / 64,
            "cycle delta should exceed instruction count: {}",
            result.exit_code
        );
    }

    #[test]
    fn report_time_split() {
        let boot = boot_binary();
        let disk = disk_with(&branchy_program());
        let sim = FireSim::new(HardwareConfig::rocket());
        let (_, report) = sim.launch(&boot, Some(&disk), LaunchMode::Run).unwrap();
        assert!(
            report.counters.kernel_cycles > 0,
            "syscalls cost kernel time"
        );
        assert!(report.counters.user_cycles > report.counters.kernel_cycles);
        assert!(report.real_time_secs() > 0.0);
        assert!(
            (report.real_time_secs() - report.user_time_secs() - report.kernel_time_secs()).abs()
                < 1e-12
        );
        assert!(report.summary().contains("bpred="));
    }
}
