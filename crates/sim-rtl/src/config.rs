//! Hardware configurations for the cycle-exact simulator.

/// Branch predictor selection and parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BpredConfig {
    /// Always predict taken.
    AlwaysTaken,
    /// Always predict not-taken.
    NeverTaken,
    /// A bimodal (PC-indexed 2-bit counter) predictor.
    Bimodal {
        /// log2 of the counter table size.
        table_bits: u32,
    },
    /// Gshare (global history XOR PC) — the BOOM v2 predictor of the
    /// paper's SPEC2017 experiment.
    Gshare {
        /// Global history length in bits.
        history_bits: u32,
        /// log2 of the counter table size.
        table_bits: u32,
    },
    /// A TAGE predictor — the newer BOOM predictor of the same experiment.
    Tage {
        /// Number of tagged tables.
        tables: u32,
        /// log2 of each tagged table's size.
        table_bits: u32,
        /// Shortest history length; lengths grow geometrically.
        min_history: u32,
        /// Longest history length.
        max_history: u32,
    },
}

impl BpredConfig {
    /// A short display name (`gshare`, `tage`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            BpredConfig::AlwaysTaken => "always-taken",
            BpredConfig::NeverTaken => "never-taken",
            BpredConfig::Bimodal { .. } => "bimodal",
            BpredConfig::Gshare { .. } => "gshare",
            BpredConfig::Tage { .. } => "tage",
        }
    }

    /// The paper's Gshare configuration (BOOM v2-like).
    pub fn default_gshare() -> BpredConfig {
        BpredConfig::Gshare {
            history_bits: 12,
            table_bits: 12,
        }
    }

    /// The paper's TAGE configuration (modern BOOM-like).
    pub fn default_tage() -> BpredConfig {
        BpredConfig::Tage {
            tables: 4,
            table_bits: 10,
            min_history: 4,
            max_history: 64,
        }
    }
}

/// A set-associative cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 16 KiB, 4-way, 64 B-line L1.
    pub fn l1_16k() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_bytes: 64,
            hit_latency: 1,
        }
    }

    /// A 256 KiB, 8-way unified L2 with a 10-cycle hit.
    pub fn l2_256k() -> CacheConfig {
        CacheConfig {
            sets: 512,
            ways: 8,
            line_bytes: 64,
            hit_latency: 10,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }
}

/// Core timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Pipeline refill penalty on a branch mispredict.
    pub mispredict_penalty: u64,
    /// Multiplier latency.
    pub mul_latency: u64,
    /// Divider latency.
    pub div_latency: u64,
    /// Penalty for an indirect jump whose target misses the BTB/RAS.
    pub jalr_penalty: u64,
    /// Modelled kernel cycles charged per syscall class (base cost).
    pub syscall_base_cost: u64,
}

impl CoreConfig {
    /// A Rocket-like in-order core.
    pub fn rocket() -> CoreConfig {
        CoreConfig {
            mispredict_penalty: 3,
            mul_latency: 4,
            div_latency: 32,
            jalr_penalty: 2,
            syscall_base_cost: 500,
        }
    }

    /// A BOOM-like out-of-order core (deeper pipeline, pricier redirects,
    /// faster arithmetic).
    pub fn boom() -> CoreConfig {
        CoreConfig {
            mispredict_penalty: 12,
            mul_latency: 3,
            div_latency: 24,
            jalr_penalty: 6,
            syscall_base_cost: 700,
        }
    }
}

/// Remote-memory support (the PFA case study).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteMemConfig {
    /// No remote memory: `mmap_remote` regions behave as local DRAM.
    None,
    /// Software paging baseline: every first touch of a remote page traps
    /// to the kernel, which performs the fetch synchronously.
    SoftwarePaging(crate::pfa::RemoteTimings),
    /// The Page Fault Accelerator: the fetch critical path is handled in
    /// hardware; kernel bookkeeping is asynchronous (off the critical path).
    Pfa(crate::pfa::RemoteTimings),
}

impl RemoteMemConfig {
    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            RemoteMemConfig::None => "none",
            RemoteMemConfig::SoftwarePaging(_) => "software-paging",
            RemoteMemConfig::Pfa(_) => "pfa",
        }
    }
}

/// A complete hardware configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareConfig {
    /// Configuration name (appears in simulation banners and reports).
    pub name: String,
    /// Core timing.
    pub core: CoreConfig,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
    /// Optional unified L2 cache between the L1s and DRAM.
    pub l2: Option<CacheConfig>,
    /// DRAM access latency in cycles (beyond the last cache level).
    pub dram_latency: u64,
    /// Remote-memory support.
    pub remote: RemoteMemConfig,
    /// Clock frequency in MHz (converts cycles to reported seconds).
    pub freq_mhz: u64,
}

impl HardwareConfig {
    /// A Rocket-like in-order SoC with a bimodal predictor.
    pub fn rocket() -> HardwareConfig {
        HardwareConfig {
            name: "rocket".to_owned(),
            core: CoreConfig::rocket(),
            bpred: BpredConfig::Bimodal { table_bits: 10 },
            icache: CacheConfig::l1_16k(),
            dcache: CacheConfig::l1_16k(),
            l2: None,
            dram_latency: 40,
            remote: RemoteMemConfig::None,
            freq_mhz: 1000,
        }
    }

    /// BOOM with the older Gshare predictor (the paper's first SPEC2017
    /// configuration).
    pub fn boom_gshare() -> HardwareConfig {
        HardwareConfig {
            name: "boom-gshare".to_owned(),
            core: CoreConfig::boom(),
            bpred: BpredConfig::default_gshare(),
            icache: CacheConfig::l1_16k(),
            dcache: CacheConfig::l1_16k(),
            l2: Some(CacheConfig::l2_256k()),
            dram_latency: 40,
            remote: RemoteMemConfig::None,
            freq_mhz: 1000,
        }
    }

    /// BOOM with the TAGE-based predictor (the paper's second SPEC2017
    /// configuration).
    pub fn boom_tage() -> HardwareConfig {
        HardwareConfig {
            name: "boom-tage".to_owned(),
            bpred: BpredConfig::default_tage(),
            ..HardwareConfig::boom_gshare()
        }
    }

    /// Replaces the branch predictor (keeps everything else).
    pub fn with_bpred(mut self, bpred: BpredConfig) -> HardwareConfig {
        self.name = format!("{}+{}", self.name, bpred.name());
        self.bpred = bpred;
        self
    }

    /// Enables remote memory in the given mode.
    pub fn with_remote(mut self, remote: RemoteMemConfig) -> HardwareConfig {
        self.name = format!("{}+{}", self.name, remote.name());
        self.remote = remote;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_sane() {
        let g = HardwareConfig::boom_gshare();
        let t = HardwareConfig::boom_tage();
        assert_eq!(g.bpred.name(), "gshare");
        assert_eq!(t.bpred.name(), "tage");
        assert_eq!(g.core, t.core, "only the predictor differs");
        assert_eq!(g.icache.capacity(), 16 << 10);
    }

    #[test]
    fn builders_rename() {
        let hw = HardwareConfig::rocket().with_bpred(BpredConfig::AlwaysTaken);
        assert!(hw.name.contains("always-taken"));
        let hw = hw.with_remote(RemoteMemConfig::Pfa(crate::pfa::RemoteTimings::default()));
        assert!(hw.name.contains("pfa"));
    }
}
