//! The RDMA-capable NIC and network model behind the PFA (Fig. 4).
//!
//! The paper's PFA "directly interacted with the network interface through
//! its exposed queues (much the same way the OS driver would)", fetching
//! pages from a remote memory server. This module models that path: the
//! NIC's doorbell/DMA costs, link serialisation at a finite bandwidth,
//! switch hops, and the remote server's response time — so the `rdma_fetch`
//! cycle count used by [`crate::pfa`] is derived from physical parameters
//! instead of being a magic constant.

use crate::pfa::RemoteTimings;

/// Parameters of the NIC + network path to the remote memory server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NicModel {
    /// Cycles to ring the doorbell and start the DMA engine.
    pub doorbell_cost: u64,
    /// Link bandwidth in bytes per cycle (e.g. 25 GbE at 1 GHz ≈ 3 B/cy).
    pub link_bytes_per_cycle: u64,
    /// One-way link propagation latency in cycles.
    pub link_latency: u64,
    /// Per-switch forwarding latency in cycles.
    pub switch_latency: u64,
    /// Number of switch hops between client and server.
    pub hops: u32,
    /// The remote server's memory read + response injection cost.
    pub server_cost: u64,
}

impl Default for NicModel {
    /// A 25 GbE-class NIC across one top-of-rack switch at 1 GHz.
    fn default() -> NicModel {
        NicModel {
            doorbell_cost: 100,
            link_bytes_per_cycle: 3,
            link_latency: 500,
            switch_latency: 80,
            hops: 1,
            server_cost: 300,
        }
    }
}

impl NicModel {
    /// Cycles to move `bytes` across the link (serialisation delay).
    pub fn serialization(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.link_bytes_per_cycle.max(1))
    }

    /// One-way latency for a message of `bytes`: doorbell + wire +
    /// switches + serialisation.
    pub fn one_way(&self, bytes: u64) -> u64 {
        self.doorbell_cost
            + self.link_latency
            + self.switch_latency * self.hops as u64
            + self.serialization(bytes)
    }

    /// Full RDMA read of one `page_size`-byte page: a small request out,
    /// the server's lookup, and the page payload back.
    pub fn rdma_read(&self, page_size: u64) -> u64 {
        const REQUEST_BYTES: u64 = 64;
        self.one_way(REQUEST_BYTES) + self.server_cost + self.one_way(page_size)
            - self.doorbell_cost // the response needs no doorbell
    }

    /// Derives [`RemoteTimings`] with the `rdma_fetch` component computed
    /// from this network model (other step costs keep their defaults).
    pub fn timings(&self, page_size: u64) -> RemoteTimings {
        RemoteTimings {
            rdma_fetch: self.rdma_read(page_size),
            ..RemoteTimings::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_matches_pfa_defaults_in_magnitude() {
        // The PFA module's default rdma_fetch (3000 cycles) should be the
        // same order of magnitude as the derived network cost for a 4 KiB
        // page — the constant was calibrated from this model.
        let nic = NicModel::default();
        let derived = nic.rdma_read(4096);
        assert!(
            (2000..6000).contains(&derived),
            "derived rdma cost {derived} out of expected range"
        );
    }

    #[test]
    fn bigger_pages_cost_more() {
        let nic = NicModel::default();
        assert!(nic.rdma_read(8192) > nic.rdma_read(4096));
        assert!(nic.rdma_read(4096) > nic.rdma_read(1024));
        // The increment is exactly the serialisation difference.
        assert_eq!(
            nic.rdma_read(8192) - nic.rdma_read(4096),
            nic.serialization(8192) - nic.serialization(4096)
        );
    }

    #[test]
    fn faster_links_cheaper() {
        let slow = NicModel {
            link_bytes_per_cycle: 1,
            ..NicModel::default()
        };
        let fast = NicModel {
            link_bytes_per_cycle: 12, // 100 GbE-class
            ..NicModel::default()
        };
        assert!(fast.rdma_read(4096) < slow.rdma_read(4096));
    }

    #[test]
    fn more_hops_add_switch_latency() {
        let one = NicModel::default();
        let three = NicModel {
            hops: 3,
            ..NicModel::default()
        };
        // Two extra hops on each direction of the round trip.
        assert_eq!(
            three.rdma_read(4096) - one.rdma_read(4096),
            2 * 2 * one.switch_latency
        );
    }

    #[test]
    fn timings_plumb_into_remote_memory() {
        use crate::pfa::{RemoteMemory, RemoteMode};
        let nic = NicModel::default();
        let timings = nic.timings(4096);
        let mut mem = RemoteMemory::new(RemoteMode::Pfa, timings, 4096);
        let latency = mem.access(0);
        assert!(
            latency >= nic.rdma_read(4096),
            "fault includes the network cost"
        );
    }
}
