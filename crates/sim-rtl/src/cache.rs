//! Set-associative caches with LRU replacement.

use crate::config::CacheConfig;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line fetched from the next level.
    Miss,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative cache model (tags only — data lives in the functional
/// memory).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if sets or line size are not powers of two, or ways is zero.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "cache needs at least one way");
        Cache {
            config,
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        valid: false,
                        lru: 0
                    };
                    config.ways as usize
                ];
                config.sets as usize
            ],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`, updating LRU state and statistics.
    pub fn access(&mut self, addr: u64) -> Access {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.config.sets as u64) as usize;
        let tag = line / self.config.sets as u64;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            return Access::Hit;
        }
        self.stats.misses += 1;
        // Fill the invalid or least-recently-used way.
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { w.lru } else { 0 })
            .expect("ways > 0");
        victim.tag = tag;
        victim.valid = true;
        victim.lru = self.tick;
        Access::Miss
    }

    /// Invalidates all lines (keeps statistics).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for way in set {
                way.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(0x100), Access::Miss);
        assert_eq!(c.access(0x100), Access::Hit);
        assert_eq!(c.access(0x13f), Access::Hit); // same line
        assert_eq!(c.access(0x140), Access::Miss); // next line
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = small();
        // Three lines mapping to the same set (sets=4, line=64 → set stride 256).
        let a = 0x0000;
        let b = 0x0400;
        let d = 0x0800;
        assert_eq!(c.access(a), Access::Miss);
        assert_eq!(c.access(b), Access::Miss);
        assert_eq!(c.access(a), Access::Hit); // a is now MRU
        assert_eq!(c.access(d), Access::Miss); // evicts b
        assert_eq!(c.access(a), Access::Hit);
        assert_eq!(c.access(b), Access::Miss); // b was evicted
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let mut c = Cache::new(CacheConfig::l1_16k());
        let lines = c.config().capacity() / c.config().line_bytes as u64;
        for round in 0..3 {
            for i in 0..lines / 2 {
                let access = c.access(i * 64);
                if round > 0 {
                    assert_eq!(access, Access::Hit, "line {i} round {round}");
                }
            }
        }
    }

    #[test]
    fn streaming_misses() {
        let mut c = Cache::new(CacheConfig::l1_16k());
        let lines = 4 * c.config().capacity() / 64;
        for i in 0..lines {
            c.access(i * 64);
        }
        // Pure streaming: every access a distinct line → all misses.
        assert_eq!(c.stats().misses, c.stats().accesses);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = small();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            hit_latency: 1,
        });
    }
}
