//! The journal's on-disk record model: one JSON object per line, each line
//! individually checksummed so a torn tail is detectable line-by-line.
//!
//! Line layout (`x` is always the final field):
//!
//! ```text
//! {"seq":N,"t":MICROS,"tid":T,"k":"b","id":I,"parent":P,"name":"...","args":{...},"x":"<fnv64 hex>"}
//! ```
//!
//! `k` codes: `run` (header, sequence 0), `b` span begin, `e` span end,
//! `i` instant, `c` counter. The checksum covers every byte of the line
//! before the `,"x":` separator, so truncation anywhere — including inside
//! the checksum field itself — fails verification and the reader keeps the
//! parseable prefix, mirroring `state.db`'s torn-tail discipline.

use std::collections::BTreeMap;

use crate::json::{write_str, Json};

/// Key → value attributes attached to a record. Sorted, so encoding is
/// deterministic.
pub type Args = BTreeMap<String, String>;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Strictly increasing sequence number, assigned by the writer thread
    /// (the header is 0).
    pub seq: u64,
    /// Microseconds since the run's start, from a monotonic clock.
    pub t_us: u64,
    /// Journal-local thread id of the emitting thread (1 = first emitter).
    pub tid: u64,
    /// What happened.
    pub kind: RecordKind,
}

/// The kinds of journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKind {
    /// The run header: always sequence 0, carrying the command name and
    /// run metadata (`run_id`, `pid`, `workload`, …).
    Run {
        /// The `marshal` command that produced the run (`build`, `test`…).
        name: String,
        /// Run metadata.
        args: Args,
    },
    /// A span opened.
    SpanStart {
        /// Span id, unique within the run (1-based).
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Span name (stable schema, see `docs/run-journal.md`).
        name: String,
        /// Attributes known at open time.
        args: Args,
    },
    /// A span closed.
    SpanEnd {
        /// The id from the matching [`RecordKind::SpanStart`].
        id: u64,
        /// Attributes known only at close time (outcome, byte counts…).
        args: Args,
    },
    /// A point event.
    Instant {
        /// Event name (stable schema).
        name: String,
        /// Attributes.
        args: Args,
    },
    /// A counter sample.
    Counter {
        /// Counter name.
        name: String,
        /// Sampled value.
        value: i64,
    },
}

impl Record {
    /// The record's name, when its kind has one.
    pub fn name(&self) -> Option<&str> {
        match &self.kind {
            RecordKind::Run { name, .. }
            | RecordKind::SpanStart { name, .. }
            | RecordKind::Instant { name, .. }
            | RecordKind::Counter { name, .. } => Some(name),
            RecordKind::SpanEnd { .. } => None,
        }
    }

    /// The record's args, when its kind has them.
    pub fn args(&self) -> Option<&Args> {
        match &self.kind {
            RecordKind::Run { args, .. }
            | RecordKind::SpanStart { args, .. }
            | RecordKind::SpanEnd { args, .. }
            | RecordKind::Instant { args, .. } => Some(args),
            RecordKind::Counter { .. } => None,
        }
    }

    /// Encodes the record as a sealed journal line (without the trailing
    /// newline).
    pub fn encode(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "{{\"seq\":{},\"t\":{},\"tid\":{}",
            self.seq, self.t_us, self.tid
        ));
        match &self.kind {
            RecordKind::Run { name, args } => {
                body.push_str(",\"k\":\"run\",\"name\":");
                write_str(name, &mut body);
                push_args(&mut body, args);
            }
            RecordKind::SpanStart {
                id,
                parent,
                name,
                args,
            } => {
                body.push_str(&format!(",\"k\":\"b\",\"id\":{id},\"parent\":"));
                match parent {
                    Some(p) => body.push_str(&p.to_string()),
                    None => body.push_str("null"),
                }
                body.push_str(",\"name\":");
                write_str(name, &mut body);
                push_args(&mut body, args);
            }
            RecordKind::SpanEnd { id, args } => {
                body.push_str(&format!(",\"k\":\"e\",\"id\":{id}"));
                push_args(&mut body, args);
            }
            RecordKind::Instant { name, args } => {
                body.push_str(",\"k\":\"i\",\"name\":");
                write_str(name, &mut body);
                push_args(&mut body, args);
            }
            RecordKind::Counter { name, value } => {
                body.push_str(",\"k\":\"c\",\"name\":");
                write_str(name, &mut body);
                body.push_str(&format!(",\"value\":{value}"));
            }
        }
        seal_line(&body)
    }

    /// Decodes and verifies one sealed journal line.
    ///
    /// # Errors
    ///
    /// A description of why the line is unusable (torn checksum, bad JSON,
    /// unknown kind, missing field) — the reader treats any error as the
    /// start of a torn tail.
    pub fn decode(line: &str) -> Result<Record, String> {
        let body = verify_line(line)?;
        let mut text = body.to_owned();
        text.push('}');
        let v = Json::parse(&text).map_err(|e| format!("bad record JSON: {e}"))?;
        let seq = field_u64(&v, "seq")?;
        let t_us = field_u64(&v, "t")?;
        let tid = field_u64(&v, "tid")?;
        let kind = match v.get("k").and_then(Json::as_str) {
            Some("run") => RecordKind::Run {
                name: field_str(&v, "name")?,
                args: parse_args(&v),
            },
            Some("b") => RecordKind::SpanStart {
                id: field_u64(&v, "id")?,
                parent: v.get("parent").and_then(Json::as_u64),
                name: field_str(&v, "name")?,
                args: parse_args(&v),
            },
            Some("e") => RecordKind::SpanEnd {
                id: field_u64(&v, "id")?,
                args: parse_args(&v),
            },
            Some("i") => RecordKind::Instant {
                name: field_str(&v, "name")?,
                args: parse_args(&v),
            },
            Some("c") => RecordKind::Counter {
                name: field_str(&v, "name")?,
                value: v
                    .get("value")
                    .and_then(Json::as_i64)
                    .ok_or("counter without value")?,
            },
            other => return Err(format!("unknown record kind {other:?}")),
        };
        Ok(Record {
            seq,
            t_us,
            tid,
            kind,
        })
    }
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn parse_args(v: &Json) -> Args {
    let mut out = Args::new();
    if let Some(Json::Obj(fields)) = v.get("args") {
        for (k, val) in fields {
            if let Some(s) = val.as_str() {
                out.insert(k.clone(), s.to_owned());
            }
        }
    }
    out
}

fn push_args(body: &mut String, args: &Args) {
    body.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        write_str(k, body);
        body.push(':');
        write_str(v, body);
    }
    body.push('}');
}

/// FNV-1a 64-bit — the per-line integrity hash. Not cryptographic; it only
/// needs to catch truncation and bit-rot, like `state.db`'s header sum.
pub fn checksum_line(body: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in body.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seals an open JSON object body (everything up to but excluding the
/// closing `}`) with its checksum field: `<body>,"x":"<hex>"}`.
pub fn seal_line(body: &str) -> String {
    format!("{body},\"x\":\"{:016x}\"}}", checksum_line(body))
}

/// Verifies a sealed line, returning the open body on success.
fn verify_line(line: &str) -> Result<&str, String> {
    let idx = line
        .rfind(",\"x\":\"")
        .ok_or("line has no checksum field (torn?)")?;
    let body = &line[..idx];
    let tail = &line[idx..];
    let expected = format!(",\"x\":\"{:016x}\"}}", checksum_line(body));
    if tail != expected {
        return Err("line checksum mismatch (torn or corrupt)".to_owned());
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect()
    }

    #[test]
    fn roundtrip_every_kind() {
        let records = vec![
            Record {
                seq: 0,
                t_us: 0,
                tid: 1,
                kind: RecordKind::Run {
                    name: "build".into(),
                    args: args(&[("run_id", "r1"), ("pid", "42")]),
                },
            },
            Record {
                seq: 1,
                t_us: 10,
                tid: 1,
                kind: RecordKind::SpanStart {
                    id: 1,
                    parent: None,
                    name: "task".into(),
                    args: args(&[("task", "img:a/0")]),
                },
            },
            Record {
                seq: 2,
                t_us: 15,
                tid: 2,
                kind: RecordKind::SpanStart {
                    id: 2,
                    parent: Some(1),
                    name: "fetch".into(),
                    args: Args::new(),
                },
            },
            Record {
                seq: 3,
                t_us: 90,
                tid: 2,
                kind: RecordKind::SpanEnd {
                    id: 2,
                    args: args(&[("outcome", "hit")]),
                },
            },
            Record {
                seq: 4,
                t_us: 95,
                tid: 1,
                kind: RecordKind::Instant {
                    name: "cache".into(),
                    args: args(&[("hit", "true"), ("level", "br-base \"q\"")]),
                },
            },
            Record {
                seq: 5,
                t_us: 99,
                tid: 1,
                kind: RecordKind::Counter {
                    name: "busy".into(),
                    value: -3,
                },
            },
        ];
        for r in records {
            let line = r.encode();
            assert_eq!(Record::decode(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn torn_line_is_rejected() {
        let r = Record {
            seq: 7,
            t_us: 123,
            tid: 1,
            kind: RecordKind::Instant {
                name: "cache".into(),
                args: args(&[("level", "x")]),
            },
        };
        let line = r.encode();
        // Any truncation fails: no checksum field, or a mismatching one.
        for cut in 1..line.len() {
            assert!(
                Record::decode(&line[..cut]).is_err(),
                "prefix of len {cut} must not verify"
            );
        }
        // A flipped byte in the body fails too.
        let flipped = line.replace("cache", "cachf");
        assert!(Record::decode(&flipped).is_err());
    }
}
