//! A minimal JSON value, parser, and writer — just enough for journal
//! lines and Chrome trace files, with no external dependencies.
//!
//! Objects preserve insertion order so serialization is deterministic
//! (golden-file tests depend on it). Numbers are stored as `f64` but
//! written back as integers when they are whole, which covers every
//! numeric field the journal uses (sequence numbers, microsecond
//! timestamps, span ids, counter values).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a whole non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is a whole number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// A short description of the first syntax problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes a number, preferring integer form for whole values (the journal
/// only ever writes whole numbers, and golden files must be stable).
fn write_num(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes a JSON string literal with escaping.
pub(crate) fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte {:#04x} at offset {}",
                other, self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a run of plain bytes up to the next quote or
                    // escape in one go (the input came from a &str, so the
                    // run is valid UTF-8).
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("invalid UTF-8 at offset {start}"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text =
            r#"{"seq":3,"name":"a \"b\"","args":{"k":"v"},"ok":true,"none":null,"xs":[1,-2,3.5]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"b\""));
        assert_eq!(v.get("args").unwrap().get("k").unwrap().as_str(), Some("v"));
        assert_eq!(v.encode(), text);
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("tab\there\nnl\u{1}".to_owned());
        let enc = v.encode();
        assert_eq!(enc, "\"tab\\there\\nnl\\u0001\"");
        assert_eq!(Json::parse(&enc).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let v = Json::parse("[-7,2.25]").unwrap();
        let Json::Arr(items) = &v else { panic!() };
        assert_eq!(items[0].as_i64(), Some(-7));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(v.encode(), "[-7,2.25]");
    }
}
