//! # marshal-trace
//!
//! The observability layer of the FireMarshal reproduction: every `marshal`
//! command can record what it did — spans with monotonic timestamps, typed
//! instants, and counters — into an append-only, per-line-checksummed JSONL
//! journal under `workdir/runs/<run-id>/journal.jsonl`.
//!
//! The journal follows the same torn-tail discipline as `state.db`: a run
//! that dies mid-build leaves a parseable prefix (every surviving line is
//! individually checksummed, and the reader stops at the first torn line),
//! so the journal doubles as the crash-forensics record.
//!
//! This crate sits at the bottom of the workspace — `marshal-depgraph`,
//! `marshal-netstore`, and `marshal-core` all emit through the same
//! [`Recorder`], which is a cheap clonable handle: disabled recorders are a
//! single `Option` check on the hot path (no channel send, no allocation),
//! enabled ones push events over an mpsc channel to a dedicated writer
//! thread so recording never blocks builders on I/O.

#![warn(missing_docs)]

mod chrome;
mod journal;
mod json;
mod record;
mod recorder;
mod summary;

pub use chrome::chrome_trace;
pub use journal::{list_runs, read_journal, Journal, RunInfo};
pub use json::Json;
pub use record::{checksum_line, seal_line, Args, Record, RecordKind};
pub use recorder::{FinishedRun, Recorder, Span};
pub use summary::{summarize, RunSummary, SpanStat};
